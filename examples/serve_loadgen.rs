//! fbp-server end to end: spawn the TCP serving front-end on an
//! ephemeral loopback port, drive it with the closed-loop load generator
//! (N interactive feedback sessions with think-time), and compare the
//! adaptive micro-batching configuration against `max_batch = 1`.
//!
//! Every session runs the full wire protocol — `OpenSession`, `Knn`,
//! `Feedback` until the server reports the query done, `Close` — so the
//! whole FeedbackBypass loop (predict → search → judge → re-learn →
//! insert) happens over TCP, coalesced into shared multi-query scan
//! passes by the micro-batcher.
//!
//! Run with: `cargo run --release --example serve_loadgen`
//! (`FBP_BENCH_FAST=1` for the short CI smoke burst; `FBP_SERVE_SHARDS=S`
//! sets the shard count of the third, sharded configuration — default 2.)

use fbp_server::{run_loadgen, serve, Client, LoadgenOptions, LoadgenReport, ServerConfig};
use fbp_vecdb::{CategoryId, Collection, CollectionBuilder, KnnEngine, LinearScan, ScanMode};
use feedbackbypass::{BypassConfig, FeedbackBypass, FeedbackConfig, SharedBypass};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 64;
const K: u32 = 50;
const SESSIONS: usize = 32;
const CLUSTERS: usize = 20;

fn fast() -> bool {
    std::env::var("FBP_BENCH_FAST").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Clustered, labelled collection in `[0,1]^64` with the f32 mirror the
/// serving scans stream (cluster = category = the relevance oracle).
fn collection(n: usize) -> Collection {
    let mut state = 0x5DEE_CE66_D154_21C5u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    let cats: Vec<CategoryId> = (0..CLUSTERS)
        .map(|c| b.category(&format!("cluster-{c}")))
        .collect();
    for i in 0..n {
        let center = i % CLUSTERS;
        let v: Vec<f64> = (0..DIM)
            .map(|d| {
                let base = (((center * 31 + d * 7) % 97) as f64) / 97.0;
                (base + (next() - 0.5) * 0.16).clamp(0.0, 1.0)
            })
            .collect();
        b.push(&v, cats[center]).unwrap();
    }
    b.build()
}

fn run_config(
    coll: &Arc<Collection>,
    queries: &[Vec<f64>],
    max_batch: usize,
    shards: usize,
) -> LoadgenReport {
    let bypass = SharedBypass::new(
        FeedbackBypass::for_unit_cube(DIM, BypassConfig::default()).expect("unit-cube module"),
    );
    let cfg = ServerConfig {
        max_batch,
        shards,
        feedback: FeedbackConfig {
            k: K as usize,
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve("127.0.0.1:0", Arc::clone(coll), bypass, cfg).expect("bind loopback");
    let addr = handle.local_addr();
    let opts = LoadgenOptions {
        sessions: SESSIONS,
        queries_per_session: if fast() { 3 } else { 10 },
        k: K,
        think_time: Duration::from_millis(5),
        max_rounds: 64,
        trace: false,
    };
    let coll_ref = Arc::clone(coll);
    let judge = move |qi: usize, ids: &[u32]| -> Vec<u32> {
        let cat = coll_ref.label(qi);
        ids.iter()
            .copied()
            .filter(|&id| coll_ref.label(id as usize) == cat)
            .collect()
    };
    let report = run_loadgen(addr, queries, Some(&judge), &opts).expect("loadgen run");

    // Spot-check the wire contract before tearing down: a fresh
    // out-of-domain uniform-weight query must come back bit-identical to
    // the in-process LinearScan answer.
    let mut probe = Client::connect(addr).expect("probe client");
    let (session, dim) = probe.open_session().expect("open session");
    assert_eq!(dim as usize, DIM);
    // Components > 1 sit outside the unit-cube module's domain, so the
    // server searches them as-is under the uniform fallback — exactly
    // what the in-process LinearScan below computes.
    let q: Vec<f64> = (0..DIM)
        .map(|d| 1.5 + ((d * 13) as f64 * 0.31).sin().abs())
        .collect();
    let reply = probe.knn(session, 10, &q).expect("probe knn");
    let expect = LinearScan::with_mode(coll, ScanMode::Batched).knn(
        &q,
        10,
        &fbp_vecdb::WeightedEuclidean::uniform(DIM),
    );
    assert_eq!(
        reply.neighbors, expect,
        "wire answer diverged from LinearScan"
    );
    probe.close_session(session).expect("close probe session");

    handle.shutdown(); // joins every thread — returning IS the clean-shutdown proof
    report
}

fn main() {
    let n = 10_000;
    eprintln!("building {n} × {DIM}-d labelled collection (+f32 mirror)...");
    let coll = Arc::new(collection(n));
    let queries: Vec<Vec<f64>> = (0..SESSIONS * 10)
        .map(|i| coll.vector(i).to_vec())
        .collect();

    println!(
        "fbp-server loadgen: {n} × {DIM}-d, k = {K}, {SESSIONS} closed-loop sessions, 5 ms think-time\n"
    );
    println!(
        "{:<24} {:>9} {:>8} {:>13} {:>9} {:>9} {:>11}",
        "config", "searches", "queries", "searches/sec", "p50 µs", "p99 µs", "batch fill"
    );
    let shards = std::env::var("FBP_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let sharded_name = format!("micro-batch, {shards} shards");
    let mut reports = Vec::new();
    for (name, max_batch, shards) in [
        ("no batching (max=1)", 1, 1),
        ("adaptive micro-batch", 16, 1),
        (sharded_name.as_str(), 16, shards),
    ] {
        let r = run_config(&coll, &queries, max_batch, shards);
        println!(
            "{name:<24} {:>9} {:>8} {:>13.0} {:>9.0} {:>9.0} {:>11.2}",
            r.searches,
            r.queries,
            r.searches_per_sec(),
            r.latency_p50_us,
            r.latency_p99_us,
            r.server.mean_batch_fill,
        );
        // Server-side accounting must agree with the client's view.
        assert_eq!(r.server.requests, r.searches, "dropped or phantom requests");
        // Every request rides exactly one pass per shard, so per-shard
        // passes are bounded by requests × shards (and can exceed plain
        // requests once S > 1).
        assert!(r.server.passes <= r.server.requests * r.server.shards);
        assert_eq!(r.server.protocol_errors, 0, "clean traffic only");
        assert_eq!(r.server.sessions_open, 0, "sessions must be closed");
        reports.push(r);
    }
    let speedup = reports[1].searches_per_sec() / reports[0].searches_per_sec();
    println!(
        "\nmicro-batching: {:.2}x searches/sec at mean fill {:.2} ({} passes for {} searches);",
        speedup, reports[1].server.mean_batch_fill, reports[1].server.passes, reports[1].searches,
    );
    println!("both servers shut down cleanly (all threads joined).");
}
