//! The router tier end to end: three shard servers on loopback, a
//! router scattering to them, and the closed-loop load generator
//! driving full interactive feedback sessions through the stack —
//! first healthy, then under an injected partial failure.
//!
//! Four phases, each an executable claim from the partial-failure
//! policy (`ARCHITECTURE.md`, "router tier"):
//!
//! 1. **healthy** — the router answers bit-identically to a flat
//!    in-process scan (probe spot-check) and serves the whole burst
//!    with zero degraded replies;
//! 2. **faulted burst** — with one shard black-holing half its calls
//!    under `FailurePolicy::Degraded`, every request still resolves:
//!    hedges overtake stragglers, timeouts convert to surviving-subset
//!    answers, and the robustness counters record all of it;
//! 3. **deterministic degradation** — with the same shard black-holed
//!    on every call, a probe reply carries the degraded flag, names the
//!    missing shard, and equals the surviving-shard oracle exactly;
//! 4. **crash and restart** — one shard *server* is killed for real
//!    mid-burst (a process outage, not an injected fault): every
//!    in-flight request still resolves, the circuit breaker ejects the
//!    dead shard so later requests stop paying its timeout, and once
//!    the server rebinds on the same address the background prober
//!    re-admits it — restoring answers bit-identical to the flat scan.
//!
//! Run with: `cargo run --release --example router_loadgen`
//! (`FBP_BENCH_FAST=1` for the short CI smoke burst.)

use fbp_server::{
    route, run_loadgen, serve, Client, FailurePolicy, FaultMode, FaultPlan, FaultRule,
    HealthConfig, HealthState, LoadgenOptions, LoadgenReport, RouterConfig, RouterHandle,
    ServerConfig, ServerHandle, PROTOCOL_VERSION,
};
use fbp_vecdb::{
    CategoryId, Collection, CollectionBuilder, KnnEngine, LinearScan, Neighbor, ScanMode,
    WeightedEuclidean,
};
use feedbackbypass::{
    BypassConfig, FeedbackBypass, FeedbackConfig, QuerySpec, RocchioWeights, SharedBypass,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const DIM: usize = 32;
const K: u32 = 20;
const SHARDS: usize = 3;
const CLUSTERS: usize = 12;

fn fast() -> bool {
    std::env::var("FBP_BENCH_FAST").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Clustered, labelled collection in `[0,1]^32` with the f32 mirror the
/// serving scans stream (cluster = category = the relevance oracle).
fn collection(n: usize) -> Collection {
    let mut state = 0x5DEE_CE66_D154_21C5u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    let cats: Vec<CategoryId> = (0..CLUSTERS)
        .map(|c| b.category(&format!("cluster-{c}")))
        .collect();
    for i in 0..n {
        let center = i % CLUSTERS;
        let v: Vec<f64> = (0..DIM)
            .map(|d| {
                let base = (((center * 31 + d * 7) % 97) as f64) / 97.0;
                (base + (next() - 0.5) * 0.16).clamp(0.0, 1.0)
            })
            .collect();
        b.push(&v, cats[center]).unwrap();
    }
    b.build()
}

fn shared_module() -> SharedBypass {
    SharedBypass::new(FeedbackBypass::for_unit_cube(DIM, BypassConfig::default()).unwrap())
}

/// Row range shard `i` serves — the `ShardedCollection::split` formula,
/// so the router-fronted deployment partitions exactly like in-process
/// sharded serving.
fn shard_range(len: usize, i: usize) -> (usize, usize) {
    (i * len / SHARDS, (i + 1) * len / SHARDS)
}

/// One shard server per contiguous slice, each knowing its global
/// `row_offset` so its partials report global row ids.
fn start_shards(coll: &Arc<Collection>) -> (Vec<ServerHandle>, Vec<SocketAddr>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..SHARDS {
        let (start, end) = shard_range(coll.len(), i);
        let slice = Arc::new(coll.slice_rows(start, end));
        let cfg = ServerConfig {
            row_offset: start,
            ..Default::default()
        };
        let handle = serve("127.0.0.1:0", slice, shared_module(), cfg).expect("bind shard");
        addrs.push(handle.local_addr());
        handles.push(handle);
    }
    (handles, addrs)
}

fn start_router(
    addrs: &[SocketAddr],
    coll: &Arc<Collection>,
    policy: FailurePolicy,
    faults: Option<FaultPlan>,
    health: HealthConfig,
) -> RouterHandle {
    let cfg = RouterConfig {
        shard_timeout: Duration::from_millis(150),
        conns_per_downstream: 4,
        policy,
        feedback: FeedbackConfig {
            k: K as usize,
            ..Default::default()
        },
        faults: faults.map(Arc::new),
        health,
        ..Default::default()
    };
    route("127.0.0.1:0", addrs, Arc::clone(coll), shared_module(), cfg).expect("bind router")
}

/// An out-of-domain probe query (components > 1 sit outside the
/// unit-cube module, so the router searches it as-is under the uniform
/// metric — exactly what the oracles below compute).
fn probe_query() -> Vec<f64> {
    (0..DIM)
        .map(|d| 1.5 + ((d * 13) as f64 * 0.31).sin().abs())
        .collect()
}

/// Exact k-NN over the union of the surviving shards' rows, with
/// globally-offset indices — the answer a degraded reply must equal.
fn surviving_oracle(coll: &Collection, surviving: &[usize], q: &[f64], k: usize) -> Vec<Neighbor> {
    let metric = WeightedEuclidean::uniform(DIM);
    let mut merged: Vec<Neighbor> = Vec::new();
    for &s in surviving {
        let (start, end) = shard_range(coll.len(), s);
        let slice = coll.slice_rows(start, end);
        for n in LinearScan::with_mode(&slice, ScanMode::Batched).knn(q, k, &metric) {
            merged.push(Neighbor {
                index: n.index + start as u32,
                dist: n.dist,
            });
        }
    }
    merged.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .unwrap()
            .then(a.index.cmp(&b.index))
    });
    merged.truncate(k);
    merged
}

fn run_burst(addr: SocketAddr, coll: &Arc<Collection>, queries: &[Vec<f64>]) -> LoadgenReport {
    run_burst_with(
        addr,
        coll,
        queries,
        LoadgenOptions {
            sessions: 8,
            queries_per_session: if fast() { 2 } else { 6 },
            k: K,
            think_time: Duration::from_millis(2),
            max_rounds: 32,
            trace: false,
        },
    )
}

fn run_burst_with(
    addr: SocketAddr,
    coll: &Arc<Collection>,
    queries: &[Vec<f64>],
    opts: LoadgenOptions,
) -> LoadgenReport {
    let coll_ref = Arc::clone(coll);
    let judge = move |qi: usize, ids: &[u32]| -> Vec<u32> {
        let cat = coll_ref.label(qi);
        ids.iter()
            .copied()
            .filter(|&id| coll_ref.label(id as usize) == cat)
            .collect()
    };
    run_loadgen(addr, queries, Some(&judge), &opts).expect("loadgen run")
}

fn print_report(name: &str, r: &LoadgenReport) {
    println!(
        "{name:<16} {:>9} {:>9} {:>9} {:>9.0} {:>9.0} {:>9} {:>9} {:>9}",
        r.searches,
        r.queries,
        r.degraded,
        r.latency_p50_us,
        r.latency_p99_us,
        r.server.downstream_timeouts,
        r.server.hedges_fired,
        r.server.hedges_won,
    );
}

fn main() {
    let n = if fast() { 1_500 } else { 6_000 };
    eprintln!("building {n} × {DIM}-d labelled collection (+f32 mirror)...");
    let coll = Arc::new(collection(n));
    let (mut shard_handles, addrs) = start_shards(&coll);
    let queries: Vec<Vec<f64>> = (0..8 * 6).map(|i| coll.vector(i).to_vec()).collect();

    println!("fbp-server router loadgen: {n} × {DIM}-d over {SHARDS} loopback shards, k = {K}\n");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "phase", "searches", "queries", "degraded", "p50 µs", "p99 µs", "timeouts", "hedged", "won"
    );

    // Phase 1 — healthy router: full burst, zero degradation, and a
    // probe bit-identical to the flat in-process scan.
    let healthy = start_router(
        &addrs,
        &coll,
        FailurePolicy::Strict,
        None,
        HealthConfig::default(),
    );
    let r1 = run_burst(healthy.local_addr(), &coll, &queries);
    print_report("healthy", &r1);
    assert_eq!(
        r1.server.requests, r1.searches,
        "dropped or phantom requests"
    );
    assert_eq!(r1.degraded, 0, "healthy shards must never degrade");
    assert_eq!(r1.server.degraded_replies, 0);
    assert_eq!(r1.server.protocol_errors, 0, "clean traffic only");
    assert_eq!(r1.server.sessions_open, 0, "sessions must be closed");
    assert_eq!(r1.server.shards, SHARDS as u64);
    {
        let mut probe = Client::connect(healthy.local_addr()).expect("probe client");
        let (session, dim) = probe.open_session().expect("open session");
        assert_eq!(dim as usize, DIM);
        let q = probe_query();
        let reply = probe.knn(session, 10, &q).expect("probe knn");
        assert!(!reply.degraded);
        let expect = LinearScan::with_mode(&coll, ScanMode::Batched).knn(
            &q,
            10,
            &WeightedEuclidean::uniform(DIM),
        );
        assert_eq!(reply.neighbors, expect, "router diverged from flat scan");
        probe.close_session(session).expect("close probe session");
    }

    // Phase 1b — multi-example burst: a v2 session negotiates Hello and
    // ships Rocchio specs (anchor + positive/negative example rows).
    // The router lowers each spec once and scatters the derived anchor,
    // so every reply must equal the flat in-process scan against
    // `spec.lower().point()` — the same bit-identity the plain probe
    // pins, extended to the richest query shape the wire carries.
    {
        let mut client = Client::connect(healthy.local_addr()).expect("spec client");
        assert_eq!(
            client.hello().expect("hello"),
            PROTOCOL_VERSION,
            "router must speak v2"
        );
        let (session, _) = client.open_session().expect("open spec session");
        let single = LinearScan::with_mode(&coll, ScanMode::Batched);
        let rounds = if fast() { 4 } else { 16 };
        for i in 0..rounds {
            // Out-of-domain anchors (components > 1) keep the served
            // metric at the documented uniform fallback, whatever the
            // burst above taught the module.
            let anchor: Vec<f64> = (0..DIM)
                .map(|d| 1.5 + (((i * 13 + d * 7) as f64) * 0.29).sin().abs())
                .collect();
            let spec = QuerySpec::builder(anchor)
                .positives(
                    (0..3)
                        .map(|j| coll.vector((i * 17 + j * 5) % coll.len()).to_vec())
                        .collect(),
                )
                .negatives(
                    (0..2)
                        .map(|j| coll.vector((i * 23 + j * 9 + 1) % coll.len()).to_vec())
                        .collect(),
                )
                .rocchio(RocchioWeights::new(1.0, 0.75, 0.25))
                .build()
                .expect("valid spec");
            let reply = client.knn_spec(session, K, &spec).expect("spec knn");
            assert!(!reply.degraded);
            let expect = single.knn(
                spec.lower().point(),
                K as usize,
                &WeightedEuclidean::uniform(DIM),
            );
            assert_eq!(
                reply.neighbors, expect,
                "spec round {i} diverged from the derived-anchor flat scan"
            );
        }
        client.close_session(session).expect("close spec session");
        println!(
            "{:<16} {rounds} multi-example rounds, all bit-identical to the derived-anchor scan",
            "spec burst"
        );
    }
    healthy.shutdown();

    // Phase 1c — trace drill: the same healthy burst, but every request
    // opts into the protocol-v3 trace trailer, through a router whose
    // slow-query threshold is zero so *every* traced reply lands in the
    // ring. Asserts the trailer's self-consistency contract on every
    // drained report (`wall = gather + merge` exactly; every span's
    // queue + busy inside the gather window; one span per shard), then
    // dumps the drained ring as JSON lines to `$FBP_TRACE_DUMP` — the
    // artifact CI uploads from the router-smoke job.
    {
        let cfg = RouterConfig {
            shard_timeout: Duration::from_millis(150),
            conns_per_downstream: 4,
            policy: FailurePolicy::Strict,
            feedback: FeedbackConfig {
                k: K as usize,
                ..Default::default()
            },
            slow_trace_threshold: Duration::ZERO,
            ..Default::default()
        };
        let traced_router = route(
            "127.0.0.1:0",
            &addrs,
            Arc::clone(&coll),
            shared_module(),
            cfg,
        )
        .expect("bind traced router");
        let rt = run_burst_with(
            traced_router.local_addr(),
            &coll,
            &queries,
            LoadgenOptions {
                sessions: 8,
                queries_per_session: if fast() { 2 } else { 6 },
                k: K,
                think_time: Duration::from_millis(2),
                max_rounds: 32,
                trace: true,
            },
        );
        print_report("traced burst", &rt);
        assert!(
            rt.stage_gather_p50_us > 0.0,
            "traced replies must attribute the gather stage"
        );
        assert_eq!(rt.failed_spans, 0, "healthy shards must not fail spans");
        let mut drain = Client::connect(traced_router.local_addr()).expect("drain client");
        assert!(drain.hello().expect("hello") >= 3, "GetTraces needs v3");
        let reports = drain.get_traces(0).expect("drain trace ring");
        assert!(
            !reports.is_empty(),
            "a zero-threshold ring must capture the traced burst"
        );
        for t in &reports {
            assert_eq!(
                t.wall_ns,
                t.gather_ns + t.merge_ns,
                "trace {} breaks wall = gather + merge",
                t.trace_id
            );
            assert_eq!(
                t.spans.len(),
                SHARDS,
                "trace {} must carry one span per shard",
                t.trace_id
            );
            for sp in &t.spans {
                assert!(
                    sp.queue_ns + sp.busy_ns <= t.gather_ns,
                    "trace {} shard {} span escapes the gather window",
                    t.trace_id,
                    sp.shard
                );
            }
        }
        assert!(
            drain.get_traces(0).expect("second drain").is_empty(),
            "the drain must be destructive"
        );
        if let Ok(path) = std::env::var("FBP_TRACE_DUMP") {
            use std::fmt::Write as _;
            let mut out = String::new();
            for t in &reports {
                let mut spans = String::new();
                for (i, sp) in t.spans.iter().enumerate() {
                    if i > 0 {
                        spans.push(',');
                    }
                    write!(
                        spans,
                        "{{\"shard\":{},\"queue_ns\":{},\"busy_ns\":{},\
                         \"batch_fill\":{},\"flags\":{}}}",
                        sp.shard, sp.queue_ns, sp.busy_ns, sp.batch_fill, sp.flags
                    )
                    .expect("format span");
                }
                writeln!(
                    out,
                    "{{\"trace_id\":{},\"wall_ns\":{},\"gather_ns\":{},\
                     \"merge_ns\":{},\"spans\":[{spans}]}}",
                    t.trace_id, t.wall_ns, t.gather_ns, t.merge_ns
                )
                .expect("format trace");
            }
            std::fs::write(&path, out).expect("write trace dump");
            println!(
                "{:<16} drained {} slow-query traces to {path}",
                "trace dump",
                reports.len()
            );
        }
        println!(
            "{:<16} {} traces drained, all self-consistent: gather p50 {:.0} µs, \
             merge p50 {:.0} µs, shard queue p99 {:.0} µs, busy p99 {:.0} µs",
            "trace drill",
            reports.len(),
            rt.stage_gather_p50_us,
            rt.stage_merge_p50_us,
            rt.stage_queue_p99_us,
            rt.stage_busy_p99_us,
        );
        traced_router.shutdown();
    }

    // Phase 2 — faulted burst: shard 1 black-holes half its calls, yet
    // under `Degraded { min_shards: 2 }` every search resolves — hedged
    // or degraded, never hung — and the counters account for it.
    let plan = FaultPlan::new(0xFA117).rule(FaultRule {
        shard: Some(1),
        after_calls: 0,
        call_limit: None,
        probability: 0.5,
        mode: FaultMode::BlackHole,
    });
    let faulted = start_router(
        &addrs,
        &coll,
        FailurePolicy::Degraded { min_shards: 2 },
        Some(plan),
        HealthConfig::default(),
    );
    let r2 = run_burst(faulted.local_addr(), &coll, &queries);
    print_report("shard 1 flaky", &r2);
    faulted.shutdown();
    assert_eq!(r2.server.requests, r2.searches, "every request resolved");
    assert!(
        r2.degraded > 0,
        "a 50% black-hole must degrade some replies"
    );
    assert_eq!(r2.server.degraded_replies, r2.degraded);
    assert!(
        r2.server.downstream_timeouts > 0,
        "black-holes must time out"
    );
    assert!(r2.server.hedges_fired > 0, "stragglers must draw hedges");
    assert_eq!(r2.server.sessions_open, 0, "sessions must be closed");
    // Bounded tail: one shard-timeout budget (plus scheduling slack),
    // never an unbounded hang.
    assert!(
        r2.latency_p99_us < 1_000_000.0,
        "p99 {}µs breaches the bounded-failure contract",
        r2.latency_p99_us
    );

    // Phase 3 — deterministic degradation: shard 1 black-holed on every
    // call; the reply must name it and equal the surviving-shard oracle.
    let always = FaultPlan::new(1).rule(FaultRule::always(1, FaultMode::BlackHole));
    let dead = start_router(
        &addrs,
        &coll,
        FailurePolicy::Degraded { min_shards: 2 },
        Some(always),
        HealthConfig::default(),
    );
    {
        let mut probe = Client::connect(dead.local_addr()).expect("probe client");
        let (session, _) = probe.open_session().expect("open session");
        let q = probe_query();
        let reply = probe.knn(session, 10, &q).expect("degraded knn");
        assert!(reply.degraded, "a dead shard must flag the reply degraded");
        assert_eq!(reply.missing_shards, vec![1], "the missing shard is named");
        let oracle = surviving_oracle(&coll, &[0, 2], &q, 10);
        assert_eq!(
            reply.neighbors, oracle,
            "degraded answer diverged from the surviving-shard oracle"
        );
        probe.close_session(session).expect("close probe session");
    }
    let dead_stats = dead.stats();
    assert!(dead_stats.downstream_timeouts > 0);
    assert_eq!(dead_stats.degraded_replies, 1);
    dead.shutdown();

    // Phase 4 — crash and restart: kill shard 1's *server* mid-burst (a
    // real process outage — connections die, the port goes dark), then
    // bring it back on the same address. The breaker must eject it so
    // requests stop paying its timeout, and the prober must re-admit
    // the restarted server after its tiling re-validates.
    let health = HealthConfig {
        consecutive_failures: 2,
        probe_interval: Duration::from_millis(25),
        probe_backoff_max: Duration::from_millis(200),
        readmit_successes: 2,
        ..Default::default()
    };
    let crash = start_router(
        &addrs,
        &coll,
        FailurePolicy::Degraded { min_shards: 2 },
        None,
        health,
    );
    let crash_addr = crash.local_addr();
    // A slower, longer burst than the other phases: it must comfortably
    // outlive the kill *and* the victim's connection-drain window, so
    // the outage provably overlaps in-flight traffic.
    let burst = {
        let coll = Arc::clone(&coll);
        let opts = LoadgenOptions {
            sessions: 8,
            queries_per_session: if fast() { 4 } else { 12 },
            k: K,
            think_time: Duration::from_millis(10),
            max_rounds: 32,
            trace: false,
        };
        let pool: Vec<Vec<f64>> = (0..opts.sessions * opts.queries_per_session)
            .map(|i| coll.vector(i).to_vec())
            .collect();
        thread::spawn(move || run_burst_with(crash_addr, &coll, &pool, opts))
    };
    thread::sleep(Duration::from_millis(30));
    let victim = shard_handles.remove(1);
    victim.shutdown(); // the outage: shard 1 is gone mid-burst
    let r4 = burst.join().expect("burst thread");
    print_report("shard 1 killed", &r4);
    assert_eq!(
        r4.server.requests, r4.searches,
        "an in-flight request hung or vanished across the crash"
    );
    assert!(
        r4.degraded > 0,
        "the kill must land mid-burst and degrade in-flight traffic"
    );

    // Keep traffic flowing until the breaker trips (the burst may have
    // drained before enough post-crash failures accumulated), then pin
    // the fast-degrade path: no request pays the dead shard's timeout.
    let deadline = Instant::now() + Duration::from_secs(10);
    while crash.stats().ejections() == 0 {
        assert!(
            Instant::now() < deadline,
            "breaker never ejected the killed shard"
        );
        let mut trip = Client::connect(crash_addr).expect("tripper client");
        let (s, _) = trip.open_session().expect("open tripper session");
        let _ = trip.knn(s, 5, &probe_query());
        trip.close_session(s).expect("close tripper session");
    }
    let shard_budget = Duration::from_millis(150); // the timeout ejection stops charging
    {
        let mut probe = Client::connect(crash_addr).expect("probe client");
        let (session, _) = probe.open_session().expect("open session");
        let q = probe_query();
        for _ in 0..10 {
            let t0 = Instant::now();
            let reply = probe.knn(session, 10, &q).expect("post-ejection knn");
            let took = t0.elapsed();
            assert!(
                took < shard_budget,
                "post-ejection request took {took:?} — the dead shard is still being waited on"
            );
            assert!(reply.degraded, "the ejected shard must flag the reply");
            assert_eq!(reply.missing_shards, vec![1]);
            assert_eq!(
                reply.neighbors,
                surviving_oracle(&coll, &[0, 2], &q, 10),
                "post-ejection answer diverged from the surviving-shard oracle"
            );
        }
        probe.close_session(session).expect("close probe session");
    }

    // The restart: rebind shard 1 on its old address (retry briefly —
    // the freed port can linger a moment after shutdown) and wait for
    // the prober to re-validate its tiling and re-admit it.
    let (start, _) = shard_range(coll.len(), 1);
    let restarted = {
        let slice = Arc::new(coll.slice_rows(start, shard_range(coll.len(), 1).1));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let cfg = ServerConfig {
                row_offset: start,
                ..Default::default()
            };
            match serve(addrs[1], Arc::clone(&slice), shared_module(), cfg) {
                Ok(h) => break h,
                Err(e) => {
                    assert!(Instant::now() < deadline, "could not rebind shard 1: {e}");
                    thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let s = crash.stats();
        let row = s
            .health
            .iter()
            .find(|h| h.shard == 1)
            .expect("shard 1 health row");
        if row.readmissions > 0 && row.state == HealthState::Healthy {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prober never re-admitted the restarted shard (state {:?})",
            row.state
        );
        thread::sleep(Duration::from_millis(10));
    }
    {
        let mut probe = Client::connect(crash_addr).expect("probe client");
        let (session, _) = probe.open_session().expect("open session");
        let q = probe_query();
        let reply = probe.knn(session, 10, &q).expect("post-restart knn");
        assert!(
            !reply.degraded,
            "a re-admitted shard must restore full answers"
        );
        assert!(reply.missing_shards.is_empty());
        let expect = LinearScan::with_mode(&coll, ScanMode::Batched).knn(
            &q,
            10,
            &WeightedEuclidean::uniform(DIM),
        );
        assert_eq!(
            reply.neighbors, expect,
            "post-restart answer diverged from the flat scan"
        );
        probe.close_session(session).expect("close probe session");
    }
    let crash_stats = crash.stats();
    assert!(crash_stats.ejections() >= 1);
    assert!(crash_stats.readmissions() >= 1);
    assert!(crash_stats.fast_degrades() >= 10);
    crash.shutdown();
    shard_handles.insert(1, restarted);
    println!(
        "{:<16} crash survived: {} ejection(s), {} probe failure(s), {} fast degrade(s), \
         {} re-admission(s); post-restart answers bit-identical to flat",
        "kill + restart",
        crash_stats.ejections(),
        crash_stats.probe_failures(),
        crash_stats.fast_degrades(),
        crash_stats.readmissions(),
    );

    for h in shard_handles {
        h.shutdown(); // joins every thread — returning IS the clean-shutdown proof
    }
    println!(
        "\nfaulted burst: {}/{} replies degraded, {} hedges fired ({} won), \
         {} downstream timeouts, {} retries — all sessions completed, all servers \
         shut down cleanly.",
        r2.degraded,
        r2.searches,
        r2.server.hedges_fired,
        r2.server.hedges_won,
        r2.server.downstream_timeouts,
        r2.server.downstream_retries,
    );
}
