//! Quickstart: the FeedbackBypass module in isolation.
//!
//! Builds a small labelled histogram collection, runs one feedback loop,
//! stores its outcome, and shows the loop being bypassed for the same and
//! for nearby queries.
//!
//! Run with: `cargo run --release --example quickstart`

use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::LinearScan;
use feedbackbypass::{BypassConfig, FeedbackBypass};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // A small synthetic image collection (the IMSI stand-in).
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let coll = &ds.collection;
    println!(
        "dataset: {} images, {} labelled, dim {}",
        coll.len(),
        ds.labelled.len(),
        coll.dim()
    );

    let engine = LinearScan::new(coll);
    let mut bypass = FeedbackBypass::for_histograms(coll.dim(), BypassConfig::default()).unwrap();

    // Pick a query image and its category oracle.
    let mut rng = StdRng::seed_from_u64(7);
    let qidx = ds.sample_query(&mut rng);
    let q: Vec<f64> = coll.vector(qidx).to_vec();
    let category = coll.label(qidx);
    let oracle = CategoryOracle::new(coll, category);
    println!(
        "query image #{qidx} (category {})",
        coll.category_name(category).unwrap()
    );

    // 1. A fresh module predicts the defaults.
    let p0 = bypass.predict(&q).unwrap();
    println!(
        "fresh prediction = defaults: weights all 1.0? {}",
        p0.weights.iter().all(|&w| (w - 1.0).abs() < 1e-12)
    );

    // 2. Run the feedback loop the old-fashioned way.
    let cfg = FeedbackConfig {
        k: 20,
        ..Default::default()
    };
    let fb_loop = FeedbackLoop::new(&engine, coll, cfg);
    let outcome = fb_loop.run(&q, &oracle).unwrap();
    println!(
        "feedback loop: {} cycles, precision {:.3} -> {:.3}",
        outcome.cycles,
        outcome.precision_trace.first().unwrap(),
        outcome.precision_trace.last().unwrap()
    );

    // 3. Store the converged parameters.
    bypass.insert(&q, &outcome.point, &outcome.weights).unwrap();
    println!(
        "stored; tree now holds {} point(s)",
        bypass.tree().stored_points()
    );

    // 4. Bypass the loop: the same query now starts from the optimum.
    let p1 = bypass.predict(&q).unwrap();
    let restart = fb_loop.run_from(&p1.point, &p1.weights, &oracle).unwrap();
    println!(
        "restarted from prediction: {} cycle(s), precision {:.3} immediately",
        restart.cycles, restart.precision_trace[0]
    );

    // 5. Nearby queries inherit a useful starting point too.
    let members = coll.category_members(category);
    if let Some(&other) = members.iter().find(|&&m| m != qidx) {
        let q2: Vec<f64> = coll.vector(other).to_vec();
        let p2 = bypass.predict(&q2).unwrap();
        let tilted = p2.weights.iter().any(|&w| (w - 1.0).abs() > 1e-6);
        println!(
            "sibling image #{other}: prediction {} the defaults",
            if tilted { "differs from" } else { "equals" }
        );
    }
}
