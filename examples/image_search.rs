//! Figure 1, qualitatively: top-5 results for one query image with
//! default parameters vs with FeedbackBypass's predicted parameters.
//!
//! The paper's Figure 1 shows a "Mammal" query whose default top-5
//! contains no mammals, while the bypass-predicted parameters yield 4.
//! This example trains the module on a stream of other queries, then
//! prints both result lists for a held-out query with per-result
//! categories.
//!
//! Run with: `cargo run --release --example image_search`

use fbp_eval::stream::query_order;
use fbp_eval::{run_stream, StreamOptions};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::{Distance, KnnEngine, LinearScan, WeightedEuclidean};

fn label_of(ds: &SyntheticDataset, idx: u32) -> String {
    let coll = &ds.collection;
    let l = coll.label(idx as usize);
    coll.category_name(l)
        .map(|s| s.to_string())
        .unwrap_or_else(|| "(noise)".to_string())
}

fn show_top5(
    ds: &SyntheticDataset,
    engine: &dyn KnnEngine,
    point: &[f64],
    weights: &[f64],
    header: &str,
    query_cat: &str,
) {
    let dist = WeightedEuclidean::new(weights.to_vec()).unwrap();
    let results = engine.knn(point, 5, &dist);
    println!("{header}");
    let mut hits = 0;
    for (rank, n) in results.iter().enumerate() {
        let cat = label_of(ds, n.index);
        if cat == query_cat {
            hits += 1;
        }
        println!(
            "  {}. image #{:<5} d = {:.4}  [{}]",
            rank + 1,
            n.index,
            n.dist,
            cat
        );
    }
    println!("  → {hits} of 5 in the query's category\n");
}

fn main() {
    let mut cfg = DatasetConfig::paper();
    cfg.scale = 0.5;
    cfg.noise_images = 3750;
    eprintln!("generating dataset...");
    let ds = SyntheticDataset::generate(cfg);
    let engine = LinearScan::new(&ds.collection);

    // Train the module on 400 queries.
    eprintln!("training FeedbackBypass on 400 queries...");
    let opts = StreamOptions {
        n_queries: 400,
        k: 50,
        ..Default::default()
    };
    let trained = run_stream(&ds, &engine, &opts).bypass;

    // Pick an illustrative held-out query, as the paper does for its
    // Figure 1: one where the predicted parameters visibly change the
    // top-5 (scan a slice of never-seen queries and take the biggest
    // improvement).
    let order = query_order(&ds, opts.seed);
    let coll = &ds.collection;
    let top5_hits = |point: &[f64], weights: &[f64], cat: u32| -> usize {
        let dist = WeightedEuclidean::new(weights.to_vec()).unwrap();
        engine
            .knn(point, 5, &dist)
            .iter()
            .filter(|n| coll.label(n.index as usize) == cat)
            .count()
    };
    let qidx = order
        .iter()
        .skip(opts.n_queries)
        .take(120)
        .copied()
        .max_by_key(|&i| {
            let q = coll.vector(i);
            let cat = coll.label(i);
            let d = top5_hits(q, &vec![1.0; q.len()], cat);
            let p = trained.predict(q).unwrap();
            let b = top5_hits(&p.point, &p.weights, cat);
            b as i64 - d as i64
        })
        .expect("held-out query exists");
    let q: Vec<f64> = coll.vector(qidx).to_vec();
    let query_cat = label_of(&ds, qidx as u32);
    println!("query: image #{qidx}, category \"{query_cat}\" (never seen by the module)\n");

    // Default vs FeedbackBypass top-5 (the two rows of Figure 1).
    show_top5(
        &ds,
        &engine,
        &q,
        &vec![1.0; q.len()],
        "Default results (Euclidean, unmoved query):",
        &query_cat,
    );
    let pred = trained.predict(&q).unwrap();
    show_top5(
        &ds,
        &engine,
        &pred.point,
        &pred.weights,
        "FeedbackBypass results (predicted query point + weights):",
        &query_cat,
    );

    // How different are the predicted parameters?
    let moved: f64 = fbp_vecdb::Euclidean.eval(&q, &pred.point);
    let w_spread = pred.weights.iter().cloned().fold(0.0_f64, f64::max)
        / pred.weights.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("predicted parameters: query moved by {moved:.4}, weight spread {w_spread:.1}×");
}
