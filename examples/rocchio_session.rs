//! A multi-example interactive session, end to end: probe a query,
//! mark a handful of result rows relevant and a handful non-relevant,
//! ship the judged rows as a Rocchio [`QuerySpec`] — and verify the
//! refined round is **bit-identical** to a flat scan against the
//! manually derived anchor, both in-process and over a real socket.
//!
//! Two acts:
//!
//! 1. **In-process** — the `fbp-eval` Rocchio scenario: N queries
//!    probed, judged three-valued (`Good`/`Bad`/`Neutral`) by the
//!    category oracle with a capped "user patience", refined in one
//!    coalesced [`SharedBypass::knn_batch`] pass over the specs.
//! 2. **Over the wire** — the same conversation against a live server:
//!    `Hello` negotiates protocol v2, the probe rides plain v1 `Knn`,
//!    the judged spec rides `KnnV2` (the server lowers it once, before
//!    admission), and the refinement loop finishes with ordinary
//!    `Feedback` rounds.
//!
//! Run with: `cargo run --release --example rocchio_session`

use fbp_eval::{run_rocchio, RocchioOptions};
use fbp_feedback::{CategoryOracle, RelevanceOracle, SetOracle};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_server::{serve, Client, ServerConfig, PROTOCOL_VERSION};
use fbp_vecdb::{KnnEngine, LinearScan, ScanMode, WeightedEuclidean};
use feedbackbypass::{BypassConfig, FeedbackBypass, QuerySpec, RocchioWeights, SharedBypass};
use std::sync::Arc;

const K: usize = 20;
const MAX_EXAMPLES: usize = 4;

fn main() {
    // ---- Act 1: the in-process scenario -------------------------------
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let opts = RocchioOptions {
        n_queries: 16,
        k: K,
        max_examples: MAX_EXAMPLES,
        ..Default::default()
    };
    let result = run_rocchio(&ds, &opts);
    let judged_pos: usize = result.records.iter().map(|r| r.positives).sum();
    let judged_neg: usize = result.records.iter().map(|r| r.negatives).sum();
    println!(
        "in-process: {} queries, k = {K}: probe precision {:.3} -> refined {:.3} \
         ({judged_pos} positive / {judged_neg} negative judgments)",
        result.records.len(),
        result.mean_probe_precision(),
        result.mean_refined_precision(),
    );
    assert!(
        result.all_bit_identical(),
        "every refined round must equal the flat derived-anchor scan"
    );

    // ---- Act 2: the same conversation over a socket -------------------
    let coll = Arc::new(ds.collection.clone());
    let module = SharedBypass::new(
        FeedbackBypass::for_histograms(coll.dim(), BypassConfig::default()).expect("module"),
    );
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        module,
        ServerConfig::default(),
    )
    .expect("bind server");

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let version = client.hello().expect("hello");
    assert_eq!(version, PROTOCOL_VERSION, "server must speak v2");
    let (session, dim) = client.open_session().expect("open session");
    assert_eq!(dim as usize, coll.dim());

    // Probe round: plain v1 Knn on the raw anchor.
    let qidx = ds.labelled[0];
    let anchor = coll.vector(qidx).to_vec();
    let truth = CategoryOracle::new(&coll, coll.label(qidx));
    let probe = client.knn(session, K as u32, &anchor).expect("probe");

    // The "user" marks at most MAX_EXAMPLES rows each way; the rest of
    // the round stays unjudged.
    let mut good: Vec<u32> = Vec::new();
    let mut bad: Vec<u32> = Vec::new();
    for n in &probe.neighbors {
        if truth.judge(n.index).is_good() {
            if good.len() < MAX_EXAMPLES {
                good.push(n.index);
            }
        } else if bad.len() < MAX_EXAMPLES {
            bad.push(n.index);
        }
    }
    let judged = SetOracle::with_negatives(good.clone(), bad.clone());
    let positives: Vec<Vec<f64>> = probe
        .neighbors
        .iter()
        .filter(|n| judged.judge(n.index).is_good())
        .map(|n| coll.vector(n.index as usize).to_vec())
        .collect();
    let negatives: Vec<Vec<f64>> = probe
        .neighbors
        .iter()
        .filter(|n| judged.judge(n.index).is_bad())
        .map(|n| coll.vector(n.index as usize).to_vec())
        .collect();
    let spec = QuerySpec::builder(anchor)
        .positives(positives)
        .negatives(negatives)
        .rocchio(RocchioWeights::default())
        .clamp_to_zero(true) // histogram domain: floor at zero
        .build()
        .expect("judged rows build a valid spec");

    // Refined round: the spec rides one KnnV2 frame; the server lowers
    // it to the derived anchor before admission, so the reply equals a
    // flat scan against that anchor bit-for-bit.
    let refined = client
        .knn_spec(session, K as u32, &spec)
        .expect("refined round");
    let flat = LinearScan::with_mode(&coll, ScanMode::Batched).knn(
        spec.lower().point(),
        K,
        &WeightedEuclidean::new(vec![1.0; coll.dim()]).expect("uniform"),
    );
    assert_eq!(
        refined.neighbors, flat,
        "wire spec round diverged from the flat derived-anchor scan"
    );

    let precision_of = |neighbors: &[fbp_vecdb::Neighbor]| {
        neighbors
            .iter()
            .filter(|n| truth.judge(n.index).is_good())
            .count() as f64
            / K as f64
    };
    println!(
        "over the wire: probe precision {:.3} -> refined {:.3} \
         ({} positives, {} negatives shipped; reply bit-identical to the flat scan)",
        precision_of(&probe.neighbors),
        precision_of(&refined.neighbors),
        spec.positives().len(),
        spec.negatives().len(),
    );

    // Finish the session like any interactive loop: judge the refined
    // rounds until the stepper reports done.
    let mut rounds = 0usize;
    let mut reply = refined;
    while !reply.done {
        let relevant: Vec<u32> = reply
            .neighbors
            .iter()
            .map(|n| n.index)
            .filter(|&id| truth.judge(id).is_good())
            .collect();
        let ack = client.feedback(session, &relevant).expect("feedback");
        rounds += 1;
        if ack.done {
            println!(
                "feedback loop finished after {rounds} judged rounds \
                 (converged: {}, cycles: {})",
                ack.converged, ack.cycles
            );
            break;
        }
        reply = client
            .knn_spec(session, K as u32, &spec)
            .expect("next round");
    }

    client.close_session(session).expect("close session");
    handle.shutdown();
    println!("session closed, server shut down cleanly.");
}
