//! The paper's §3 follow-up, runnable: FeedbackBypass over a PCA-reduced
//! query domain, side by side with the full-dimensional module.
//!
//! Run with: `cargo run --release --example reduced_domain [r] [n_queries]`

use fbp_eval::metrics;
use fbp_eval::scenario::evaluate_params;
use fbp_eval::stream::query_order;
use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_simplex_tree::TreeConfig;
use fbp_vecdb::LinearScan;
use feedbackbypass::{BypassConfig, FeedbackBypass, ReducedBypass};

fn main() {
    let mut args = std::env::args().skip(1);
    let r: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);

    let mut cfg = DatasetConfig::paper();
    cfg.scale = 0.5;
    cfg.noise_images = 3750;
    eprintln!("generating dataset...");
    let ds = SyntheticDataset::generate(cfg);
    let coll = &ds.collection;
    let engine = LinearScan::new(coll);
    let k = 50;

    let sample: Vec<&[f64]> = ds.labelled.iter().map(|&i| coll.vector(i)).collect();
    let mut full = FeedbackBypass::for_histograms(coll.dim(), BypassConfig::default()).unwrap();
    let mut reduced = ReducedBypass::fit(&sample, r, TreeConfig::default()).unwrap();
    println!(
        "PCA r = {r}: explained variance {:.1}% of the sample",
        100.0 * reduced.reducer().explained_variance
    );

    let fb = FeedbackLoop::new(
        &engine,
        coll,
        FeedbackConfig {
            k,
            ..Default::default()
        },
    );
    let order = query_order(&ds, 0xBEEF);
    let mut full_prec = Vec::new();
    let mut red_prec = Vec::new();
    let mut full_visits = Vec::new();
    let mut red_visits = Vec::new();
    eprintln!("streaming {n} queries through both modules...");
    for &qidx in order.iter().take(n) {
        let q: Vec<f64> = coll.vector(qidx).to_vec();
        let oracle = CategoryOracle::new(coll, coll.label(qidx));

        let pf = full.predict(&q).unwrap();
        let pr = reduced.predict(&q).unwrap();
        full_visits.push(pf.nodes_visited as f64);
        red_visits.push(pr.nodes_visited as f64);
        full_prec.push(evaluate_params(&engine, &pf.point, &pf.weights, k, &oracle).precision);
        red_prec.push(evaluate_params(&engine, &pr.point, &pr.weights, k, &oracle).precision);

        let run = fb.run(&q, &oracle).unwrap();
        if run.cycles > 0 {
            full.insert(&q, &run.point, &run.weights).unwrap();
            reduced.insert(&q, &run.point, &run.weights).unwrap();
        }
    }

    let tail = n / 2;
    println!("\nafter {n} queries (tail-mean precision @ k={k}):");
    println!(
        "  full {:>2}-d domain : precision {:.4}, mean simplices visited {:.2}, tree {} nodes / depth {}",
        coll.dim() - 1,
        metrics::tail_mean(&full_prec, tail),
        metrics::mean(&full_visits),
        full.tree().node_count(),
        full.tree().shape().depth,
    );
    println!(
        "  PCA  {r:>2}-d domain : precision {:.4}, mean simplices visited {:.2}, tree {} nodes / depth {}",
        metrics::tail_mean(&red_prec, tail),
        metrics::mean(&red_visits),
        reduced.tree().node_count(),
        reduced.tree().shape().depth,
    );
}
