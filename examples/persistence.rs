//! Cross-session persistence: the whole point of FeedbackBypass is that
//! learned parameters survive "across multiple query sessions".
//!
//! Session 1 learns from a stream of queries and saves the module to
//! disk; session 2 restores it and immediately benefits. Also
//! demonstrates that corruption is detected rather than silently loaded.
//!
//! Run with: `cargo run --release --example persistence`

use fbp_eval::scenario::{evaluate_default, evaluate_params};
use fbp_eval::stream::query_order;
use fbp_eval::{metrics, run_stream, StreamOptions};
use fbp_feedback::CategoryOracle;
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::LinearScan;
use feedbackbypass::FeedbackBypass;

fn main() {
    let mut cfg = DatasetConfig::paper();
    cfg.scale = 0.3;
    cfg.noise_images = 2250;
    eprintln!("generating dataset...");
    let ds = SyntheticDataset::generate(cfg);
    let engine = LinearScan::new(&ds.collection);
    let path = std::env::temp_dir().join("feedbackbypass_session.fbst");

    // --- Session 1: learn, then save. ---
    eprintln!("session 1: learning from 250 queries...");
    let opts = StreamOptions {
        n_queries: 250,
        k: 30,
        ..Default::default()
    };
    let trained = run_stream(&ds, &engine, &opts).bypass;
    let image = trained.to_bytes();
    std::fs::write(&path, &image).expect("write session file");
    println!(
        "session 1: stored {} points, saved {} bytes to {}",
        trained.tree().stored_points(),
        image.len(),
        path.display()
    );
    drop(trained); // the process "exits"

    // --- Session 2: restore and benefit immediately. ---
    let restored = FeedbackBypass::from_bytes(&std::fs::read(&path).expect("read session file"))
        .expect("restore module");
    println!(
        "session 2: restored module with {} stored points",
        restored.tree().stored_points()
    );

    // Evaluate on held-out queries: restored predictions vs defaults.
    let coll = &ds.collection;
    let order = query_order(&ds, opts.seed);
    let mut d_precisions = Vec::new();
    let mut b_precisions = Vec::new();
    for &qidx in order.iter().skip(opts.n_queries).take(100) {
        let q = coll.vector(qidx);
        let oracle = CategoryOracle::new(coll, coll.label(qidx));
        d_precisions.push(evaluate_default(&engine, q, 30, &oracle).precision);
        let pred = restored.predict(q).unwrap();
        b_precisions
            .push(evaluate_params(&engine, &pred.point, &pred.weights, 30, &oracle).precision);
    }
    let d = metrics::mean(&d_precisions);
    let b = metrics::mean(&b_precisions);
    println!(
        "session 2 on 100 fresh queries: default precision {d:.3}, restored-bypass {b:.3} ({:+.1}%)",
        metrics::precision_gain(b, d)
    );

    // --- Corruption is detected, never silently loaded. ---
    let mut corrupt = image.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xA5;
    match FeedbackBypass::from_bytes(&corrupt) {
        Err(e) => println!("corrupted file correctly rejected: {e}"),
        Ok(_) => unreachable!("corruption must not load"),
    }
    let _ = std::fs::remove_file(&path);
}
