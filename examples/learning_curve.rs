//! Learning curve: the Figure 10 experiment at a configurable scale.
//!
//! Streams queries through a retrieval system enriched with
//! FeedbackBypass and prints average precision of the three scenarios
//! (Default / FeedbackBypass / AlreadySeen) as the number of processed
//! queries grows, plus the precision gains of Figure 10b.
//!
//! Run with: `cargo run --release --example learning_curve [n_queries] [k] [scale]`

use fbp_eval::report::Figure;
use fbp_eval::{efficiency::checkpoints, metrics, run_stream, Series, StreamOptions};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::LinearScan;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_queries: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let mut cfg = DatasetConfig::paper();
    cfg.scale = scale;
    cfg.noise_images = (7509.0 * scale) as usize;
    eprintln!("generating dataset (scale {scale})...");
    let ds = SyntheticDataset::generate(cfg);
    eprintln!(
        "dataset ready: {} images ({} labelled); streaming {} queries at k = {k}",
        ds.collection.len(),
        ds.labelled.len(),
        n_queries
    );

    let engine = LinearScan::new(&ds.collection);
    let opts = StreamOptions {
        n_queries,
        k,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);

    let d: Vec<f64> = res.records.iter().map(|r| r.default.precision).collect();
    let b: Vec<f64> = res.records.iter().map(|r| r.bypass.precision).collect();
    let s: Vec<f64> = res.records.iter().map(|r| r.seen.precision).collect();
    let cd = metrics::cumulative_avg(&d);
    let cb = metrics::cumulative_avg(&b);
    let cs = metrics::cumulative_avg(&s);

    let cps = checkpoints(n_queries, (n_queries / 10).max(1));
    let pick =
        |v: &[f64]| -> Vec<(f64, f64)> { cps.iter().map(|&c| (c as f64, v[c - 1])).collect() };
    let fig = Figure::new(
        format!("Figure 10a — average precision vs no. of queries (k = {k})"),
        "no. of queries",
        "precision",
        vec![
            Series::new("AlreadySeen", pick(&cs)),
            Series::new("FeedbackBypass", pick(&cb)),
            Series::new("Default", pick(&cd)),
        ],
    );
    println!("{}", fig.to_table());

    let gain_b: Vec<(f64, f64)> = cps
        .iter()
        .map(|&c| (c as f64, metrics::precision_gain(cb[c - 1], cd[c - 1])))
        .collect();
    let gain_s: Vec<(f64, f64)> = cps
        .iter()
        .map(|&c| (c as f64, metrics::precision_gain(cs[c - 1], cd[c - 1])))
        .collect();
    let fig_b = Figure::new(
        "Figure 10b — precision gain (%) vs no. of queries",
        "no. of queries",
        "gain %",
        vec![
            Series::new("AlreadySeen", gain_s),
            Series::new("FeedbackBypass", gain_b),
        ],
    );
    println!("{}", fig_b.to_table());

    let shape = res.bypass.tree().shape();
    println!(
        "tree: {} stored points, {} nodes, depth {}",
        shape.stored_points, shape.node_count, shape.depth
    );
}
