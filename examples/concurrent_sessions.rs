//! Concurrent user sessions sharing one FeedbackBypass module.
//!
//! A retrieval service handles many simultaneous users; all of them
//! should read (predict) and extend (insert) the same learned mapping.
//! This example runs several worker threads, each simulating a user
//! session stream against the shared module, and reports the combined
//! learning effect.
//!
//! Run with: `cargo run --release --example concurrent_sessions`

use fbp_eval::metrics;
use fbp_eval::scenario::evaluate_params;
use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::LinearScan;
use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

const WORKERS: usize = 4;
const QUERIES_PER_WORKER: usize = 60;
const K: usize = 30;

fn main() {
    let mut cfg = DatasetConfig::paper();
    cfg.scale = 0.3;
    cfg.noise_images = 2250;
    eprintln!("generating dataset...");
    let ds = SyntheticDataset::generate(cfg);
    let coll = &ds.collection;

    let module = FeedbackBypass::for_histograms(coll.dim(), BypassConfig::default()).unwrap();
    let shared = SharedBypass::new(module);

    // Disjoint query slices per worker.
    let mut pool = ds.labelled.clone();
    pool.shuffle(&mut StdRng::seed_from_u64(42));
    let slices: Vec<Vec<usize>> = (0..WORKERS)
        .map(|w| pool[w * QUERIES_PER_WORKER..(w + 1) * QUERIES_PER_WORKER].to_vec())
        .collect();

    eprintln!("running {WORKERS} session threads...");
    let t0 = std::time::Instant::now();
    crossbeam::thread::scope(|scope| {
        for (w, slice) in slices.iter().enumerate() {
            let shared = shared.clone();
            let ds = &ds;
            scope.spawn(move |_| {
                let coll = &ds.collection;
                let engine = LinearScan::new(coll);
                let fb_cfg = FeedbackConfig {
                    k: K,
                    ..Default::default()
                };
                let fb_loop = FeedbackLoop::new(&engine, coll, fb_cfg);
                let mut bypassed = 0usize;
                for &qidx in slice {
                    let q = coll.vector(qidx);
                    let oracle = CategoryOracle::new(coll, coll.label(qidx));
                    // Figure 5 protocol against the shared module.
                    let pred = shared.predict(q).unwrap();
                    let run = fb_loop
                        .run_from(&pred.point, &pred.weights, &oracle)
                        .unwrap();
                    if run.cycles == 0 {
                        bypassed += 1; // prediction was already stable
                    } else {
                        shared.insert(q, &run.point, &run.weights).unwrap();
                    }
                }
                println!(
                    "worker {w}: {} queries, {} loops fully bypassed",
                    slice.len(),
                    bypassed
                );
            });
        }
    })
    .unwrap();
    let elapsed = t0.elapsed();

    let (stored, nodes, depth) = shared.stats();
    println!(
        "\nshared tree after {} total queries: {stored} stored points, {nodes} nodes, depth {depth} ({elapsed:.2?})",
        WORKERS * QUERIES_PER_WORKER
    );

    // Fresh queries benefit from everyone's feedback.
    let engine = LinearScan::new(coll);
    let eval_pool: Vec<usize> = pool
        [WORKERS * QUERIES_PER_WORKER..(WORKERS * QUERIES_PER_WORKER + 80).min(pool.len())]
        .to_vec();
    let mut defaults = Vec::new();
    let mut bypassed = Vec::new();
    for qidx in eval_pool {
        let q = coll.vector(qidx);
        let oracle = CategoryOracle::new(coll, coll.label(qidx));
        defaults.push(evaluate_params(&engine, q, &vec![1.0; coll.dim()], K, &oracle).precision);
        let pred = shared.predict(q).unwrap();
        bypassed.push(evaluate_params(&engine, &pred.point, &pred.weights, K, &oracle).precision);
    }
    let d = metrics::mean(&defaults);
    let b = metrics::mean(&bypassed);
    println!(
        "fresh queries: default {d:.3} vs shared-bypass {b:.3} ({:+.1}%)",
        metrics::precision_gain(b, d)
    );
}
