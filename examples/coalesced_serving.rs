//! Coalesced multi-query serving vs per-session scans.
//!
//! N concurrent feedback sessions share one collection and one
//! FeedbackBypass module. The baseline serves every feedback iteration
//! with its own `LinearScan` pass; the coalesced mode advances all
//! sessions in lock-step rounds, bundling their pending k-NN requests
//! into one `MultiQueryScan` pass per round
//! (`SharedBypass::knn_batch`) — the collection is streamed once per
//! round instead of once per session. The f32-rescore row additionally
//! streams the collection's f32 mirror as the phase-1 filter (half the
//! bytes per pass) and rescores candidates in f64 — identical results,
//! lower bandwidth.
//!
//! Run with: `cargo run --release --example coalesced_serving`

use fbp_eval::sessions::{run_sessions, ServingMode, SessionsOptions};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::{Precision, ScanMode};

fn main() {
    // Paper scale: ~10k vectors. Small collections fit in cache and mute
    // the coalescing win — the effect is about DRAM traffic.
    let cfg = DatasetConfig::paper();
    eprintln!("generating dataset...");
    let mut ds = SyntheticDataset::generate(cfg);
    // Serving opts into the f32 mirror: +33% resident bytes, −50% bytes
    // per scan pass, bit-identical answers.
    ds.collection.ensure_f32_mirror();
    eprintln!(
        "{} vectors × {}-d, {} labelled queries, {:.1} MB (+{:.1} MB f32 mirror)\n",
        ds.collection.len(),
        ds.collection.dim(),
        ds.labelled.len(),
        (ds.collection.memory_bytes() - ds.collection.mirror_bytes()) as f64 / 1e6,
        ds.collection.mirror_bytes() as f64 / 1e6,
    );

    let base = SessionsOptions {
        n_sessions: 16,
        queries_per_session: 12,
        k: 30,
        ..Default::default()
    };

    println!(
        "{:<28} {:>9} {:>12} {:>13} {:>11} {:>10}",
        "serving mode", "searches", "scan passes", "searches/sec", "mean cycles", "precision"
    );
    let report = |name: &str, serving: ServingMode, precision: Precision| {
        let opts = SessionsOptions {
            serving,
            precision,
            ..base.clone()
        };
        let res = run_sessions(&ds, &opts);
        println!(
            "{name:<28} {:>9} {:>12} {:>13.0} {:>11.2} {:>10.3}",
            res.searches,
            res.scan_passes,
            res.searches_per_sec(),
            res.mean_cycles(),
            res.mean_final_precision()
        );
        res
    };

    let independent = report(
        "independent (1 scan/query)",
        ServingMode::Independent(ScanMode::Batched),
        Precision::F64,
    );
    let coalesced = report(
        "coalesced (multi-query)",
        ServingMode::Coalesced(ScanMode::Batched),
        Precision::F64,
    );
    let coalesced_f32 = report(
        "coalesced + f32 rescore",
        ServingMode::Coalesced(ScanMode::Batched),
        Precision::F32Rescore,
    );

    println!(
        "\ncoalescing served {} searches in {} collection passes ({:.1} searches/pass);",
        coalesced.searches,
        coalesced.scan_passes,
        coalesced.searches as f64 / coalesced.scan_passes as f64
    );
    println!(
        "throughput {:.2}× the per-session baseline on this host, {:.2}× with the f32 mirror.",
        coalesced.searches_per_sec() / independent.searches_per_sec(),
        coalesced_f32.searches_per_sec() / independent.searches_per_sec()
    );
    // The two serving modes and both precisions execute the identical
    // feedback transitions, so the learned outcomes must agree exactly.
    assert_eq!(coalesced.per_session.len(), coalesced_f32.per_session.len());
    for (a, b) in coalesced
        .per_session
        .iter()
        .zip(coalesced_f32.per_session.iter())
    {
        assert_eq!(a, b, "f32 rescore changed a session outcome");
    }
}
