//! Coalesced multi-query serving vs per-session scans.
//!
//! N concurrent feedback sessions share one collection and one
//! FeedbackBypass module. The baseline serves every feedback iteration
//! with its own `LinearScan` pass; the coalesced mode advances all
//! sessions in lock-step rounds, bundling their pending k-NN requests
//! into one `MultiQueryScan` pass per round
//! (`SharedBypass::knn_batch`) — the collection is streamed once per
//! round instead of once per session.
//!
//! Run with: `cargo run --release --example coalesced_serving`

use fbp_eval::sessions::{run_sessions, ServingMode, SessionsOptions};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::ScanMode;

fn main() {
    // Paper scale: ~10k vectors. Small collections fit in cache and mute
    // the coalescing win — the effect is about DRAM traffic.
    let cfg = DatasetConfig::paper();
    eprintln!("generating dataset...");
    let ds = SyntheticDataset::generate(cfg);
    eprintln!(
        "{} vectors × {}-d, {} labelled queries\n",
        ds.collection.len(),
        ds.collection.dim(),
        ds.labelled.len()
    );

    let base = SessionsOptions {
        n_sessions: 16,
        queries_per_session: 12,
        k: 30,
        ..Default::default()
    };

    println!(
        "{:<28} {:>9} {:>12} {:>13} {:>11} {:>10}",
        "serving mode", "searches", "scan passes", "searches/sec", "mean cycles", "precision"
    );
    let report = |name: &str, serving: ServingMode| {
        let opts = SessionsOptions {
            serving,
            ..base.clone()
        };
        let res = run_sessions(&ds, &opts);
        println!(
            "{name:<28} {:>9} {:>12} {:>13.0} {:>11.2} {:>10.3}",
            res.searches,
            res.scan_passes,
            res.searches_per_sec(),
            res.mean_cycles(),
            res.mean_final_precision()
        );
        res
    };

    let independent = report(
        "independent (1 scan/query)",
        ServingMode::Independent(ScanMode::Batched),
    );
    let coalesced = report(
        "coalesced (multi-query)",
        ServingMode::Coalesced(ScanMode::Batched),
    );

    println!(
        "\ncoalescing served {} searches in {} collection passes ({:.1} searches/pass);",
        coalesced.searches,
        coalesced.scan_passes,
        coalesced.searches as f64 / coalesced.scan_passes as f64
    );
    println!(
        "throughput {:.2}× the per-session baseline on this host.",
        coalesced.searches_per_sec() / independent.searches_per_sec()
    );
}
