//! Per-dimension and streaming statistics.
//!
//! The re-weighting feedback strategies (paper §2) reduce to statistics of
//! the "good" result points: MARS uses `wᵢ = 1/σᵢ`, MindReader/ISF98 use
//! `wᵢ ∝ 1/σᵢ²`, and the quadratic (Mahalanobis) variant needs the full
//! covariance matrix. [`RunningStats`] implements Welford's numerically
//! stable one-pass update; [`DimStats`] batches it over a set of vectors.

use crate::Matrix;

/// Welford one-pass mean/variance accumulator for a single dimension.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Fold one observation with a non-negative weight (graded relevance
    /// scores weight the good examples in Eq. 2 of the paper; West's
    /// weighted incremental update).
    #[inline]
    pub fn push_weighted(&mut self, x: f64, w: f64, wsum: &mut f64) {
        debug_assert!(w >= 0.0);
        if w == 0.0 {
            return;
        }
        self.n += 1;
        let new_wsum = *wsum + w;
        let delta = x - self.mean;
        let r = delta * w / new_wsum;
        self.mean += r;
        self.m2 += *wsum * delta * r;
        *wsum = new_wsum;
    }

    /// Number of observations folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0.0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (÷ n). The feedback formulas use population
    /// variance: the good set IS the population the user defined.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Sample variance (÷ n−1); 0.0 with fewer than two observations.
    #[inline]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator (parallel reduction; Chan's formula).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Per-dimension statistics over a set of equal-length vectors.
#[derive(Debug, Clone)]
pub struct DimStats {
    dims: Vec<RunningStats>,
}

impl DimStats {
    /// Accumulator for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        DimStats {
            dims: vec![RunningStats::new(); dim],
        }
    }

    /// Build directly from a batch of vectors.
    pub fn from_vectors<'a, I>(dim: usize, vectors: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut s = DimStats::new(dim);
        for v in vectors {
            s.push(v);
        }
        s
    }

    /// Fold one vector in.
    pub fn push(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.dims.len(), "DimStats::push: dim mismatch");
        for (s, &x) in self.dims.iter_mut().zip(v.iter()) {
            s.push(x);
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Observations per dimension (identical across dimensions).
    pub fn count(&self) -> u64 {
        self.dims.first().map_or(0, |s| s.count())
    }

    /// Per-dimension means.
    pub fn means(&self) -> Vec<f64> {
        self.dims.iter().map(|s| s.mean()).collect()
    }

    /// Per-dimension population variances.
    pub fn variances(&self) -> Vec<f64> {
        self.dims.iter().map(|s| s.variance()).collect()
    }

    /// Per-dimension population standard deviations.
    pub fn std_devs(&self) -> Vec<f64> {
        self.dims.iter().map(|s| s.std_dev()).collect()
    }

    /// Access one dimension's accumulator.
    pub fn dim_stats(&self, i: usize) -> &RunningStats {
        &self.dims[i]
    }
}

/// Population covariance matrix of a batch of vectors (two-pass).
///
/// Returns a `dim × dim` symmetric matrix; the zero matrix when the batch
/// is empty. Used by the Mahalanobis re-weighting extension.
pub fn covariance_matrix(dim: usize, vectors: &[&[f64]]) -> Matrix {
    let n = vectors.len();
    let mut cov = Matrix::zeros(dim, dim);
    if n == 0 {
        return cov;
    }
    let mut mean = vec![0.0; dim];
    for v in vectors {
        assert_eq!(v.len(), dim);
        for (m, &x) in mean.iter_mut().zip(v.iter()) {
            *m += x;
        }
    }
    for m in mean.iter_mut() {
        *m /= n as f64;
    }
    let mut centered = vec![0.0; dim];
    for v in vectors {
        for i in 0..dim {
            centered[i] = v[i] - mean[i];
        }
        for i in 0..dim {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            let row = cov.row_mut(i);
            for j in 0..dim {
                row[j] += ci * centered[j];
            }
        }
    }
    for i in 0..dim {
        for j in 0..dim {
            cov[(i, j)] /= n as f64;
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(42.0);
        assert_eq!(s1.mean(), 42.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data = [1.0, 2.5, -3.0, 4.0, 0.0, 7.5, -1.0];
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..3] {
            a.push(x);
        }
        for &x in &data[3..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        // Merging an empty accumulator is a no-op either way.
        let empty = RunningStats::new();
        let before = a.clone();
        a.merge(&empty);
        assert!((a.mean() - before.mean()).abs() < 1e-15);
        let mut e2 = RunningStats::new();
        e2.merge(&before);
        assert!((e2.variance() - before.variance()).abs() < 1e-15);
    }

    #[test]
    fn weighted_push_matches_repetition() {
        // Weight 3 on x should equal pushing x three times.
        let mut w = RunningStats::new();
        let mut wsum = 0.0;
        w.push_weighted(2.0, 3.0, &mut wsum);
        w.push_weighted(5.0, 1.0, &mut wsum);
        let mut r = RunningStats::new();
        for x in [2.0, 2.0, 2.0, 5.0] {
            r.push(x);
        }
        assert!((w.mean() - r.mean()).abs() < 1e-12);
        // Zero-weight observations are ignored entirely.
        let before = w.mean();
        w.push_weighted(100.0, 0.0, &mut wsum);
        assert_eq!(w.mean(), before);
    }

    #[test]
    fn dim_stats_per_dimension() {
        let vs: Vec<&[f64]> = vec![&[1.0, 10.0], &[3.0, 10.0], &[5.0, 10.0]];
        let s = DimStats::from_vectors(2, vs);
        assert_eq!(s.count(), 3);
        assert_eq!(s.means(), vec![3.0, 10.0]);
        let var = s.variances();
        assert!((var[0] - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(var[1], 0.0); // constant dimension → σ = 0 (degenerate case)
    }

    #[test]
    fn covariance_known() {
        let vs: Vec<&[f64]> = vec![&[1.0, 2.0], &[3.0, 6.0], &[5.0, 10.0]];
        let cov = covariance_matrix(2, &vs);
        // Second dim = 2 × first dim: cov = [[v, 2v], [2v, 4v]] with v = 8/3.
        let v = 8.0 / 3.0;
        assert!((cov[(0, 0)] - v).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0 * v).abs() < 1e-12);
        assert!((cov[(1, 0)] - 2.0 * v).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0 * v).abs() < 1e-12);
        assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn covariance_empty_is_zero() {
        let cov = covariance_matrix(3, &[]);
        assert_eq!(cov.as_slice().iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn welford_stable_under_large_offset() {
        // Classic catastrophic-cancellation probe: variance of values near
        // 1e9 must come out exact.
        let mut s = RunningStats::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            s.push(x);
        }
        assert!((s.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((s.sample_variance() - 30.0).abs() < 1e-6);
    }
}
