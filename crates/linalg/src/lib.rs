//! # fbp-linalg
//!
//! Small, dependency-free dense linear algebra substrate for the
//! FeedbackBypass reproduction.
//!
//! The FeedbackBypass system needs exactly the kernels collected here:
//!
//! * vector arithmetic over `f64` slices ([`vector`]),
//! * a dense row-major [`Matrix`] with the usual products ([`matrix`]),
//! * LU decomposition with partial pivoting for solving the barycentric
//!   coordinate systems of the Simplex Tree and for determinants
//!   ([`lu`]),
//! * Cholesky decomposition for Mahalanobis (quadratic-form) distances
//!   learned from feedback covariance matrices ([`cholesky`]),
//! * streaming/per-dimension statistics (mean, variance, covariance) used
//!   by the re-weighting feedback strategies ([`stats`]).
//!
//! Everything is written against plain `&[f64]` buffers so callers can keep
//! their own storage (the Simplex Tree keeps vertices in flat arenas).

#![warn(missing_docs)]
// Numeric kernels deliberately use explicit index loops: they mirror the
// textbook formulas (row/column index chasing) more faithfully than
// iterator chains, which matters when verifying against the math.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod matrix;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use lu::Lu;
pub use matrix::Matrix;
pub use stats::{covariance_matrix, DimStats, RunningStats};

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix is singular (or numerically so) at the given pivot step.
    Singular {
        /// Elimination step at which the pivot vanished.
        step: usize,
    },
    /// Matrix is not positive definite at the given pivot step.
    NotPositiveDefinite {
        /// Pivot index at which positive definiteness failed.
        step: usize,
    },
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape actually supplied.
        got: (usize, usize),
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            LinalgError::NotPositiveDefinite { step } => {
                write!(f, "matrix is not positive definite at pivot {step}")
            }
            LinalgError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Result alias for fallible linalg operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
