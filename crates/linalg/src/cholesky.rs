//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Mahalanobis-style quadratic distance functions (paper §2) are
//! parameterized by a symmetric positive-(semi)definite weight matrix `W`
//! learned from the covariance of the "good" feedback examples. The
//! Cholesky factor both certifies positive definiteness and evaluates the
//! quadratic form as `‖Lᵀ·x‖²`, which is cheaper and numerically safer than
//! the explicit double sum.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorize a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's contract (feedback covariance construction
    /// guarantees it).
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: (a.rows(), a.rows()),
                got: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { step: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    #[inline]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Order of the factored matrix.
    #[inline]
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Evaluate the quadratic form `xᵀ·A·x = ‖Lᵀ·x‖²` without forming `A`.
    pub fn quadratic_form(&self, x: &[f64]) -> Result<f64> {
        let n = self.order();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (x.len(), 1),
            });
        }
        // y = Lᵀ x; accumulate ‖y‖² on the fly.
        let mut acc = 0.0;
        for j in 0..n {
            let mut y = 0.0;
            for i in j..n {
                y += self.l[(i, j)] * x[i];
            }
            acc += y * y;
        }
        Ok(acc)
    }

    /// Solve `A·x = b` via the two triangular systems.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Forward: L·y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            let mut acc = y[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the original matrix (product of squared diagonals).
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.order() {
            let v = self.l[(i, i)];
            d *= v * v;
        }
        d
    }

    /// Reconstruct `A = L·Lᵀ` (mainly for tests and persistence checks).
    pub fn reconstruct(&self) -> Matrix {
        self.l.matmul(&self.l.transpose()).expect("square factors")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.reconstruct().max_abs_diff(&a) < 1e-12);
        assert!((ch.det() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_semidefinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn quadratic_form_matches_explicit() {
        let a = Matrix::from_rows(&[&[2.0, 0.5, 0.0], &[0.5, 1.0, 0.2], &[0.0, 0.2, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let x = [1.0, -2.0, 0.5];
        let explicit = a.quadratic_form(&x, &x).unwrap();
        let via_chol = ch.quadratic_form(&x).unwrap();
        assert!((explicit - via_chol).abs() < 1e-12);
    }

    #[test]
    fn solve_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let b = [1.0, 2.0];
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - b[0]).abs() < 1e-12 && (ax[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn diagonal_case_is_weighted_euclidean() {
        // Cholesky of diag(w) gives the weighted Euclidean quadratic form —
        // exactly the bridge the distance module relies on.
        let w = [2.0, 5.0, 0.5];
        let ch = Cholesky::factor(&Matrix::from_diag(&w)).unwrap();
        let x = [1.0, 1.0, 2.0];
        let expected: f64 = w.iter().zip(x.iter()).map(|(wi, xi)| wi * xi * xi).sum();
        assert!((ch.quadratic_form(&x).unwrap() - expected).abs() < 1e-12);
    }
}
