//! Dense row-major matrix.
//!
//! The FeedbackBypass workloads only ever see small dense matrices (the
//! barycentric system of a D-dimensional simplex is D×D with D ≤ a few
//! dozen; feedback covariance matrices are D_feature × D_feature), so a
//! simple contiguous row-major layout with no blocking is the right tool.

use crate::{LinalgError, Result};

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: bad length");
        Matrix { rows, cols, data }
    }

    /// Build from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Diagonal matrix with the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            y[r] = crate::vector::dot(self.row(r), x);
        }
        Ok(y)
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, other.cols),
                got: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: the innermost loop walks both `other` and `out`
        // rows contiguously, which matters even at these small sizes.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let crow = out.row_mut(i);
                for j in 0..other.cols {
                    crow[j] += a * orow[j];
                }
            }
        }
        Ok(out)
    }

    /// Quadratic form `xᵀ · self · y`.
    pub fn quadratic_form(&self, x: &[f64], y: &[f64]) -> Result<f64> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, self.cols),
                got: (x.len(), y.len()),
            });
        }
        let mut acc = 0.0;
        for r in 0..self.rows {
            acc += x[r] * crate::vector::dot(self.row(r), y);
        }
        Ok(acc)
    }

    /// Max absolute element difference against `other` (∞-norm of A−B).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// True if symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn quadratic_form_diag() {
        let m = Matrix::from_diag(&[2.0, 3.0]);
        let q = m.quadratic_form(&[1.0, 1.0], &[1.0, 1.0]).unwrap();
        assert_eq!(q, 5.0);
        // Cross term via a non-diagonal matrix.
        let m2 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let q2 = m2.quadratic_form(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(q2, 1.0 * 4.0 + 2.0 * 3.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.1, 5.0]]);
        assert!(!a.is_symmetric(1e-3));
        assert!(a.is_symmetric(0.2));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }
}
