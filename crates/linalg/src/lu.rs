//! LU decomposition with partial pivoting.
//!
//! The Simplex Tree's direct barycentric solver builds the D×D edge matrix
//! of a simplex and solves one right-hand side per lookup; the incremental
//! descent path (see `fbp-geometry`) avoids most of these solves, but LU
//! remains the ground truth the fast path is verified against, and it also
//! provides determinants for simplex volume / degeneracy tests.

use crate::{LinalgError, Matrix, Result};

/// LU decomposition `P·A = L·U` of a square matrix, with partial pivoting.
///
/// `L` has an implicit unit diagonal; both factors are packed into a single
/// matrix. `perm` records row exchanges; `sign` is the permutation parity
/// (needed for signed determinants, which simplex orientation tests use).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

/// Pivot magnitudes below this are treated as exact singularity.
pub const SINGULARITY_EPS: f64 = 1e-13;

impl Lu {
    /// Factorize `a`. Returns an error if a pivot underflows
    /// [`SINGULARITY_EPS`] relative to the largest row entry.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: (a.rows(), a.rows()),
                got: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        // Row scales for scaled partial pivoting: keeps the factorization
        // stable when simplex edges have wildly different lengths (deep
        // splits produce exactly that).
        let mut scale = vec![0.0; n];
        for r in 0..n {
            let s = lu.row(r).iter().fold(0.0_f64, |m, x| m.max(x.abs()));
            if s == 0.0 {
                return Err(LinalgError::Singular { step: r });
            }
            scale[r] = 1.0 / s;
        }

        for k in 0..n {
            // Select pivot row by scaled magnitude.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs() * scale[k];
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs() * scale[r];
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < SINGULARITY_EPS {
                return Err(LinalgError::Singular { step: k });
            }
            if pivot_row != k {
                // Swap rows k and pivot_row.
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                scale.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let sub = factor * lu[(k, c)];
                        lu[(r, c)] -= sub;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Order of the factored matrix.
    #[inline]
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A·x = b` for one right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Signed determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.order() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.order();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Ok(inv)
    }
}

/// Convenience: factor and solve in one call.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

/// Convenience: determinant of `a` (0.0 for singular input).
pub fn det(a: &Matrix) -> f64 {
    match Lu::factor(a) {
        Ok(lu) => lu.det(),
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.iter()
            .zip(b.iter())
            .fold(0.0_f64, |m, (p, q)| m.max((p - q).abs()))
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row exchange.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
        assert_eq!(det(&a), 0.0);
        let z = Matrix::zeros(3, 3);
        assert!(Lu::factor(&z).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn det_matches_cofactor_expansion_3x3() {
        let a = Matrix::from_rows(&[&[6.0, 1.0, 1.0], &[4.0, -2.0, 5.0], &[2.0, 8.0, 7.0]]);
        // Known determinant: -306.
        assert!((det(&a) - (-306.0)).abs() < 1e-10);
    }

    #[test]
    fn det_sign_tracks_row_swaps() {
        let i = Matrix::identity(3);
        assert!((det(&i) - 1.0).abs() < 1e-15);
        let swapped = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert!((det(&swapped) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn random_systems_small_residual() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8, 13, 21, 31] {
            let mut data = vec![0.0; n * n];
            for v in data.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
            // Diagonal boost keeps the random matrix comfortably regular.
            let mut a = Matrix::from_vec(n, n, data);
            for i in 0..n {
                a[(i, i)] += 2.0 * n as f64;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve(&a, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ill_conditioned_but_regular_still_solves() {
        // Wildly different row scales: scaled pivoting should cope.
        let a = Matrix::from_rows(&[&[1e-8, 2e-8], &[3.0, 4.0]]);
        let b = [3e-8, 7.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
