//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Needed by the PCA dimensionality-reduction extension (the paper's §3
//! names reduction of the query domain as follow-up work): PCA is the
//! eigendecomposition of a covariance matrix — real, symmetric, positive
//! semi-definite, and small (feature dimensionality ≤ a few dozen), which
//! is exactly the regime where Jacobi rotation sweeps are simple, robust
//! and accurate.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix *rows*, aligned with `values`
    /// (row `i` is the eigenvector for `values[i]`).
    pub vectors: Matrix,
}

/// Convergence threshold on the off-diagonal Frobenius norm.
const OFF_EPS: f64 = 1e-12;
/// Safety cap on Jacobi sweeps (typical convergence: < 10 sweeps).
const MAX_SWEEPS: usize = 64;

/// Decompose a symmetric matrix (symmetry checked to `1e-9`).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), a.rows()),
            got: (a.rows(), a.cols()),
        });
    }
    if !a.is_symmetric(1e-9) {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), a.cols()),
            got: (a.cols(), a.rows()),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal magnitude; stop when numerically diagonal.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= OFF_EPS {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= OFF_EPS / (n as f64) {
                    continue;
                }
                // Classic Jacobi rotation annihilating m[(p, q)].
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector basis
                // (rows of v are the current basis vectors).
                for k in 0..n {
                    let vpk = v[(p, k)];
                    let vqk = v[(q, k)];
                    v[(p, k)] = c * vpk - s * vqk;
                    v[(q, k)] = s * vpk + c * vqk;
                }
            }
        }
    }

    // Collect and sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (row, &src) in order.iter().enumerate() {
        for k in 0..n {
            vectors[(row, k)] = v[(src, k)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

impl SymmetricEigen {
    /// Reconstruct `V·diag(λ)·Vᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut out = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let mut acc = 0.0;
                for (k, &l) in self.values.iter().enumerate() {
                    acc += l * self.vectors[(k, r)] * self.vectors[(k, c)];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// Fraction of total variance captured by the top `r` eigenvalues
    /// (eigenvalues clamped at 0: covariance inputs are PSD up to noise).
    pub fn explained_variance(&self, r: usize) -> f64 {
        let total: f64 = self.values.iter().map(|&l| l.max(0.0)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.values.iter().take(r).map(|&l| l.max(0.0)).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.row(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v0[0] - v0[1]).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let vt = e.vectors.transpose();
        let gram = e.vectors.matmul(&vt).unwrap();
        assert!(gram.max_abs_diff(&Matrix::identity(3)) < 1e-9);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[2.0, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        for (i, &l) in e.values.iter().enumerate() {
            let v: Vec<f64> = e.vectors.row(i).to_vec();
            let av = a.matvec(&v).unwrap();
            for k in 0..2 {
                assert!((av[k] - l * v[k]).abs() < 1e-9, "λ={l}, k={k}");
            }
        }
    }

    #[test]
    fn rejects_asymmetric_and_non_square() {
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(symmetric_eigen(&asym).is_err());
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn explained_variance_fractions() {
        let a = Matrix::from_diag(&[8.0, 1.5, 0.5]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.explained_variance(1) - 0.8).abs() < 1e-10);
        assert!((e.explained_variance(3) - 1.0).abs() < 1e-10);
        assert_eq!(e.explained_variance(0), 0.0);
        // Degenerate all-zero matrix.
        let z = symmetric_eigen(&Matrix::zeros(2, 2)).unwrap();
        assert_eq!(z.explained_variance(1), 0.0);
    }

    #[test]
    fn handles_larger_random_symmetric() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let n = 16;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let x = rng.gen_range(-1.0..1.0);
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-8);
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
