//! Vector arithmetic over plain `f64` slices.
//!
//! These kernels are deliberately slice-based: the Simplex Tree, the vector
//! database, and the feedback engines all keep their points in flat arenas
//! and borrow sub-slices into these functions, avoiding per-call
//! allocations on the hot paths (lookup, distance evaluation).

/// Dot product `a · b`.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Euclidean (L2) norm of `a`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm of `a`.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// L∞ norm of `a`.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Element-wise `out = a + b`.
#[inline]
pub fn add(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert!(a.len() == b.len() && a.len() == out.len());
    for i in 0..a.len() {
        out[i] = a[i] + b[i];
    }
}

/// Element-wise `out = a - b`.
#[inline]
pub fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert!(a.len() == b.len() && a.len() == out.len());
    for i in 0..a.len() {
        out[i] = a[i] - b[i];
    }
}

/// In-place `a += alpha * b` (BLAS `axpy`).
#[inline]
pub fn axpy(alpha: f64, b: &[f64], a: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        a[i] += alpha * b[i];
    }
}

/// In-place `a *= alpha`.
#[inline]
pub fn scale(alpha: f64, a: &mut [f64]) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Squared Euclidean distance `‖a - b‖²`.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance `‖a - b‖`.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    dist2_sq(a, b).sqrt()
}

/// Maximum absolute component difference `‖a - b‖∞`.
#[inline]
pub fn dist_inf(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Kahan-compensated sum of a slice.
///
/// Used where histograms are normalized and re-normalized repeatedly; plain
/// summation of 32 bins is already fine, but the compensated version keeps
/// the normalization drift below one ULP across thousands of feedback
/// iterations.
#[inline]
pub fn kahan_sum(a: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &x in a {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Normalize `a` so its components sum to 1.
///
/// Returns `false` (leaving `a` untouched) when the sum is not positive,
/// which callers treat as a degenerate histogram.
#[inline]
pub fn normalize_l1(a: &mut [f64]) -> bool {
    let s = kahan_sum(a);
    if s <= 0.0 || !s.is_finite() {
        return false;
    }
    scale(1.0 / s, a);
    true
}

/// Linear interpolation `out = (1 - t) * a + t * b`.
#[inline]
pub fn lerp(a: &[f64], b: &[f64], t: f64, out: &mut [f64]) {
    debug_assert!(a.len() == b.len() && a.len() == out.len());
    for i in 0..a.len() {
        out[i] = (1.0 - t) * a[i] + t * b[i];
    }
}

/// True if every pair of components differs by at most `tol`.
#[inline]
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[-3.0, 4.0]), 7.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn add_sub_axpy() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        let mut out = [0.0; 2];
        add(&a, &b, &mut out);
        assert_eq!(out, [11.0, 22.0]);
        sub(&b, &a, &mut out);
        assert_eq!(out, [9.0, 18.0]);
        let mut acc = [1.0, 1.0];
        axpy(2.0, &a, &mut acc);
        assert_eq!(acc, [3.0, 5.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist_inf(&[0.0, 0.0], &[3.0, -4.0]), 4.0);
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_input() {
        // 1 + 2^-53 repeated: naive summation loses the tiny terms.
        let tiny = (2.0_f64).powi(-53);
        let mut v = vec![1.0];
        v.extend(std::iter::repeat_n(tiny, 1 << 12));
        let k = kahan_sum(&v);
        let expected = 1.0 + tiny * ((1 << 12) as f64);
        assert!((k - expected).abs() < 1e-15, "kahan {k} vs {expected}");
    }

    #[test]
    fn normalize_l1_sums_to_one() {
        let mut v = [2.0, 3.0, 5.0];
        assert!(normalize_l1(&mut v));
        assert!((kahan_sum(&v) - 1.0).abs() < 1e-15);
        assert!((v[2] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn normalize_l1_rejects_degenerate() {
        let mut z = [0.0, 0.0];
        assert!(!normalize_l1(&mut z));
        assert_eq!(z, [0.0, 0.0]);
        let mut n = [f64::NAN, 1.0];
        assert!(!normalize_l1(&mut n));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = [0.0, 10.0];
        let b = [1.0, 20.0];
        let mut out = [0.0; 2];
        lerp(&a, &b, 0.0, &mut out);
        assert_eq!(out, a);
        lerp(&a, &b, 1.0, &mut out);
        assert_eq!(out, b);
        lerp(&a, &b, 0.5, &mut out);
        assert_eq!(out, [0.5, 15.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }
}
