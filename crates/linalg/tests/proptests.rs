//! Property-based tests for the linear algebra kernels.

use fbp_linalg::{covariance_matrix, lu, vector, Cholesky, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a well-conditioned n×n matrix (random entries + diagonal boost).
fn regular_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data);
        for i in 0..n {
            m[(i, i)] += 2.0 * n as f64;
        }
        m
    })
}

/// Strategy: a symmetric positive-definite matrix via AᵀA + εI.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data);
        let mut s = a.transpose().matmul(&a).unwrap();
        for i in 0..n {
            s[(i, i)] += 0.5;
        }
        s
    })
}

proptest! {
    #[test]
    fn lu_solve_residual_small(
        a in regular_matrix(6),
        b in prop::collection::vec(-10.0..10.0f64, 6),
    ) {
        let x = lu::solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..6 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_inverse_roundtrip(a in regular_matrix(5)) {
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(5)) < 1e-8);
    }

    #[test]
    fn det_of_product_is_product_of_dets(
        a in regular_matrix(4),
        b in regular_matrix(4),
    ) {
        let ab = a.matmul(&b).unwrap();
        let lhs = lu::det(&ab);
        let rhs = lu::det(&a) * lu::det(&b);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.abs().max(1.0));
    }

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(5)) {
        let ch = Cholesky::factor(&a).unwrap();
        prop_assert!(ch.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn cholesky_quadratic_form_nonnegative(
        a in spd_matrix(4),
        x in prop::collection::vec(-5.0..5.0f64, 4),
    ) {
        let ch = Cholesky::factor(&a).unwrap();
        let q = ch.quadratic_form(&x).unwrap();
        prop_assert!(q >= 0.0);
        let explicit = a.quadratic_form(&x, &x).unwrap();
        prop_assert!((q - explicit).abs() < 1e-8 * explicit.abs().max(1.0));
    }

    #[test]
    fn cholesky_solve_agrees_with_lu(
        a in spd_matrix(4),
        b in prop::collection::vec(-5.0..5.0f64, 4),
    ) {
        let via_chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let via_lu = lu::solve(&a, &b).unwrap();
        for i in 0..4 {
            prop_assert!((via_chol[i] - via_lu[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn dot_is_bilinear(
        a in prop::collection::vec(-10.0..10.0f64, 8),
        b in prop::collection::vec(-10.0..10.0f64, 8),
        alpha in -3.0..3.0f64,
    ) {
        let mut scaled = a.clone();
        vector::scale(alpha, &mut scaled);
        let lhs = vector::dot(&scaled, &b);
        let rhs = alpha * vector::dot(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0));
    }

    #[test]
    fn norm_triangle_inequality(
        a in prop::collection::vec(-10.0..10.0f64, 8),
        b in prop::collection::vec(-10.0..10.0f64, 8),
    ) {
        let mut sum = vec![0.0; 8];
        vector::add(&a, &b, &mut sum);
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&a) + vector::norm2(&b) + 1e-9);
    }

    #[test]
    fn covariance_diagonal_matches_dimstats(
        rows in prop::collection::vec(prop::collection::vec(-5.0..5.0f64, 3), 1..20),
    ) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cov = covariance_matrix(3, &refs);
        let stats = fbp_linalg::DimStats::from_vectors(3, refs.iter().copied());
        let vars = stats.variances();
        for i in 0..3 {
            prop_assert!((cov[(i, i)] - vars[i]).abs() < 1e-9);
        }
        prop_assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn covariance_is_psd(
        rows in prop::collection::vec(prop::collection::vec(-5.0..5.0f64, 3), 4..20),
    ) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut cov = covariance_matrix(3, &refs);
        // Tiny ridge: population covariance is PSD, Cholesky wants PD.
        for i in 0..3 {
            cov[(i, i)] += 1e-9;
        }
        prop_assert!(Cholesky::factor(&cov).is_ok());
    }

    #[test]
    fn normalize_l1_is_idempotent(mut v in prop::collection::vec(0.001..10.0f64, 1..32)) {
        prop_assert!(vector::normalize_l1(&mut v));
        let first: Vec<f64> = v.clone();
        prop_assert!(vector::normalize_l1(&mut v));
        for (a, b) in first.iter().zip(v.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        prop_assert!((vector::kahan_sum(&v) - 1.0).abs() < 1e-12);
    }
}
