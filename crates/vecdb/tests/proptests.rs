//! Property-based tests: all k-NN engines must agree with the exhaustive
//! scan under every distance class, and distances must obey their
//! distortion contracts.

use fbp_linalg::Matrix;
use fbp_vecdb::{
    Collection, CollectionBuilder, Distance, Euclidean, HierarchicalDistance, KnnEngine,
    LinearScan, MTree, Manhattan, QuadraticDistance, VpTree, WeightedEuclidean,
};
use proptest::prelude::*;

const DIM: usize = 4;

fn build_collection(points: &[Vec<f64>]) -> Collection {
    let mut b = CollectionBuilder::new();
    for p in points {
        b.push_unlabelled(p).unwrap();
    }
    b.build()
}

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, DIM), 2..120)
}

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1..10.0f64, DIM)
}

fn assert_same_answers(
    a: &[fbp_vecdb::Neighbor],
    b: &[fbp_vecdb::Neighbor],
) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        // Ranks must agree up to distance ties; distances must agree.
        prop_assert!(
            (x.dist - y.dist).abs() < 1e-9,
            "distance mismatch: {} vs {}",
            x.dist,
            y.dist
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_euclidean(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        k in 1usize..20,
    ) {
        let coll = build_collection(&points);
        let scan = LinearScan::new(&coll).knn(&q, k, &Euclidean);
        let vp = VpTree::build(&coll).knn(&q, k, &Euclidean);
        let mt = MTree::with_defaults(&coll).knn(&q, k, &Euclidean);
        assert_same_answers(&scan, &vp)?;
        assert_same_answers(&scan, &mt)?;
    }

    #[test]
    fn engines_agree_weighted(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        w in weights_strategy(),
        k in 1usize..15,
    ) {
        let coll = build_collection(&points);
        let dist = WeightedEuclidean::new(w).unwrap();
        let scan = LinearScan::new(&coll).knn(&q, k, &dist);
        let vp = VpTree::build(&coll).knn(&q, k, &dist);
        let mt = MTree::with_defaults(&coll).knn(&q, k, &dist);
        assert_same_answers(&scan, &vp)?;
        assert_same_answers(&scan, &mt)?;
    }

    #[test]
    fn engines_agree_manhattan(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        k in 1usize..10,
    ) {
        // Manhattan has lower distortion factor 1 vs Euclidean: pruning is
        // legal and must stay exact.
        let coll = build_collection(&points);
        let scan = LinearScan::new(&coll).knn(&q, k, &Manhattan);
        let vp = VpTree::build(&coll).knn(&q, k, &Manhattan);
        let mt = MTree::with_defaults(&coll).knn(&q, k, &Manhattan);
        assert_same_answers(&scan, &vp)?;
        assert_same_answers(&scan, &mt)?;
    }

    #[test]
    fn range_queries_agree(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        w in weights_strategy(),
        radius in 0.05..1.0f64,
    ) {
        let coll = build_collection(&points);
        let dist = WeightedEuclidean::new(w).unwrap();
        let scan = LinearScan::new(&coll).range(&q, radius, &dist);
        let vp = VpTree::build(&coll).range(&q, radius, &dist);
        let mt = MTree::with_defaults(&coll).range(&q, radius, &dist);
        prop_assert_eq!(&scan, &vp);
        prop_assert_eq!(&scan, &mt);
    }

    #[test]
    fn mtree_invariants_hold(points in points_strategy()) {
        let coll = build_collection(&points);
        let mt = MTree::with_defaults(&coll);
        mt.verify_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn weighted_distortion_contract(
        a in prop::collection::vec(-2.0..2.0f64, DIM),
        b in prop::collection::vec(-2.0..2.0f64, DIM),
        w in weights_strategy(),
    ) {
        let dist = WeightedEuclidean::new(w).unwrap();
        let (lo, hi) = dist.euclidean_distortion().unwrap();
        let dw = dist.eval(&a, &b);
        let d2 = Euclidean.eval(&a, &b);
        prop_assert!(dw >= lo * d2 - 1e-9);
        prop_assert!(dw <= hi * d2 + 1e-9);
    }

    #[test]
    fn quadratic_distortion_contract(
        a in prop::collection::vec(-2.0..2.0f64, 3),
        b in prop::collection::vec(-2.0..2.0f64, 3),
        diag in prop::collection::vec(0.5..4.0f64, 3),
        off in -0.2..0.2f64,
    ) {
        // Diagonally dominant ⇒ SPD with positive Gershgorin lower bound.
        let mut m = Matrix::from_diag(&diag);
        m[(0, 1)] = off;
        m[(1, 0)] = off;
        let q = QuadraticDistance::new(&m).unwrap();
        if let Some((lo, hi)) = q.euclidean_distortion() {
            let dq = q.eval(&a, &b);
            let d2 = Euclidean.eval(&a, &b);
            prop_assert!(dq >= lo * d2 - 1e-9);
            prop_assert!(dq <= hi * d2 + 1e-9);
        }
    }

    #[test]
    fn hierarchical_reduces_to_weighted(
        a in prop::collection::vec(-2.0..2.0f64, DIM),
        b in prop::collection::vec(-2.0..2.0f64, DIM),
        w in weights_strategy(),
    ) {
        // One feature spanning everything with unit feature weight must
        // equal plain weighted Euclidean.
        let h = HierarchicalDistance::new(
            vec![fbp_vecdb::distance::FeatureSpan::new(0, DIM)],
            vec![1.0],
            w.clone(),
        )
        .unwrap();
        let we = WeightedEuclidean::new(w).unwrap();
        prop_assert!((h.eval(&a, &b) - we.eval(&a, &b)).abs() < 1e-9);
    }
}
