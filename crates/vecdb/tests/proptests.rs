//! Property-based tests: all k-NN engines must agree with the exhaustive
//! scan under every distance class, distances must obey their distortion
//! contracts, and the f32-rescore machinery must obey its rounding-bound
//! contract (`|key32 − key64| ≤ f32_key_slack`) — the inequality the
//! two-phase scan's exactness proof stands on.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::FeatureSpan;
use fbp_vecdb::{
    Collection, CollectionBuilder, Distance, Euclidean, HierarchicalDistance, KnnEngine,
    LinearScan, MTree, Manhattan, Precision, QuadraticDistance, ScanMode, VpTree,
    WeightedEuclidean,
};
use proptest::prelude::*;

const DIM: usize = 4;

fn build_collection(points: &[Vec<f64>]) -> Collection {
    let mut b = CollectionBuilder::new();
    for p in points {
        b.push_unlabelled(p).unwrap();
    }
    b.build()
}

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, DIM), 2..120)
}

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1..10.0f64, DIM)
}

/// `|key32 − key64| ≤ slack` for one (query, row) pair under `dist` —
/// keys computed exactly as the scan engines compute them (one-row block
/// through the dispatched f32 kernel vs the exact f64 kernel).
fn assert_key_within_slack(
    dist: &dyn Distance,
    q: &[f64],
    row: &[f64],
) -> std::result::Result<(), TestCaseError> {
    let dim = q.len();
    let max_abs = q
        .iter()
        .chain(row.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    let slack = dist
        .f32_key_slack(dim, max_abs)
        .expect("class under test supports f32");
    prop_assert!(slack.is_finite() && slack >= 0.0);
    let mut key64 = [0.0f64; 1];
    dist.eval_key_batch(q, row, dim, f64::INFINITY, &mut key64);
    let q32: Vec<f32> = q.iter().map(|&v| v as f32).collect();
    let row32: Vec<f32> = row.iter().map(|&v| v as f32).collect();
    let mut key32 = [0.0f32; 1];
    dist.eval_key_batch_f32(&q32, &row32, dim, f32::INFINITY, &mut key32);
    prop_assert!(
        (key32[0] as f64 - key64[0]).abs() <= slack,
        "{}: |key32 − key64| = {} exceeds slack {slack} (key64 {})",
        dist.name(),
        (key32[0] as f64 - key64[0]).abs(),
        key64[0]
    );
    Ok(())
}

fn assert_same_answers(
    a: &[fbp_vecdb::Neighbor],
    b: &[fbp_vecdb::Neighbor],
) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        // Ranks must agree up to distance ties; distances must agree.
        prop_assert!(
            (x.dist - y.dist).abs() < 1e-9,
            "distance mismatch: {} vs {}",
            x.dist,
            y.dist
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_euclidean(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        k in 1usize..20,
    ) {
        let coll = build_collection(&points);
        let scan = LinearScan::new(&coll).knn(&q, k, &Euclidean);
        let vp = VpTree::build(&coll).knn(&q, k, &Euclidean);
        let mt = MTree::with_defaults(&coll).knn(&q, k, &Euclidean);
        assert_same_answers(&scan, &vp)?;
        assert_same_answers(&scan, &mt)?;
    }

    #[test]
    fn engines_agree_weighted(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        w in weights_strategy(),
        k in 1usize..15,
    ) {
        let coll = build_collection(&points);
        let dist = WeightedEuclidean::new(w).unwrap();
        let scan = LinearScan::new(&coll).knn(&q, k, &dist);
        let vp = VpTree::build(&coll).knn(&q, k, &dist);
        let mt = MTree::with_defaults(&coll).knn(&q, k, &dist);
        assert_same_answers(&scan, &vp)?;
        assert_same_answers(&scan, &mt)?;
    }

    #[test]
    fn engines_agree_manhattan(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        k in 1usize..10,
    ) {
        // Manhattan has lower distortion factor 1 vs Euclidean: pruning is
        // legal and must stay exact.
        let coll = build_collection(&points);
        let scan = LinearScan::new(&coll).knn(&q, k, &Manhattan);
        let vp = VpTree::build(&coll).knn(&q, k, &Manhattan);
        let mt = MTree::with_defaults(&coll).knn(&q, k, &Manhattan);
        assert_same_answers(&scan, &vp)?;
        assert_same_answers(&scan, &mt)?;
    }

    #[test]
    fn range_queries_agree(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        w in weights_strategy(),
        radius in 0.05..1.0f64,
    ) {
        let coll = build_collection(&points);
        let dist = WeightedEuclidean::new(w).unwrap();
        let scan = LinearScan::new(&coll).range(&q, radius, &dist);
        let vp = VpTree::build(&coll).range(&q, radius, &dist);
        let mt = MTree::with_defaults(&coll).range(&q, radius, &dist);
        prop_assert_eq!(&scan, &vp);
        prop_assert_eq!(&scan, &mt);
    }

    #[test]
    fn mtree_invariants_hold(points in points_strategy()) {
        let coll = build_collection(&points);
        let mt = MTree::with_defaults(&coll);
        mt.verify_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn weighted_distortion_contract(
        a in prop::collection::vec(-2.0..2.0f64, DIM),
        b in prop::collection::vec(-2.0..2.0f64, DIM),
        w in weights_strategy(),
    ) {
        let dist = WeightedEuclidean::new(w).unwrap();
        let (lo, hi) = dist.euclidean_distortion().unwrap();
        let dw = dist.eval(&a, &b);
        let d2 = Euclidean.eval(&a, &b);
        prop_assert!(dw >= lo * d2 - 1e-9);
        prop_assert!(dw <= hi * d2 + 1e-9);
    }

    #[test]
    fn quadratic_distortion_contract(
        a in prop::collection::vec(-2.0..2.0f64, 3),
        b in prop::collection::vec(-2.0..2.0f64, 3),
        diag in prop::collection::vec(0.5..4.0f64, 3),
        off in -0.2..0.2f64,
    ) {
        // Diagonally dominant ⇒ SPD with positive Gershgorin lower bound.
        let mut m = Matrix::from_diag(&diag);
        m[(0, 1)] = off;
        m[(1, 0)] = off;
        let q = QuadraticDistance::new(&m).unwrap();
        if let Some((lo, hi)) = q.euclidean_distortion() {
            let dq = q.eval(&a, &b);
            let d2 = Euclidean.eval(&a, &b);
            prop_assert!(dq >= lo * d2 - 1e-9);
            prop_assert!(dq <= hi * d2 + 1e-9);
        }
    }

    #[test]
    fn f32_key_slack_is_sound_all_classes(
        a in prop::collection::vec(-3.0..3.0f64, DIM),
        b in prop::collection::vec(-3.0..3.0f64, DIM),
        w in weights_strategy(),
        diag in prop::collection::vec(0.5..4.0f64, DIM),
        off in -0.2..0.2f64,
    ) {
        // The inequality every phase-1 candidate-containment argument
        // rests on, for all four f32-capable distance classes.
        assert_key_within_slack(&Euclidean, &a, &b)?;
        assert_key_within_slack(&WeightedEuclidean::new(w.clone()).unwrap(), &a, &b)?;
        let h = HierarchicalDistance::new(
            vec![FeatureSpan::new(0, 2), FeatureSpan::new(2, DIM)],
            vec![1.7, 0.6],
            w.clone(),
        )
        .unwrap();
        assert_key_within_slack(&h, &a, &b)?;
        let mut m = Matrix::from_diag(&diag);
        m[(0, 1)] = off;
        m[(1, 0)] = off;
        assert_key_within_slack(&QuadraticDistance::new(&m).unwrap(), &a, &b)?;
    }

    #[test]
    fn f32_rescore_scan_identical_to_f64_scan(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        w in weights_strategy(),
        k in 1usize..20,
    ) {
        // End-to-end soundness of the inflated bound: if phase 1 ever
        // dropped a true top-k row, the rescored answer would differ
        // from the f64 scan in indices or distances.
        let mut coll = build_collection(&points);
        coll.ensure_f32_mirror();
        let dist = WeightedEuclidean::new(w).unwrap();
        for mode in [ScanMode::Batched, ScanMode::Parallel] {
            let f64_res = LinearScan::with_mode(&coll, mode).knn(&q, k, &dist);
            let f32_res = LinearScan::with_mode(&coll, mode)
                .with_precision(Precision::F32Rescore)
                .knn(&q, k, &dist);
            prop_assert_eq!(&f32_res, &f64_res, "mode {:?}", mode);
        }
    }

    #[test]
    fn hierarchical_reduces_to_weighted(
        a in prop::collection::vec(-2.0..2.0f64, DIM),
        b in prop::collection::vec(-2.0..2.0f64, DIM),
        w in weights_strategy(),
    ) {
        // One feature spanning everything with unit feature weight must
        // equal plain weighted Euclidean.
        let h = HierarchicalDistance::new(
            vec![fbp_vecdb::distance::FeatureSpan::new(0, DIM)],
            vec![1.0],
            w.clone(),
        )
        .unwrap();
        let we = WeightedEuclidean::new(w).unwrap();
        prop_assert!((h.eval(&a, &b) - we.eval(&a, &b)).abs() < 1e-9);
    }
}
