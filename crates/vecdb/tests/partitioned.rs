//! Partition-pruning bit-identity suite: [`PartitionedScan`] over a
//! [`PartitionedCollection`] must return **bit-identical** neighbor
//! indices and f64 distances to the flat [`LinearScan`] /
//! [`MultiQueryScan`] — across all distance classes (including ones
//! with no sound partition bound, which must fall back to the flat
//! pass), both precisions, Scalar/Batched/Parallel, per-query metrics
//! and ks, through [`ShardedScan`], and across the degenerate layout
//! edges (empty partitions, one-row partitions, more partitions than
//! rows, k > len, k = 0 "prunes everything"). Partition pruning is a
//! rows-visited knob, never a result knob.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::{Chebyshev, FeatureSpan, HierarchicalDistance};
use fbp_vecdb::{
    Collection, CollectionBuilder, Distance, Euclidean, KnnEngine, LinearScan, MultiQueryScan,
    PartitionConfig, PartitionedCollection, PartitionedScan, Precision, QuadraticDistance,
    ScanMode, ScanStatsSink, ShardedCollection, ShardedScan, WeightedEuclidean,
};

const DIM: usize = 24;
const N: usize = 900;

/// Clustered rows (so pruning actually engages) with deterministic
/// noise: `clusters` well-separated centers, rows scattered tightly
/// around them.
fn clustered_collection(n: usize, clusters: usize, mirror: bool) -> Collection {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new();
    if mirror {
        b = b.with_f32_mirror();
    }
    for r in 0..n {
        let c = r % clusters.max(1);
        let v: Vec<f64> = (0..DIM)
            .map(|i| ((c * 37 + i * 11) as f64 * 0.73).sin() * 10.0 + (next() - 0.5) * 0.5)
            .collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn queries(nq: usize) -> Vec<Vec<f64>> {
    // Anchor queries near cluster centroids (pruning-friendly) with a
    // couple of off-cloud outliers mixed in.
    (0..nq)
        .map(|q| {
            (0..DIM)
                .map(|i| {
                    if q % 5 == 4 {
                        ((q * 29 + i * 13) as f64 * 0.41).sin() * 25.0
                    } else {
                        ((q * 37 + i * 11) as f64 * 0.73).sin() * 10.0 + 0.1
                    }
                })
                .collect()
        })
        .collect()
}

/// The distance classes, including `Chebyshev` — which certifies no
/// partition bound and must transparently run the flat pass.
fn distance_classes() -> Vec<Box<dyn Distance>> {
    let w: Vec<f64> = (0..DIM).map(|i| 0.4 + (i % 6) as f64).collect();
    let spans = vec![FeatureSpan::new(0, 8), FeatureSpan::new(8, DIM)];
    let h = HierarchicalDistance::new(spans, vec![1.5, 0.75], w.clone()).unwrap();
    let mut m = Matrix::identity(DIM);
    for i in 0..DIM {
        m[(i, i)] = 0.5 + (i % 4) as f64;
        if i + 1 < DIM {
            m[(i, i + 1)] = 0.1;
            m[(i + 1, i)] = 0.1;
        }
    }
    vec![
        Box::new(Euclidean),
        Box::new(WeightedEuclidean::new(w).unwrap()),
        Box::new(QuadraticDistance::new(&m).unwrap()),
        Box::new(h),
        Box::new(Chebyshev),
    ]
}

fn layout(coll: &Collection, partitions: usize) -> PartitionedCollection {
    PartitionedCollection::build(coll, &PartitionConfig::with_partitions(partitions))
}

#[test]
fn partitioned_knn_bit_identical_all_classes_both_precisions() {
    let coll = clustered_collection(N, 12, true);
    for &nq in &[1usize, 16] {
        let qs = queries(nq);
        let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
        for dist in distance_classes() {
            for &p in &[4usize, 32] {
                let part = layout(&coll, p);
                for precision in [Precision::F64, Precision::F32Rescore] {
                    for mode in [ScanMode::Batched, ScanMode::Parallel] {
                        let pruned =
                            PartitionedScan::with_mode(&part, mode).with_precision(precision);
                        let flat = MultiQueryScan::with_mode(&coll, mode).with_precision(precision);
                        for k in [1usize, 10, 50] {
                            assert_eq!(
                                pruned.knn_multi(&refs, k, &*dist),
                                flat.knn_multi(&refs, k, &*dist),
                                "P={p} Q={nq} k={k} mode={mode:?} precision={precision:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn scalar_reference_matches_flat_scalar() {
    // The Scalar baseline never prunes and pushes true distances; it
    // must equal the flat Scalar scan (and transitively LinearScan).
    let coll = clustered_collection(300, 8, false);
    let part = layout(&coll, 16);
    let qs = queries(3);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let pruned = PartitionedScan::with_mode(&part, ScanMode::Scalar);
    let flat = LinearScan::with_mode(&coll, ScanMode::Scalar);
    for dist in distance_classes() {
        for (q, res) in refs.iter().zip(pruned.knn_multi(&refs, 7, &*dist)) {
            assert_eq!(res, flat.knn(q, 7, &*dist));
        }
    }
}

#[test]
fn per_query_metrics_and_ks_bit_identical() {
    let coll = clustered_collection(N, 12, true);
    let part = layout(&coll, 24);
    let qs = queries(6);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let classes = distance_classes();
    // Cycle the classes across queries — mixed bound/no-bound in one
    // pass — and vary k per query, with a k = 0 and a k > len edge in.
    let dists: Vec<&dyn Distance> = (0..refs.len())
        .map(|q| &*classes[q % classes.len()])
        .collect();
    let ks: Vec<usize> = vec![1, 10, 0, 50, N + 7, 3];
    for precision in [Precision::F64, Precision::F32Rescore] {
        for mode in [ScanMode::Batched, ScanMode::Parallel, ScanMode::Scalar] {
            let pruned = PartitionedScan::with_mode(&part, mode).with_precision(precision);
            let flat = MultiQueryScan::with_mode(&coll, mode).with_precision(precision);
            assert_eq!(
                pruned.knn_per_query_k(&refs, &dists, &ks),
                flat.knn_per_query_k(&refs, &dists, &ks),
                "mode={mode:?} precision={precision:?}"
            );
        }
    }
}

#[test]
fn weighted_per_query_bit_identical() {
    let coll = clustered_collection(N, 12, true);
    let part = layout(&coll, 24);
    let qs = queries(5);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let metrics: Vec<WeightedEuclidean> = (0..refs.len())
        .map(|q| {
            let w: Vec<f64> = (0..DIM).map(|i| 0.3 + ((q * 7 + i) % 5) as f64).collect();
            WeightedEuclidean::new(w).unwrap()
        })
        .collect();
    let ks = vec![5usize; refs.len()];
    for precision in [Precision::F64, Precision::F32Rescore] {
        for mode in [ScanMode::Batched, ScanMode::Parallel] {
            let pruned = PartitionedScan::with_mode(&part, mode).with_precision(precision);
            let flat = MultiQueryScan::with_mode(&coll, mode).with_precision(precision);
            assert_eq!(
                pruned.knn_weighted_per_query_k(&refs, &metrics, &ks),
                flat.knn_weighted_per_query_k(&refs, &metrics, &ks),
                "mode={mode:?} precision={precision:?}"
            );
        }
    }
}

#[test]
fn degenerate_layouts_bit_identical() {
    // More partitions than rows (⇒ empty partitions), one-row
    // partitions, a single partition, and k > len — all legal, all
    // answer-identical.
    let coll = clustered_collection(10, 3, true);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    for &p in &[1usize, 10, 64] {
        let part = layout(&coll, p);
        assert_eq!(part.partition_count(), p);
        assert_eq!(part.len(), coll.len());
        for dist in distance_classes() {
            for precision in [Precision::F64, Precision::F32Rescore] {
                let pruned =
                    PartitionedScan::with_mode(&part, ScanMode::Batched).with_precision(precision);
                let flat =
                    MultiQueryScan::with_mode(&coll, ScanMode::Batched).with_precision(precision);
                for k in [1usize, 10, 25] {
                    assert_eq!(
                        pruned.knn_multi(&refs, k, &*dist),
                        flat.knn_multi(&refs, k, &*dist),
                        "P={p} k={k} precision={precision:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn empty_collection_and_k_zero() {
    let empty = CollectionBuilder::new().build();
    let part = layout(&empty, 8);
    let pruned = PartitionedScan::new(&part);
    let q = vec![0.0; 0];
    assert_eq!(pruned.knn_multi(&[&q], 3, &Euclidean), vec![Vec::new()]);

    // k = 0 queries need nothing: every partition counts as prunable
    // for them, and the answer is empty — same as the flat scan.
    let coll = clustered_collection(200, 4, false);
    let part = layout(&coll, 8);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let sink = ScanStatsSink::new();
    let pruned = PartitionedScan::with_mode(&part, ScanMode::Batched).with_scan_stats(&sink);
    let flat = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
    assert_eq!(
        pruned.knn_multi(&refs, 0, &Euclidean),
        flat.knn_multi(&refs, 0, &Euclidean)
    );
    // All-zero k prunes every partition outright: nothing scanned.
    let stats = sink.snapshot();
    assert_eq!(stats.rows_visited, 0, "k = 0 must scan nothing");
    assert_eq!(
        stats.partitions_pruned,
        part.partition_count() as u64,
        "k = 0 prunes every (non-empty) partition"
    );
}

#[test]
fn pruning_engages_and_stays_sublinear_on_clustered_data() {
    // The tentpole's point: on clustered data with a query pinned to
    // one cluster, most partitions must actually be skipped — and the
    // answers still match the flat scan bit for bit.
    let coll = clustered_collection(N, 12, true);
    let part = layout(&coll, 24);
    let qs = queries(4);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    for precision in [Precision::F64, Precision::F32Rescore] {
        let sink = ScanStatsSink::new();
        let pruned = PartitionedScan::with_mode(&part, ScanMode::Batched)
            .with_precision(precision)
            .with_scan_stats(&sink);
        let flat = MultiQueryScan::with_mode(&coll, ScanMode::Batched).with_precision(precision);
        assert_eq!(
            pruned.knn_multi(&refs, 10, &Euclidean),
            flat.knn_multi(&refs, 10, &Euclidean)
        );
        let stats = sink.snapshot();
        assert!(
            stats.partitions_pruned > 0,
            "clustered data must prune partitions ({precision:?}: {stats:?})"
        );
        assert!(
            stats.rows_visited < N as u64,
            "pruned pass must visit fewer rows than the collection holds \
             ({precision:?}: {} of {N})",
            stats.rows_visited
        );
    }
}

#[test]
fn sharded_partitioned_bit_identical() {
    // The full composition: sharded scatter/gather where every shard
    // pass runs the partition-pruning scan, cross-shard seeds included
    // — against the unpartitioned sharded scan and the flat scan.
    let coll = clustered_collection(N, 12, true);
    let qs = queries(4);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    for &s in &[1usize, 3] {
        let sharded = ShardedCollection::split(&coll, s);
        let parts = sharded.build_partitions(&PartitionConfig::with_partitions(16));
        for dist in distance_classes() {
            for precision in [Precision::F64, Precision::F32Rescore] {
                for mode in [ScanMode::Batched, ScanMode::Parallel] {
                    let plain = ShardedScan::with_mode(&sharded, mode).with_precision(precision);
                    let pruned = plain.with_partitions(&parts);
                    let flat = MultiQueryScan::with_mode(&coll, mode).with_precision(precision);
                    for k in [1usize, 10, 50] {
                        let got = pruned.knn_multi(&refs, k, &*dist);
                        assert_eq!(
                            got,
                            plain.knn_multi(&refs, k, &*dist),
                            "S={s} k={k} mode={mode:?} precision={precision:?} (vs sharded)"
                        );
                        assert_eq!(
                            got,
                            flat.knn_multi(&refs, k, &*dist),
                            "S={s} k={k} mode={mode:?} precision={precision:?} (vs flat)"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn sharded_partitioned_per_query_and_weighted() {
    let coll = clustered_collection(N, 12, true);
    let sharded = ShardedCollection::split(&coll, 3);
    let parts = sharded.build_partitions(&PartitionConfig::with_partitions(16));
    let qs = queries(5);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let classes = distance_classes();
    let dists: Vec<&dyn Distance> = (0..refs.len())
        .map(|q| &*classes[q % classes.len()])
        .collect();
    let ks: Vec<usize> = vec![1, 7, 0, 50, 3];
    let metrics: Vec<WeightedEuclidean> = (0..refs.len())
        .map(|q| {
            let w: Vec<f64> = (0..DIM).map(|i| 0.3 + ((q * 7 + i) % 5) as f64).collect();
            WeightedEuclidean::new(w).unwrap()
        })
        .collect();
    for precision in [Precision::F64, Precision::F32Rescore] {
        let plain = ShardedScan::with_mode(&sharded, ScanMode::Batched).with_precision(precision);
        let pruned = plain.with_partitions(&parts);
        assert_eq!(
            pruned.knn_per_query_k(&refs, &dists, &ks),
            plain.knn_per_query_k(&refs, &dists, &ks),
            "per-query precision={precision:?}"
        );
        assert_eq!(
            pruned.knn_weighted_per_query_k(&refs, &metrics, &ks),
            plain.knn_weighted_per_query_k(&refs, &metrics, &ks),
            "weighted precision={precision:?}"
        );
    }
}

#[test]
fn partition_layout_is_deterministic() {
    // Same collection + config ⇒ the same layout, bit for bit: the
    // permutation, offsets, centroids and radii are all pure functions
    // of the input (no ambient randomness, no thread-count dependence).
    let coll = clustered_collection(400, 8, false);
    let a = layout(&coll, 16);
    let b = layout(&coll, 16);
    assert_eq!(a.perm(), b.perm());
    assert_eq!(a.partition_count(), b.partition_count());
    for p in 0..a.partition_count() {
        assert_eq!(a.rows(p), b.rows(p));
        assert_eq!(a.centroid(p), b.centroid(p));
        assert!(a.radius(p) == b.radius(p), "radius mismatch at {p}");
    }
}
