//! Property tests for the partition-pruning soundness contract — the
//! inequality the whole sub-linear scan stands on:
//!
//! For any random collection, partition layout, and query, and for
//! every distance class that reports a partition bound at all,
//! [`Distance::partition_lower_key`] must **never exceed any member
//! row's true key**: `lb(q, partition) ≤ eval_key(q, row)` for every
//! row the partition holds. A violation would let the pruned scan skip
//! a true neighbor — silently, which is why this layer is pinned by
//! properties rather than examples.
//!
//! Classes that certify *no* sound bound (`Chebyshev`, general `Lp`,
//! quadratic forms whose certified spectrum floor touches zero) must
//! say so (`None`) for every input — and the partitioned scan must
//! still answer through them bit-identically to the flat scan, i.e.
//! fall back rather than guess.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::{Chebyshev, FeatureSpan, Lp};
use fbp_vecdb::{
    Collection, CollectionBuilder, Distance, Euclidean, HierarchicalDistance, Manhattan,
    MultiQueryScan, PartitionConfig, PartitionedCollection, PartitionedScan, Precision,
    QuadraticDistance, ScanMode, WeightedEuclidean,
};
use proptest::prelude::*;

const DIM: usize = 4;

fn build_collection(points: &[Vec<f64>], mirror: bool) -> Collection {
    let mut b = CollectionBuilder::new();
    if mirror {
        b = b.with_f32_mirror();
    }
    for p in points {
        b.push_unlabelled(p).unwrap();
    }
    b.build()
}

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-8.0..8.0f64, DIM), 2..80)
}

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05..20.0f64, DIM)
}

/// Classes that must report a sound bound on every input.
fn bounded_classes(w: &[f64]) -> Vec<Box<dyn Distance>> {
    let spans = vec![FeatureSpan::new(0, 2), FeatureSpan::new(2, DIM)];
    let h = HierarchicalDistance::new(spans, vec![1.5, 0.75], w.to_vec()).unwrap();
    let mut m = Matrix::identity(DIM);
    for i in 0..DIM {
        m[(i, i)] = w[i] + 0.5;
    }
    vec![
        Box::new(Euclidean),
        Box::new(Manhattan),
        Box::new(WeightedEuclidean::new(w.to_vec()).unwrap()),
        Box::new(QuadraticDistance::new(&m).unwrap()),
        Box::new(h),
    ]
}

/// Classes that must certify "no sound bound" on every input.
fn unbounded_classes() -> Vec<Box<dyn Distance>> {
    // An SPD matrix whose Gershgorin floor is exactly zero: PD (det 2),
    // but the *certified* spectrum bound cannot separate it from
    // singular — the class must refuse to prune rather than trust an
    // uncertified eigenvalue.
    let m = Matrix::from_rows(&[
        &[2.0, 2.0, 0.0, 0.0][..],
        &[2.0, 3.0, 0.0, 0.0][..],
        &[0.0, 0.0, 1.0, 0.0][..],
        &[0.0, 0.0, 0.0, 1.0][..],
    ]);
    vec![
        Box::new(Chebyshev),
        Box::new(Lp::new(3.0).unwrap()),
        Box::new(QuadraticDistance::new(&m).unwrap()),
    ]
}

proptest! {
    // The soundness inequality, directly: for random layouts and
    // queries, no partition's lower bound exceeds any member's key.
    #[test]
    fn partition_lower_bound_never_exceeds_member_keys(
        points in points_strategy(),
        w in weights_strategy(),
        q in prop::collection::vec(-10.0..10.0f64, DIM),
        partitions in 1usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let coll = build_collection(&points, false);
        let cfg = PartitionConfig { partitions, seed, ..PartitionConfig::default() };
        let part = PartitionedCollection::build(&coll, &cfg);
        let inner = part.collection();
        for dist in bounded_classes(&w) {
            for p in 0..part.partition_count() {
                let Some(lb) =
                    dist.partition_lower_key(&q, part.centroid(p), part.radius(p))
                else {
                    prop_assert!(
                        false,
                        "{} must bound every partition",
                        dist.name()
                    );
                    unreachable!()
                };
                for r in part.rows(p) {
                    let key = dist.eval_key(&q, inner.vector(r));
                    prop_assert!(
                        lb <= key,
                        "{}: partition {p} lb {lb} exceeds member {r} key {key} \
                         (centroid dist {}, radius {})",
                        dist.name(),
                        Euclidean.eval(&q, part.centroid(p)),
                        part.radius(p),
                    );
                }
            }
        }
    }

    // Classes without a sound bound must say `None` — for every
    // geometry, not just convenient ones.
    #[test]
    fn unbounded_classes_always_report_none(
        centroid in prop::collection::vec(-8.0..8.0f64, DIM),
        q in prop::collection::vec(-10.0..10.0f64, DIM),
        radius in 0.0..16.0f64,
    ) {
        for dist in unbounded_classes() {
            prop_assert!(
                dist.partition_lower_key(&q, &centroid, radius).is_none(),
                "{} has no sound partition bound and must certify that",
                dist.name()
            );
        }
    }

    // End-to-end soundness, both precisions: the pruned scan equals
    // the flat scan on random inputs — for classes *with* bounds
    // (pruning engages) and *without* (the flat fallback engages).
    #[test]
    fn partitioned_scan_matches_flat_on_random_inputs(
        points in points_strategy(),
        w in weights_strategy(),
        q in prop::collection::vec(-10.0..10.0f64, DIM),
        partitions in 1usize..12,
        seed in 0u64..u64::MAX,
        k in 1usize..8,
    ) {
        let coll = build_collection(&points, true);
        let cfg = PartitionConfig { partitions, seed, ..PartitionConfig::default() };
        let part = PartitionedCollection::build(&coll, &cfg);
        let refs: Vec<&[f64]> = vec![&q];
        let mut classes = bounded_classes(&w);
        classes.extend(unbounded_classes());
        for dist in classes {
            for precision in [Precision::F64, Precision::F32Rescore] {
                let pruned = PartitionedScan::with_mode(&part, ScanMode::Batched)
                    .with_precision(precision);
                let flat = MultiQueryScan::with_mode(&coll, ScanMode::Batched)
                    .with_precision(precision);
                prop_assert_eq!(
                    pruned.knn_multi(&refs, k, &*dist),
                    flat.knn_multi(&refs, k, &*dist),
                    "{} k={} precision={:?}", dist.name(), k, precision
                );
            }
        }
    }
}
