//! Property-based pins for the partial-failure gather
//! ([`merge_partials_policy`]): under `Degraded { min_shards }`, a
//! gather over any surviving shard subset must equal the flat scan over
//! exactly the surviving shards' rows (no phantom rows, no lost rows,
//! bit-identical distances) with the missing shards reported; under
//! `Strict`, any missing shard must always refuse with a typed
//! [`GatherError`] naming them. Checked across all four distance
//! classes and both precisions — the policy layer must be as
//! result-transparent as the sharding layer beneath it.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::{FeatureSpan, HierarchicalDistance};
use fbp_vecdb::{
    merge_partials_policy, Collection, CollectionBuilder, Distance, Euclidean, FailurePolicy,
    KnnEngine, LinearScan, Neighbor, Precision, QuadraticDistance, ScanMode, ShardPartial,
    ShardedCollection, ShardedScan, WeightedEuclidean,
};
use proptest::prelude::*;

const DIM: usize = 6;

fn build_collection(points: &[Vec<f64>]) -> Collection {
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for p in points {
        b.push_unlabelled(p).unwrap();
    }
    b.build()
}

/// All four distance classes, parameterized for `DIM`.
fn distance_classes() -> Vec<Box<dyn Distance>> {
    let w: Vec<f64> = (0..DIM).map(|i| 0.4 + (i % 3) as f64).collect();
    let spans = vec![FeatureSpan::new(0, 3), FeatureSpan::new(3, DIM)];
    let h = HierarchicalDistance::new(spans, vec![1.5, 0.75], w.clone()).unwrap();
    let mut m = Matrix::identity(DIM);
    for i in 0..DIM {
        m[(i, i)] = 0.5 + (i % 4) as f64;
        if i + 1 < DIM {
            m[(i, i + 1)] = 0.1;
            m[(i + 1, i)] = 0.1;
        }
    }
    vec![
        Box::new(Euclidean),
        Box::new(WeightedEuclidean::new(w).unwrap()),
        Box::new(QuadraticDistance::new(&m).unwrap()),
        Box::new(h),
    ]
}

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, DIM), 6..80)
}

/// The global row indices the surviving shards cover, under the
/// `ShardedCollection::split` partition.
fn surviving_rows(len: usize, shards: usize, surviving_mask: &[bool]) -> Vec<usize> {
    let mut rows = Vec::new();
    for (s, &alive) in surviving_mask.iter().enumerate() {
        if alive {
            rows.extend((s * len / shards)..((s + 1) * len / shards));
        }
    }
    rows
}

/// Flat-scan oracle over exactly `rows` of `coll`: rebuild those rows
/// as their own collection, scan it, and map local indices back to
/// global ones (the mapping is monotone, so tie order is preserved).
fn flat_oracle(
    coll: &Collection,
    rows: &[usize],
    q: &[f64],
    k: usize,
    dist: &dyn Distance,
    precision: Precision,
) -> Vec<Neighbor> {
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for &r in rows {
        b.push_unlabelled(coll.vector(r)).unwrap();
    }
    let sub = b.build();
    let scan = LinearScan::with_mode(&sub, ScanMode::Batched).with_precision(precision);
    scan.knn(q, k, dist)
        .into_iter()
        .map(|n| Neighbor {
            index: rows[n.index as usize] as u32,
            dist: n.dist,
        })
        .collect()
}

/// Per-shard partials for one query, with dropped shards as `None`.
fn scatter_with_failures(
    sharded: &ShardedCollection,
    q: &[f64],
    k: usize,
    dist: &dyn Distance,
    precision: Precision,
    surviving_mask: &[bool],
) -> Vec<Option<ShardPartial>> {
    let scan = ShardedScan::with_mode(sharded, ScanMode::Batched).with_precision(precision);
    surviving_mask
        .iter()
        .enumerate()
        .map(|(s, &alive)| {
            alive.then(|| scan.scan_shard_multi(s, &[q], &[k], dist, None).remove(0))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Degraded gathers over every distance class and both precisions:
    // the merged answer over a random surviving subset equals the flat
    // scan over exactly the surviving rows, and the missing shards are
    // reported.
    #[test]
    fn degraded_gather_equals_surviving_flat_scan(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        shards in 2usize..5,
        mask_seed in 0u32..(1 << 4),
        k in 1usize..12,
    ) {
        let coll = build_collection(&points);
        let sharded = ShardedCollection::split(&coll, shards);
        // At least one survivor (an all-dead mask is the Strict-like
        // refusal case, covered below).
        let mut mask: Vec<bool> = (0..shards).map(|s| mask_seed & (1 << s) != 0).collect();
        if mask.iter().all(|&a| !a) {
            mask[0] = true;
        }
        let rows = surviving_rows(coll.len(), shards, &mask);
        let expected_missing: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(s, _)| s as u32)
            .collect();
        for dist in distance_classes() {
            for precision in [Precision::F64, Precision::F32Rescore] {
                let partials =
                    scatter_with_failures(&sharded, &q, k, dist.as_ref(), precision, &mask);
                let gathered = merge_partials_policy(
                    &partials,
                    k,
                    dist.as_ref(),
                    FailurePolicy::Degraded { min_shards: 1 },
                )
                .expect("enough survivors for the floor");
                prop_assert_eq!(&gathered.missing_shards, &expected_missing);
                prop_assert_eq!(
                    gathered.is_degraded(),
                    !expected_missing.is_empty()
                );
                let oracle = flat_oracle(&coll, &rows, &q, k, dist.as_ref(), precision);
                prop_assert_eq!(
                    &gathered.neighbors, &oracle,
                    "{} at {:?}: degraded merge diverged from the surviving flat scan",
                    dist.name(), precision
                );
            }
        }
    }

    // Ejection at the router models a dead shard as a slot failed
    // *instantly* — at this layer, exactly a `None` partial. For any
    // ejected subset and any `min_shards` floor: enough survivors must
    // merge bit-identically to the surviving-shard oracle with the
    // ejected shards reported, too few must refuse with a typed error
    // naming them — across all four distance classes × both precisions.
    #[test]
    fn ejected_shards_degrade_to_oracle_or_refuse_at_the_floor(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        shards in 2usize..5,
        mask_seed in 0u32..(1 << 4),
        min_shards in 1usize..5,
        k in 1usize..12,
    ) {
        let coll = build_collection(&points);
        let sharded = ShardedCollection::split(&coll, shards);
        let min_shards = 1 + (min_shards - 1) % shards;
        let mask: Vec<bool> = (0..shards).map(|s| mask_seed & (1 << s) != 0).collect();
        let survivors = mask.iter().filter(|&&a| a).count();
        let rows = surviving_rows(coll.len(), shards, &mask);
        let ejected: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(s, _)| s as u32)
            .collect();
        for dist in distance_classes() {
            for precision in [Precision::F64, Precision::F32Rescore] {
                let partials =
                    scatter_with_failures(&sharded, &q, k, dist.as_ref(), precision, &mask);
                let outcome = merge_partials_policy(
                    &partials,
                    k,
                    dist.as_ref(),
                    FailurePolicy::Degraded { min_shards },
                );
                if survivors >= min_shards {
                    let gathered = outcome.expect("survivors meet the floor");
                    prop_assert_eq!(&gathered.missing_shards, &ejected);
                    prop_assert_eq!(gathered.is_degraded(), !ejected.is_empty());
                    let oracle = flat_oracle(&coll, &rows, &q, k, dist.as_ref(), precision);
                    prop_assert_eq!(
                        &gathered.neighbors, &oracle,
                        "{} at {:?}: ejection merge diverged from the surviving oracle",
                        dist.name(), precision
                    );
                } else {
                    let refused = outcome.expect_err("too few survivors for the floor");
                    prop_assert_eq!(&refused.missing_shards, &ejected);
                    prop_assert_eq!(refused.survivors, survivors);
                }
            }
        }
    }

    // Strict gathers with any missing shard always refuse, and the
    // error names exactly the missing shards; with every shard present
    // Strict merges like the plain gather.
    #[test]
    fn strict_gather_always_errors_on_missing_shards(
        points in points_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        shards in 2usize..5,
        drop in 0usize..4,
        k in 1usize..12,
    ) {
        let coll = build_collection(&points);
        let sharded = ShardedCollection::split(&coll, shards);
        let drop = drop % shards;
        let mask: Vec<bool> = (0..shards).map(|s| s != drop).collect();
        for dist in distance_classes() {
            for precision in [Precision::F64, Precision::F32Rescore] {
                let partials =
                    scatter_with_failures(&sharded, &q, k, dist.as_ref(), precision, &mask);
                let refused = merge_partials_policy(
                    &partials,
                    k,
                    dist.as_ref(),
                    FailurePolicy::Strict,
                )
                .expect_err("a missing shard must refuse under Strict");
                prop_assert_eq!(&refused.missing_shards, &vec![drop as u32]);
                prop_assert_eq!(refused.survivors, shards - 1);
                prop_assert_eq!(refused.required, shards);

                // Same scatter with every shard present: Strict merges
                // and reports nothing missing.
                let all = vec![true; shards];
                let complete =
                    scatter_with_failures(&sharded, &q, k, dist.as_ref(), precision, &all);
                let gathered = merge_partials_policy(
                    &complete,
                    k,
                    dist.as_ref(),
                    FailurePolicy::Strict,
                )
                .expect("no shard missing");
                prop_assert!(gathered.missing_shards.is_empty());
                prop_assert!(!gathered.is_degraded());
            }
        }
    }
}
