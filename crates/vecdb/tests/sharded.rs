//! Sharded scatter/gather consistency suite: [`ShardedScan`] over a
//! [`ShardedCollection`] must return **bit-identical** neighbor indices
//! and f64 distances to the unsharded [`LinearScan`] /
//! [`MultiQueryScan`], across all four distance classes, both
//! precisions, and the shard-boundary edges — S ∈ {1, 3, len}, S > len
//! (empty shards), k larger than any single shard, per-query k, and
//! range queries. Sharding is a bandwidth/parallelism knob, never a
//! result knob.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::{FeatureSpan, HierarchicalDistance};
use fbp_vecdb::{
    Collection, CollectionBuilder, Distance, Euclidean, KnnEngine, LinearScan, MultiQueryScan,
    Precision, QuadraticDistance, ScanMode, ShardedCollection, ShardedScan, WeightedEuclidean,
};

const DIM: usize = 24;
const N: usize = 900;

fn collection(n: usize, mirror: bool) -> Collection {
    let mut state = 0xB5AD_4ECE_DA1C_E2A9u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new();
    if mirror {
        b = b.with_f32_mirror();
    }
    for _ in 0..n {
        let v: Vec<f64> = (0..DIM).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn queries(nq: usize) -> Vec<Vec<f64>> {
    (0..nq)
        .map(|q| {
            (0..DIM)
                .map(|i| ((q * 29 + i * 13) as f64 * 0.41).sin().abs())
                .collect()
        })
        .collect()
}

/// All four distance classes, in key-comparable parameterizations.
fn distance_classes() -> Vec<Box<dyn Distance>> {
    let w: Vec<f64> = (0..DIM).map(|i| 0.4 + (i % 6) as f64).collect();
    let spans = vec![FeatureSpan::new(0, 8), FeatureSpan::new(8, DIM)];
    let h = HierarchicalDistance::new(spans, vec![1.5, 0.75], w.clone()).unwrap();
    let mut m = Matrix::identity(DIM);
    for i in 0..DIM {
        m[(i, i)] = 0.5 + (i % 4) as f64;
        if i + 1 < DIM {
            m[(i, i + 1)] = 0.1;
            m[(i + 1, i)] = 0.1;
        }
    }
    vec![
        Box::new(Euclidean),
        Box::new(WeightedEuclidean::new(w).unwrap()),
        Box::new(QuadraticDistance::new(&m).unwrap()),
        Box::new(h),
    ]
}

/// The acceptance matrix: shard counts spanning the degenerate edges.
fn shard_counts(len: usize) -> [usize; 3] {
    [1, 3, len]
}

#[test]
fn sharded_knn_bit_identical_all_classes_both_precisions() {
    // Mirrored collection: F32Rescore engages the two-phase path, F64
    // pins the single-phase one — both must match the flat LinearScan
    // bit for bit through the shard merge.
    let coll = collection(N, true);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    for dist in distance_classes() {
        for s in shard_counts(N) {
            let sharded = ShardedCollection::split(&coll, s);
            for precision in [Precision::F64, Precision::F32Rescore] {
                for mode in [ScanMode::Batched, ScanMode::Parallel] {
                    let scan = ShardedScan::with_mode(&sharded, mode).with_precision(precision);
                    let flat = LinearScan::with_mode(&coll, mode).with_precision(precision);
                    for k in [1usize, 10, 50] {
                        let got = scan.knn_multi(&refs, k, &*dist);
                        for (q, res) in refs.iter().zip(got.iter()) {
                            let expect = flat.knn(q, k, &*dist);
                            assert_eq!(
                                res, &expect,
                                "S={s} k={k} mode={mode:?} precision={precision:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn scalar_mode_merges_in_distance_space() {
    // The Scalar reference pushes true distances (identity finish); the
    // shard merge must reproduce the flat Scalar scan exactly, too.
    let coll = collection(200, false);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let sharded = ShardedCollection::split(&coll, 3);
    let scan = ShardedScan::with_mode(&sharded, ScanMode::Scalar);
    let flat = LinearScan::with_mode(&coll, ScanMode::Scalar);
    for dist in distance_classes() {
        for (q, res) in refs.iter().zip(scan.knn_multi(&refs, 7, &*dist)) {
            assert_eq!(res, flat.knn(q, 7, &*dist));
        }
    }
}

#[test]
fn empty_shards_and_k_beyond_shard_len() {
    let n = 10;
    let coll = collection(n, true);
    let q = queries(1).remove(0);
    let w = WeightedEuclidean::new((0..DIM).map(|i| 0.3 + (i % 5) as f64).collect()).unwrap();
    let flat = LinearScan::with_mode(&coll, ScanMode::Batched);
    // S > len: tail shards are empty and contribute empty partials.
    for s in [n, n + 7, 3] {
        let sharded = ShardedCollection::split(&coll, s);
        let scan = ShardedScan::with_mode(&sharded, ScanMode::Batched);
        // k exceeds every shard's length (and, at k = 100, the whole
        // collection): the merge must still assemble the global answer.
        for k in [4usize, n, 100] {
            assert_eq!(
                scan.knn_multi(&[&q], k, &w),
                vec![flat.knn(&q, k, &w)],
                "S={s} k={k}"
            );
        }
        // k = 0 stays empty.
        assert_eq!(scan.knn_multi(&[&q], 0, &w), vec![Vec::new()]);
    }
    // A fully empty collection shards into S empty shards and serves
    // empty results.
    let empty = ShardedCollection::split(&CollectionBuilder::new().build(), 4);
    let scan = ShardedScan::new(&empty);
    let eq: &[f64] = &[];
    assert_eq!(scan.knn_multi(&[eq], 5, &Euclidean), vec![Vec::new()]);
    assert!(scan.knn_multi(&[], 5, &Euclidean).is_empty());
    assert!(scan.range(eq, 1.0, &Euclidean).is_empty());
}

#[test]
fn per_query_k_and_per_query_metrics_match_flat() {
    let coll = collection(N, true);
    let qs = queries(3);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let ks = [1usize, 50, 7];
    let metrics: Vec<WeightedEuclidean> = (0..3)
        .map(|q| {
            WeightedEuclidean::new((0..DIM).map(|i| 0.3 + ((q + i) % 4) as f64).collect()).unwrap()
        })
        .collect();
    let dists: Vec<&dyn Distance> = metrics.iter().map(|m| m as &dyn Distance).collect();
    for s in shard_counts(N) {
        let sharded = ShardedCollection::split(&coll, s);
        for precision in [Precision::F64, Precision::F32Rescore] {
            let scan =
                ShardedScan::with_mode(&sharded, ScanMode::Batched).with_precision(precision);
            let flat =
                MultiQueryScan::with_mode(&coll, ScanMode::Batched).with_precision(precision);
            // Shared metric, per-query k.
            let w = &metrics[0];
            assert_eq!(
                scan.knn_multi_k(&refs, &ks, w),
                flat.knn_multi_k(&refs, &ks, w),
                "shared metric S={s} precision={precision:?}"
            );
            // Per-query generic metrics.
            assert_eq!(
                scan.knn_per_query_k(&refs, &dists, &ks),
                flat.knn_per_query_k(&refs, &dists, &ks),
                "per-query dists S={s} precision={precision:?}"
            );
            // Per-query weighted metrics (the serving fast path).
            assert_eq!(
                scan.knn_weighted_per_query_k(&refs, &metrics, &ks),
                flat.knn_weighted_per_query_k(&refs, &metrics, &ks),
                "per-query weighted S={s} precision={precision:?}"
            );
        }
    }
}

#[test]
fn range_queries_match_flat_scan() {
    let coll = collection(N, true);
    let q = queries(1).remove(0);
    for dist in distance_classes() {
        // A radius wide enough to cross shard boundaries but narrow
        // enough to exercise the filter.
        let probe = LinearScan::with_mode(&coll, ScanMode::Batched).knn(&q, 40, &*dist);
        let radius = probe.last().expect("probe results").dist;
        for s in shard_counts(N) {
            let sharded = ShardedCollection::split(&coll, s);
            for precision in [Precision::F64, Precision::F32Rescore] {
                for mode in [ScanMode::Batched, ScanMode::Parallel] {
                    let got = ShardedScan::with_mode(&sharded, mode)
                        .with_precision(precision)
                        .range(&q, radius, &*dist);
                    let expect = LinearScan::with_mode(&coll, mode)
                        .with_precision(precision)
                        .range(&q, radius, &*dist);
                    assert_eq!(got, expect, "S={s} mode={mode:?} precision={precision:?}");
                    // The radius is the 40th-nearest distance, so the
                    // result set is substantial and crosses shard
                    // boundaries (boundary membership itself is pinned
                    // by the equality above).
                    assert!(got.len() >= 39, "suspiciously small range result");
                }
            }
        }
    }
}

#[test]
fn thread_budget_does_not_change_results() {
    let coll = collection(N, true);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let w = WeightedEuclidean::new((0..DIM).map(|i| 0.2 + (i % 5) as f64).collect()).unwrap();
    let sharded = ShardedCollection::split(&coll, 4);
    let unbudgeted = ShardedScan::with_mode(&sharded, ScanMode::Parallel);
    let one = ShardedScan::with_mode(&sharded, ScanMode::Parallel).with_thread_budget(1);
    let two = ShardedScan::with_mode(&sharded, ScanMode::Parallel).with_thread_budget(2);
    let a = unbudgeted.knn_multi(&refs, 9, &w);
    assert_eq!(a, one.knn_multi(&refs, 9, &w));
    assert_eq!(a, two.knn_multi(&refs, 9, &w));
}

#[test]
fn seeded_scans_stay_bit_identical() {
    // Cross-shard bound propagation: seeding a shard pass with another
    // shard's k-th key (a sound upper bound on the global k-th) must
    // not change the merged answer — for either precision, and even
    // with the tightest legal seed (the exact global k-th key itself).
    let coll = collection(N, true);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let metrics: Vec<WeightedEuclidean> = (0..2)
        .map(|q| {
            WeightedEuclidean::new((0..DIM).map(|i| 0.3 + ((q + i) % 4) as f64).collect()).unwrap()
        })
        .collect();
    let ks = [10usize, 50];
    let flat = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
    let expect = flat.knn_weighted_per_query_k(&refs, &metrics, &ks);
    for s in [2usize, 3] {
        let sharded = ShardedCollection::split(&coll, s);
        for precision in [Precision::F64, Precision::F32Rescore] {
            let scan =
                ShardedScan::with_mode(&sharded, ScanMode::Batched).with_precision(precision);
            // Unseeded pass over shard 0 yields each query's local k-th
            // bound; seed every other shard with it (the serving-layer
            // protocol), plus the degenerate all-infinite seed.
            let p0 = scan.scan_shard_weighted(0, &refs, &metrics, &ks, None);
            let seeds: Vec<f64> = p0
                .iter()
                .zip(ks.iter())
                .map(|(p, &k)| p.bound_key(k).unwrap_or(f64::INFINITY))
                .collect();
            // Tightest legal seed: the exact global k-th key, taken from
            // the flat scan's answers (dist is the finished key; square
            // it back via the metric's key space using the partials'
            // own entries instead — here we simply reuse shard-0 seeds
            // and the exact-seed variant below).
            for seed_set in [vec![f64::INFINITY; 2], seeds] {
                let mut parts: Vec<Vec<_>> = vec![p0.clone()];
                for shard in 1..s {
                    parts.push(scan.scan_shard_weighted(
                        shard,
                        &refs,
                        &metrics,
                        &ks,
                        Some(&seed_set),
                    ));
                }
                for (q, &k) in ks.iter().enumerate() {
                    let merged =
                        fbp_vecdb::merge_partials(parts.iter().map(|p| &p[q]), k, &metrics[q]);
                    assert_eq!(
                        merged, expect[q],
                        "S={s} q={q} precision={precision:?} seeded pass diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn partial_merge_is_shard_order_independent() {
    // The server's gather stage receives partials in whatever order the
    // shard dispatchers finish; the merged answer must not care.
    let coll = collection(300, true);
    let q = queries(1).remove(0);
    let w = WeightedEuclidean::new((0..DIM).map(|i| 0.5 + (i % 3) as f64).collect()).unwrap();
    let sharded = ShardedCollection::split(&coll, 3);
    let scan = ShardedScan::with_mode(&sharded, ScanMode::Batched);
    let parts: Vec<_> = (0..3)
        .map(|s| scan.scan_shard_weighted(s, &[&q], std::slice::from_ref(&w), &[10], None))
        .collect();
    let expect = LinearScan::with_mode(&coll, ScanMode::Batched).knn(&q, 10, &w);
    // Every permutation of shard arrival order merges identically.
    for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2], [2, 0, 1]] {
        let merged = fbp_vecdb::merge_partials(order.iter().map(|&s| &parts[s][0]), 10, &w);
        assert_eq!(merged, expect, "order {order:?}");
    }
}
