//! Ad-hoc kernel timing harness (ignored by default; run explicitly with
//! `cargo test --release --test kernel_timing -- --ignored --nocapture`).

use fbp_vecdb::{Distance, WeightedEuclidean};

#[test]
#[ignore]
fn time_f32_vs_f64_kernels() {
    const N: usize = 10_000;
    const DIM: usize = 64;
    let block: Vec<f64> = (0..N * DIM)
        .map(|i| (i as f64 * 0.37).sin().abs())
        .collect();
    let block32: Vec<f32> = block.iter().map(|&v| v as f32).collect();
    let q: Vec<f64> = (0..DIM).map(|i| (i as f64 * 0.7).cos().abs()).collect();
    let q32: Vec<f32> = q.iter().map(|&v| v as f32).collect();
    let w = WeightedEuclidean::new((0..DIM).map(|i| 0.3 + (i % 5) as f64).collect()).unwrap();
    let mut out = vec![0.0f64; N];
    let mut out32 = vec![0.0f32; N];
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            w.eval_key_batch(&q, &block, DIM, f64::INFINITY, &mut out);
            std::hint::black_box(&out);
        }
        let f64_t = t0.elapsed().as_nanos() as f64 / 20.0;
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            w.eval_key_batch_f32(&q32, &block32, DIM, f32::INFINITY, &mut out32);
            std::hint::black_box(&out32);
        }
        let f32_t = t0.elapsed().as_nanos() as f64 / 20.0;
        println!(
            "f64 {:.0} us  f32 {:.0} us  ratio {:.2}",
            f64_t / 1e3,
            f32_t / 1e3,
            f64_t / f32_t
        );
    }
}
