//! Multi-query scan consistency suite: [`MultiQueryScan`] must return
//! **bit-identical** neighbor indices and distances to Q independent
//! [`LinearScan`] runs in the same key-space mode, across all four
//! distance classes and Q ∈ {1, 3, 16} — per-query early-abandon bounds,
//! block boundaries and thread merges must never change an answer.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::{FeatureSpan, HierarchicalDistance};
use fbp_vecdb::{
    Collection, CollectionBuilder, Distance, Euclidean, KnnEngine, LinearScan, MultiQueryScan,
    QuadraticDistance, ScanMode, WeightedEuclidean,
};

const DIM: usize = 24;

fn collection(n: usize) -> Collection {
    // Deterministic LCG filler (no dev-dependency on rand needed).
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new();
    for _ in 0..n {
        let v: Vec<f64> = (0..DIM).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn queries(nq: usize) -> Vec<Vec<f64>> {
    (0..nq)
        .map(|q| {
            (0..DIM)
                .map(|i| ((q * 31 + i * 17) as f64 * 0.23).sin().abs())
                .collect()
        })
        .collect()
}

/// All four distance classes, in key-comparable parameterizations.
fn distance_classes() -> Vec<Box<dyn Distance>> {
    let w: Vec<f64> = (0..DIM).map(|i| 0.4 + (i % 6) as f64).collect();
    let spans = vec![FeatureSpan::new(0, 8), FeatureSpan::new(8, DIM)];
    let h = HierarchicalDistance::new(spans, vec![1.5, 0.75], w.clone()).unwrap();
    let mut m = Matrix::identity(DIM);
    for i in 0..DIM {
        m[(i, i)] = 0.5 + (i % 4) as f64;
        if i + 1 < DIM {
            m[(i, i + 1)] = 0.1;
            m[(i + 1, i)] = 0.1;
        }
    }
    vec![
        Box::new(Euclidean),
        Box::new(WeightedEuclidean::new(w).unwrap()),
        Box::new(QuadraticDistance::new(&m).unwrap()),
        Box::new(h),
    ]
}

#[test]
fn shared_metric_bit_identical_to_independent_scans() {
    let coll = collection(1200);
    for dist in distance_classes() {
        for nq in [1usize, 3, 16] {
            let qs = queries(nq);
            let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
            for k in [1usize, 10, 50] {
                let expected: Vec<_> = refs
                    .iter()
                    .map(|q| LinearScan::with_mode(&coll, ScanMode::Batched).knn(q, k, &*dist))
                    .collect();
                for mode in [ScanMode::Batched, ScanMode::Parallel] {
                    let got = MultiQueryScan::with_mode(&coll, mode).knn_multi(&refs, k, &*dist);
                    assert_eq!(
                        got,
                        expected,
                        "{} Q={nq} k={k} mode={mode:?}: multi-scan diverged",
                        dist.name()
                    );
                }
            }
        }
    }
}

#[test]
fn scalar_mode_matches_scalar_linear_scan() {
    let coll = collection(400);
    for dist in distance_classes() {
        let qs = queries(3);
        let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
        let got = MultiQueryScan::with_mode(&coll, ScanMode::Scalar).knn_multi(&refs, 12, &*dist);
        for (q, res) in refs.iter().zip(got.iter()) {
            let expected = LinearScan::with_mode(&coll, ScanMode::Scalar).knn(q, 12, &*dist);
            assert_eq!(res, &expected, "{}: scalar multi diverged", dist.name());
        }
    }
}

#[test]
fn per_query_metrics_bit_identical_to_independent_scans() {
    let coll = collection(1000);
    // Heterogeneous per-query metrics, one from each class where cheap.
    let owned = distance_classes();
    let qs = queries(owned.len());
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let dists: Vec<&dyn Distance> = owned.iter().map(|d| &**d).collect();
    for mode in [ScanMode::Batched, ScanMode::Parallel] {
        let got = MultiQueryScan::with_mode(&coll, mode).knn_per_query(&refs, &dists, 20);
        for ((q, d), res) in refs.iter().zip(dists.iter()).zip(got.iter()) {
            let expected = LinearScan::with_mode(&coll, ScanMode::Batched).knn(q, 20, *d);
            assert_eq!(res, &expected, "{} mode={mode:?}", d.name());
        }
    }
}

#[test]
fn auto_mode_agrees_with_explicit_modes() {
    let coll = collection(2500);
    let qs = queries(5);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let w: Vec<f64> = (0..DIM).map(|i| 0.7 + (i % 3) as f64).collect();
    let dist = WeightedEuclidean::new(w).unwrap();
    let auto = MultiQueryScan::new(&coll).knn_multi(&refs, 15, &dist);
    let batched = MultiQueryScan::with_mode(&coll, ScanMode::Batched).knn_multi(&refs, 15, &dist);
    assert_eq!(auto, batched);
}
