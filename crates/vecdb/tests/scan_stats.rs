//! Scan-path counter suite: attaching a [`ScanStatsSink`] to a
//! [`MultiQueryScan`] / [`ShardedScan`] must populate the work counters
//! (rows streamed, blocks abandoned, f32 filter/rescore volumes, seeded
//! passes) while leaving every answer **bit-identical** to the
//! uninstrumented scan — observability is a read-only tap, never a
//! result knob.

use fbp_vecdb::{
    CollectionBuilder, MultiQueryScan, Precision, ScanMode, ScanStatsSink, ShardedCollection,
    ShardedScan, WeightedEuclidean,
};

const DIM: usize = 24;
const N: usize = 900;

fn collection(n: usize) -> fbp_vecdb::Collection {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for _ in 0..n {
        let v: Vec<f64> = (0..DIM).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn queries(nq: usize) -> Vec<Vec<f64>> {
    (0..nq)
        .map(|q| {
            (0..DIM)
                .map(|i| ((q * 31 + i * 11) as f64 * 0.43).sin().abs())
                .collect()
        })
        .collect()
}

fn metric() -> WeightedEuclidean {
    WeightedEuclidean::new((0..DIM).map(|i| 0.4 + (i % 6) as f64).collect()).unwrap()
}

#[test]
fn counters_populate_without_changing_answers() {
    let coll = collection(N);
    let qs = queries(3);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let w = metric();
    let k = 10;
    for mode in [ScanMode::Scalar, ScanMode::Batched, ScanMode::Parallel] {
        for precision in [Precision::F64, Precision::F32Rescore] {
            let plain = MultiQueryScan::with_mode(&coll, mode)
                .with_precision(precision)
                .knn_multi(&refs, k, &w);
            let sink = ScanStatsSink::new();
            let traced = MultiQueryScan::with_mode(&coll, mode)
                .with_precision(precision)
                .with_scan_stats(&sink)
                .knn_multi(&refs, k, &w);
            assert_eq!(plain, traced, "mode {mode:?} precision {precision:?}");
            let s = sink.snapshot();
            assert_eq!(
                s.rows_visited, N as u64,
                "one pass streams every row (mode {mode:?} precision {precision:?})"
            );
            assert_eq!(s.seed_prunes, 0, "no caps were passed");
            if mode == ScanMode::Batched {
                // 900 rows = 4 blocks; after the first block fills the
                // k-bests, later blocks always drop something.
                assert!(s.blocks_abandoned > 0, "precision {precision:?}");
            }
            if mode != ScanMode::Scalar && precision == Precision::F32Rescore {
                // The true top-k per query always survive phase 1.
                assert!(
                    s.candidates_rescored >= (k * refs.len()) as u64,
                    "mode {mode:?}: rescored {}",
                    s.candidates_rescored
                );
            } else {
                assert_eq!(s.candidates_rescored, 0, "pure-f64 path has no rescore");
                assert_eq!(s.candidates_filtered, 0);
            }
        }
    }
}

#[test]
fn weighted_per_query_counters_match_generic_behaviour() {
    let coll = collection(N);
    let qs = queries(3);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let metrics: Vec<WeightedEuclidean> = (0..3)
        .map(|q| {
            WeightedEuclidean::new((0..DIM).map(|i| 0.3 + ((q + i) % 4) as f64).collect()).unwrap()
        })
        .collect();
    let ks = [3usize, 10, 7];
    for mode in [ScanMode::Scalar, ScanMode::Batched, ScanMode::Parallel] {
        for precision in [Precision::F64, Precision::F32Rescore] {
            let plain = MultiQueryScan::with_mode(&coll, mode)
                .with_precision(precision)
                .knn_weighted_per_query_k(&refs, &metrics, &ks);
            let sink = ScanStatsSink::new();
            let traced = MultiQueryScan::with_mode(&coll, mode)
                .with_precision(precision)
                .with_scan_stats(&sink)
                .knn_weighted_per_query_k(&refs, &metrics, &ks);
            assert_eq!(plain, traced, "mode {mode:?} precision {precision:?}");
            let s = sink.snapshot();
            assert_eq!(
                s.rows_visited, N as u64,
                "mode {mode:?} precision {precision:?}"
            );
        }
    }
}

#[test]
fn sharded_scan_attributes_every_shard_pass() {
    let coll = collection(N);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let w = metric();
    let sharded = ShardedCollection::split(&coll, 3);
    let plain = ShardedScan::new(&sharded).knn_multi(&refs, 10, &w);
    let sink = ScanStatsSink::new();
    let traced = ShardedScan::new(&sharded)
        .with_scan_stats(&sink)
        .knn_multi(&refs, 10, &w);
    assert_eq!(plain, traced);
    // Every shard pass flushes into the one shared sink: the three
    // disjoint shard passes stream the whole collection exactly once.
    assert_eq!(sink.snapshot().rows_visited, N as u64);
}

#[test]
fn seeded_shard_pass_counts_a_seed_prune_and_keeps_the_answer() {
    let coll = collection(N);
    let qs = queries(1);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let w = metric();
    let k = 10usize;
    let sharded = ShardedCollection::split(&coll, 3);
    let scan = ShardedScan::new(&sharded);
    // Unseeded shard-0 pass: its k-th key upper-bounds the global k-th,
    // so it is a sound cap for a re-run of the same pass.
    let unseeded = scan.scan_shard_multi(0, &refs, &[k], &w, None);
    let cap = unseeded[0].bound_key(k).expect("shard 0 holds >= k rows");
    for weighted in [false, true] {
        let sink = ScanStatsSink::new();
        let traced = scan.with_scan_stats(&sink);
        let seeded = if weighted {
            traced.scan_shard_weighted_refs(0, &refs, &[&w], &[k], Some(&[cap]))
        } else {
            traced.scan_shard_multi(0, &refs, &[k], &w, Some(&[cap]))
        };
        assert_eq!(
            seeded[0].entries()[..k],
            unseeded[0].entries()[..k],
            "a sound cap never changes the kept top-k (weighted={weighted})"
        );
        let s = sink.snapshot();
        assert_eq!(s.seed_prunes, 1, "weighted={weighted}");
        assert_eq!(s.rows_visited, sharded.shard(0).len() as u64);
        // An infinite cap is a no-op and must not count as seeding.
        let seeded_inf =
            traced.scan_shard_multi(0, &refs, &[k], &w, Some(&[f64::INFINITY]))[0].clone();
        assert_eq!(seeded_inf.entries(), unseeded[0].entries());
        assert_eq!(sink.snapshot().seed_prunes, 1, "INFINITY cap not counted");
    }
}
