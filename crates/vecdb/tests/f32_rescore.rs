//! f32-rescore consistency suite: `Precision::F32Rescore` must return
//! **bit-identical** neighbor indices and f64 distances to the pure-f64
//! scan, across all four distance classes, Q ∈ {1, 16}, k ∈ {1, 10, 50},
//! in every kernel mode and through every entry point (LinearScan,
//! shared-metric multi, per-query-metric multi). The phase-1 f32 filter
//! with its inflated bounds may only change *how much* the scan reads,
//! never *what* it answers.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::{FeatureSpan, HierarchicalDistance};
use fbp_vecdb::{
    Collection, CollectionBuilder, Distance, Euclidean, KnnEngine, LinearScan, Manhattan,
    MultiQueryScan, Precision, QuadraticDistance, ScanMode, WeightedEuclidean,
};

const DIM: usize = 24;

fn collection(n: usize, mirror: bool) -> Collection {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new();
    if mirror {
        b = b.with_f32_mirror();
    }
    for _ in 0..n {
        let v: Vec<f64> = (0..DIM).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn queries(nq: usize) -> Vec<Vec<f64>> {
    (0..nq)
        .map(|q| {
            (0..DIM)
                .map(|i| ((q * 31 + i * 17) as f64 * 0.23).sin().abs())
                .collect()
        })
        .collect()
}

/// All four distance classes, in key-comparable parameterizations.
fn distance_classes() -> Vec<Box<dyn Distance>> {
    let w: Vec<f64> = (0..DIM).map(|i| 0.4 + (i % 6) as f64).collect();
    let spans = vec![FeatureSpan::new(0, 8), FeatureSpan::new(8, DIM)];
    let h = HierarchicalDistance::new(spans, vec![1.5, 0.75], w.clone()).unwrap();
    let mut m = Matrix::identity(DIM);
    for i in 0..DIM {
        m[(i, i)] = 0.5 + (i % 4) as f64;
        if i + 1 < DIM {
            m[(i, i + 1)] = 0.1;
            m[(i + 1, i)] = 0.1;
        }
    }
    vec![
        Box::new(Euclidean),
        Box::new(WeightedEuclidean::new(w).unwrap()),
        Box::new(QuadraticDistance::new(&m).unwrap()),
        Box::new(h),
    ]
}

#[test]
fn linear_scan_f32_rescore_bit_identical_all_classes() {
    let coll = collection(1500, true);
    let qs = queries(3);
    for dist in distance_classes() {
        for q in &qs {
            for k in [1usize, 10, 50] {
                for mode in [ScanMode::Batched, ScanMode::Parallel] {
                    let f64_res = LinearScan::with_mode(&coll, mode).knn(q, k, &*dist);
                    let f32_res = LinearScan::with_mode(&coll, mode)
                        .with_precision(Precision::F32Rescore)
                        .knn(q, k, &*dist);
                    assert_eq!(
                        f32_res,
                        f64_res,
                        "{} k={k} mode={mode:?}: f32-rescore diverged",
                        dist.name()
                    );
                }
            }
        }
    }
}

#[test]
fn multi_query_f32_rescore_bit_identical_all_classes() {
    let coll = collection(1200, true);
    for dist in distance_classes() {
        for nq in [1usize, 16] {
            let qs = queries(nq);
            let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
            for k in [1usize, 10, 50] {
                for mode in [ScanMode::Batched, ScanMode::Parallel] {
                    let f64_res =
                        MultiQueryScan::with_mode(&coll, mode).knn_multi(&refs, k, &*dist);
                    let f32_res = MultiQueryScan::with_mode(&coll, mode)
                        .with_precision(Precision::F32Rescore)
                        .knn_multi(&refs, k, &*dist);
                    assert_eq!(
                        f32_res,
                        f64_res,
                        "{} Q={nq} k={k} mode={mode:?}: f32-rescore diverged",
                        dist.name()
                    );
                }
            }
        }
    }
}

#[test]
fn per_query_metrics_f32_rescore_bit_identical() {
    let coll = collection(1000, true);
    let owned = distance_classes();
    let qs = queries(owned.len());
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let dists: Vec<&dyn Distance> = owned.iter().map(|d| &**d).collect();
    for mode in [ScanMode::Batched, ScanMode::Parallel] {
        let f64_res = MultiQueryScan::with_mode(&coll, mode).knn_per_query(&refs, &dists, 20);
        let f32_res = MultiQueryScan::with_mode(&coll, mode)
            .with_precision(Precision::F32Rescore)
            .knn_per_query(&refs, &dists, 20);
        assert_eq!(f32_res, f64_res, "mode={mode:?}");
    }
}

#[test]
fn range_f32_rescore_bit_identical_all_classes() {
    let coll = collection(1500, true);
    let qs = queries(3);
    for dist in distance_classes() {
        for q in &qs {
            // Radii spanning empty → sparse → bulky result sets, derived
            // from the actual neighbor distances so every class gets
            // non-trivial membership (including one radius sitting
            // exactly ON a neighbor distance — boundary membership must
            // be decided identically by both precisions).
            let nn = LinearScan::with_mode(&coll, ScanMode::Batched).knn(q, 50, &*dist);
            let radii = [
                nn[0].dist * 0.5,
                nn[9].dist,
                nn[49].dist * 1.1,
                f64::INFINITY,
            ];
            for (ri, &radius) in radii.iter().enumerate() {
                for mode in [ScanMode::Batched, ScanMode::Parallel] {
                    let f64_res = LinearScan::with_mode(&coll, mode).range(q, radius, &*dist);
                    let f32_res = LinearScan::with_mode(&coll, mode)
                        .with_precision(Precision::F32Rescore)
                        .range(q, radius, &*dist);
                    assert_eq!(
                        f32_res,
                        f64_res,
                        "{} radius#{ri} mode={mode:?}: f32-rescore range diverged",
                        dist.name()
                    );
                }
            }
        }
    }
}

#[test]
fn range_f32_rescore_fallbacks_match_f64() {
    // No mirror, unsupported class (Manhattan), and Scalar mode must all
    // transparently serve the f64 range answer.
    let unmirrored = collection(400, false);
    let mirrored = collection(400, true);
    let q = queries(1).pop().unwrap();
    let w = WeightedEuclidean::new((0..DIM).map(|i| 0.5 + (i % 3) as f64).collect()).unwrap();
    let radius = 1.5;
    let expect = LinearScan::with_mode(&unmirrored, ScanMode::Batched).range(&q, radius, &w);
    let no_mirror = LinearScan::with_mode(&unmirrored, ScanMode::Batched)
        .with_precision(Precision::F32Rescore)
        .range(&q, radius, &w);
    assert_eq!(no_mirror, expect);
    let manhattan_f64 =
        LinearScan::with_mode(&mirrored, ScanMode::Batched).range(&q, radius, &Manhattan);
    let manhattan_f32 = LinearScan::with_mode(&mirrored, ScanMode::Batched)
        .with_precision(Precision::F32Rescore)
        .range(&q, radius, &Manhattan);
    assert_eq!(manhattan_f32, manhattan_f64);
    let scalar = LinearScan::with_mode(&mirrored, ScanMode::Scalar)
        .with_precision(Precision::F32Rescore)
        .range(&q, radius, &w);
    let scalar_f64 = LinearScan::with_mode(&mirrored, ScanMode::Scalar).range(&q, radius, &w);
    assert_eq!(scalar, scalar_f64);
}

#[test]
fn weighted_per_query_f32_rescore_bit_identical() {
    let coll = collection(1100, true);
    let qs = queries(5);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let metrics: Vec<WeightedEuclidean> = (0..5)
        .map(|q| {
            WeightedEuclidean::new((0..DIM).map(|i| 0.3 + ((q + i) % 5) as f64).collect()).unwrap()
        })
        .collect();
    let ks = [1usize, 10, 50, 7, 25];
    for mode in [ScanMode::Batched, ScanMode::Parallel] {
        let f64_res =
            MultiQueryScan::with_mode(&coll, mode).knn_weighted_per_query_k(&refs, &metrics, &ks);
        let f32_res = MultiQueryScan::with_mode(&coll, mode)
            .with_precision(Precision::F32Rescore)
            .knn_weighted_per_query_k(&refs, &metrics, &ks);
        assert_eq!(f32_res, f64_res, "mode {mode:?}");
        for ((q, m), (res, &k)) in refs
            .iter()
            .zip(metrics.iter())
            .zip(f32_res.iter().zip(ks.iter()))
        {
            let expect = LinearScan::with_mode(&coll, ScanMode::Batched).knn(q, k, m);
            assert_eq!(
                res, &expect,
                "mode {mode:?} k={k}: diverged from LinearScan"
            );
        }
    }
}

#[test]
fn f32_rescore_without_mirror_falls_back_to_f64() {
    let coll = collection(400, false);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let w = WeightedEuclidean::new((0..DIM).map(|i| 0.5 + (i % 3) as f64).collect()).unwrap();
    let f64_res = MultiQueryScan::with_mode(&coll, ScanMode::Batched).knn_multi(&refs, 9, &w);
    let f32_res = MultiQueryScan::with_mode(&coll, ScanMode::Batched)
        .with_precision(Precision::F32Rescore)
        .knn_multi(&refs, 9, &w);
    assert_eq!(f32_res, f64_res);
}

#[test]
fn f32_rescore_unsupported_class_falls_back_to_f64() {
    // Manhattan has no f32 kernel (no `f32_key_slack`): requesting
    // F32Rescore must transparently serve the f64 answer.
    let coll = collection(400, true);
    let qs = queries(2);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let f64_res =
        MultiQueryScan::with_mode(&coll, ScanMode::Batched).knn_multi(&refs, 5, &Manhattan);
    let f32_res = MultiQueryScan::with_mode(&coll, ScanMode::Batched)
        .with_precision(Precision::F32Rescore)
        .knn_multi(&refs, 5, &Manhattan);
    assert_eq!(f32_res, f64_res);
}

#[test]
fn f32_rescore_scalar_mode_ignores_precision() {
    let coll = collection(300, true);
    let q = queries(1).pop().unwrap();
    let f64_res = LinearScan::with_mode(&coll, ScanMode::Scalar).knn(&q, 7, &Euclidean);
    let f32_res = LinearScan::with_mode(&coll, ScanMode::Scalar)
        .with_precision(Precision::F32Rescore)
        .knn(&q, 7, &Euclidean);
    assert_eq!(f32_res, f64_res);
}

#[test]
fn f32_rescore_edge_ks() {
    let coll = collection(120, true);
    let qs = queries(3);
    let refs: Vec<&[f64]> = qs.iter().map(Vec::as_slice).collect();
    let w = WeightedEuclidean::new((0..DIM).map(|i| 0.5 + (i % 3) as f64).collect()).unwrap();
    let scan =
        MultiQueryScan::with_mode(&coll, ScanMode::Batched).with_precision(Precision::F32Rescore);
    // k = 0 returns empty; oversized k returns the whole collection.
    for res in scan.knn_multi(&refs, 0, &w) {
        assert!(res.is_empty());
    }
    let full = scan.knn_multi(&refs, 500, &w);
    let expect = MultiQueryScan::with_mode(&coll, ScanMode::Batched).knn_multi(&refs, 500, &w);
    assert_eq!(full, expect);
    for res in &full {
        assert_eq!(res.len(), 120);
    }
    // Empty collection with a mirror.
    let empty = CollectionBuilder::new()
        .with_dim(DIM)
        .with_f32_mirror()
        .build();
    let scan = MultiQueryScan::new(&empty).with_precision(Precision::F32Rescore);
    assert_eq!(scan.knn_multi(&refs, 3, &w), vec![Vec::new(); 3]);
}

/// Components ≳1e18 drive weighted keys toward `f32::MAX`, where an f32
/// key can saturate to `+∞` while its f64 counterpart stays finite — no
/// finite rounding slack is sound there. The classes must refuse f32
/// scanning (`f32_key_slack` → `None`) so the scan transparently serves
/// the exact f64 answer.
#[test]
fn f32_rescore_huge_magnitudes_fall_back_to_f64() {
    let mut b = CollectionBuilder::new().with_f32_mirror();
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..300 {
        let v: Vec<f64> = (0..DIM).map(|_| next() * 1e18).collect();
        b.push_unlabelled(&v).unwrap();
    }
    let coll = b.build();
    let q: Vec<f64> = (0..DIM).map(|i| (i as f64) * 1e16).collect();
    for dist in distance_classes() {
        assert!(
            dist.f32_key_slack(DIM, coll.max_abs().unwrap()).is_none(),
            "{}: slack must be refused near f32 overflow",
            dist.name()
        );
        let f64_res = LinearScan::with_mode(&coll, ScanMode::Batched).knn(&q, 10, &*dist);
        let f32_res = LinearScan::with_mode(&coll, ScanMode::Batched)
            .with_precision(Precision::F32Rescore)
            .knn(&q, 10, &*dist);
        assert_eq!(f32_res, f64_res, "{}", dist.name());
    }
}

/// Adversarial near-tie data: many rows at (almost) the same distance,
/// differing by less than f32 resolution — exactly the regime where a
/// naive f32 scan reorders neighbors, and where the inflated bound must
/// keep every contender alive for the rescore.
#[test]
fn f32_rescore_survives_sub_f32_ties() {
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for i in 0..512 {
        // All rows at radius ~1 from the origin in the first coordinate,
        // perturbed by ± a few f64 ulps-in-f32 (1e-9 ≪ f32 eps ≈ 1.2e-7).
        let eps = ((i * 2654435761u64 as usize) % 1000) as f64 * 1e-9;
        let mut v = vec![0.0; DIM];
        v[0] = 1.0 + eps;
        v[1] = (i % 7) as f64 * 1e-9;
        b.push_unlabelled(&v).unwrap();
    }
    let coll = b.build();
    let q = vec![0.0; DIM];
    let w = WeightedEuclidean::new(vec![1.0; DIM]).unwrap();
    for k in [1usize, 10, 50] {
        let f64_res = LinearScan::with_mode(&coll, ScanMode::Batched).knn(&q, k, &w);
        let f32_res = LinearScan::with_mode(&coll, ScanMode::Batched)
            .with_precision(Precision::F32Rescore)
            .knn(&q, k, &w);
        assert_eq!(f32_res, f64_res, "k={k}: sub-f32 ties were reordered");
    }
}
