//! Lp norms: Manhattan, Euclidean, Chebyshev, general p ≥ 1.

use super::{kernels, sq_dist, Distance};
use crate::{Result, VecdbError};

/// Euclidean (`L2`) distance — the paper's default distance function.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euclidean;

impl Distance for Euclidean {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        sq_dist(a, b).sqrt()
    }

    fn name(&self) -> &str {
        "euclidean"
    }

    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        Some((1.0, 1.0))
    }

    /// Squared distance through the unrolled kernel (may differ from
    /// `eval(a, b)²` in the last ulp: different summation order).
    #[inline]
    fn eval_key(&self, a: &[f64], b: &[f64]) -> f64 {
        kernels::l2_sq_row(a, b)
    }

    #[inline]
    fn finish_key(&self, key: f64) -> f64 {
        key.sqrt()
    }

    #[inline]
    fn key_of_dist(&self, dist: f64) -> f64 {
        dist * dist
    }

    fn eval_batch(&self, query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
        kernels::l2_sq_block(query, block, dim, f64::INFINITY, out);
        for v in out.iter_mut() {
            *v = v.sqrt();
        }
    }

    fn eval_key_batch(
        &self,
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        kernels::l2_sq_block(query, block, dim, bound, out);
    }

    fn eval_key_multi(
        &self,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        kernels::l2_sq_multi_block(queries, block, dim, bounds, out);
    }

    fn f32_key_slack(&self, dim: usize, max_abs: f64) -> Option<f64> {
        super::weighted_f32_slack(dim, 1.0, max_abs)
    }

    fn eval_key_batch_f32(
        &self,
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        kernels::l2_sq_block_f32(query, block, dim, bound, out);
    }

    fn eval_key_multi_f32(
        &self,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        kernels::l2_sq_multi_block_f32(queries, block, dim, bounds, out);
    }
}

/// Manhattan (`L1`) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Manhattan;

impl Distance for Manhattan {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    fn name(&self) -> &str {
        "manhattan"
    }

    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        // d₂ ≤ d₁ ≤ √D·d₂, but D is unknown here; the lower factor 1 is
        // still usable for pruning.
        Some((1.0, f64::INFINITY))
    }
}

/// Chebyshev (`L∞`) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chebyshev;

impl Distance for Chebyshev {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
    }

    fn name(&self) -> &str {
        "chebyshev"
    }
}

/// General Minkowski `Lp` distance, `p ≥ 1`.
#[derive(Debug, Clone, Copy)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Construct; `p` must be ≥ 1 for the triangle inequality to hold.
    pub fn new(p: f64) -> Result<Self> {
        // `!(p >= 1.0)` deliberately catches NaN as well as p < 1.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(p >= 1.0) {
            return Err(VecdbError::BadParameters(format!(
                "Lp requires p >= 1, got {p}"
            )));
        }
        Ok(Lp { p })
    }

    /// The exponent.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distance for Lp {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.finish_key(self.eval_key(a, b))
    }

    fn name(&self) -> &str {
        "lp"
    }

    /// Surrogate key `Σ |aᵢ − bᵢ|^p`: monotone in the distance and skips
    /// the final `powf(1/p)` root.
    #[inline]
    fn eval_key(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum()
    }

    #[inline]
    fn finish_key(&self, key: f64) -> f64 {
        key.powf(1.0 / self.p)
    }

    #[inline]
    fn key_of_dist(&self, dist: f64) -> f64 {
        dist.powf(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::test_support::{check_metric_axioms, sample_points};

    #[test]
    fn euclidean_known() {
        let d = Euclidean;
        assert_eq!(d.eval(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(d.eval(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_known() {
        let d = Manhattan;
        assert_eq!(d.eval(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn chebyshev_known() {
        let d = Chebyshev;
        assert_eq!(d.eval(&[0.0, 0.0], &[3.0, -4.0]), 4.0);
    }

    #[test]
    fn lp_interpolates_between_norms() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        let l1 = Lp::new(1.0).unwrap();
        let l2 = Lp::new(2.0).unwrap();
        assert!((l1.eval(&a, &b) - 7.0).abs() < 1e-12);
        assert!((l2.eval(&a, &b) - 5.0).abs() < 1e-12);
        // p = 3 lies between L2 and L∞.
        let l3 = Lp::new(3.0).unwrap();
        let v = l3.eval(&a, &b);
        assert!(v < 5.0 && v > 4.0);
    }

    #[test]
    fn lp_rejects_bad_p() {
        assert!(Lp::new(0.5).is_err());
        assert!(Lp::new(f64::NAN).is_err());
    }

    #[test]
    fn metric_axioms_hold() {
        let pts = sample_points(4);
        check_metric_axioms(&Euclidean, &pts, 1e-9);
        check_metric_axioms(&Manhattan, &pts, 1e-9);
        check_metric_axioms(&Chebyshev, &pts, 1e-9);
        check_metric_axioms(&Lp::new(3.0).unwrap(), &pts, 1e-9);
    }
}
