//! Distance-function classes (paper §2).
//!
//! All retrieval in FeedbackBypass happens under a *parameterized class*
//! of distance functions; the feedback loop adjusts the parameters, and
//! the Simplex Tree stores them. The classes implemented here are the
//! ones the paper discusses:
//!
//! * [`Lp`] norms — `L1` Manhattan, `L2` Euclidean (the default distance
//!   in the paper's experiments), general `p`;
//! * [`WeightedEuclidean`] — Equation 1, the class learned in the paper's
//!   evaluation;
//! * [`QuadraticDistance`] — Mahalanobis-style forms
//!   `√((p−q)ᵀ·W·(p−q))` with SPD `W` (paper §2);
//! * [`HierarchicalDistance`] — the Rui-Huang model \[RH00\]: a weighted
//!   combination of per-feature quadratic distances.
//!
//! # Batch kernels and surrogate keys
//!
//! Every feedback iteration re-runs a k-NN query under a freshly
//! re-weighted metric, so the per-candidate cost of `d(q, x)` is the
//! latency floor of the whole interactive loop. Two observations cut it
//! down:
//!
//! 1. **Ranking never needs the true distance.** Each class here has a
//!    cheap *surrogate key* — a strictly increasing function of the
//!    distance (the squared form for the L2 family, the `p`-th power sum
//!    for general `Lp`) — and ranking by key is identical to ranking by
//!    distance. Engines therefore collect `(key, index)` candidates via
//!    [`Distance::eval_key`] and pay [`Distance::finish_key`] (the
//!    `sqrt`/`powf`) only for the final `k` winners.
//!
//! 2. **Candidates arrive in contiguous blocks.** A linear scan (and an
//!    index leaf) evaluates one query against many stored vectors that
//!    sit back-to-back in a row-major buffer. [`Distance::eval_key_batch`]
//!    evaluates a whole block per virtual call, replacing per-vector
//!    `dyn` dispatch with a tight, auto-vectorizable kernel. The batch
//!    call also takes the caller's current pruning `bound` (in key
//!    space): because every class accumulates a non-negative sum, a
//!    kernel may *early-abandon* a row once its partial sum exceeds the
//!    bound, writing `f64::INFINITY` instead of the exact key.
//!
//! The contract tying it together: for every implementation,
//! `finish_key(eval_key(a, b)) == eval(a, b)` (up to float rounding),
//! `eval_key` is strictly increasing in `eval`, and
//! [`Distance::key_of_dist`] maps a true-distance threshold into key
//! space (so `d(a, b) ≤ r ⇔ eval_key(a, b) ≤ key_of_dist(r)`).
//!
//! # f32 scanning with exact rescore
//!
//! Because the scans are memory-bandwidth-bound at low query counts,
//! classes may additionally expose **f32 kernels**
//! ([`Distance::eval_key_batch_f32`] / [`Distance::eval_key_multi_f32`])
//! that filter candidates against the collection's half-width f32
//! mirror, plus a **rounding bound** ([`Distance::f32_key_slack`]): an
//! additive key-space slack `Δ` with `|key32(a, b) − key64(a, b)| ≤ Δ`
//! for all vectors whose components are bounded by the given magnitude.
//! The two-phase `Precision::F32Rescore` scan inflates its pruning
//! threshold by `2Δ` during the f32 pass — enough to guarantee the
//! surviving candidate set contains the true f64 top-k (see
//! `knn::scan`) — then rescores the survivors with the exact f64
//! kernels, so returned results are identical to a pure f64 scan.

mod hierarchical;
pub(crate) mod kernels;
mod lp;
mod quadratic;
mod weighted;

pub use hierarchical::{FeatureSpan, HierarchicalDistance};
pub use lp::{Chebyshev, Euclidean, Lp, Manhattan};
pub use quadratic::QuadraticDistance;
pub use weighted::WeightedEuclidean;

/// A distance function over equal-length `f64` vectors.
///
/// Implementations must be symmetric and satisfy `d(x, x) = 0`; the
/// metric ones (all of the above with positive parameters) also satisfy
/// the triangle inequality, which the metric-tree engines rely on.
pub trait Distance: Send + Sync {
    /// Evaluate `d(a, b)`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Distortion bounds relative to the *unweighted Euclidean* metric:
    /// factors `(lo, hi)` with `lo·d₂(a,b) ≤ d(a,b) ≤ hi·d₂(a,b)` for all
    /// `a, b`, when such global factors exist.
    ///
    /// Metric trees built under plain Euclidean use `lo` to prune exactly
    /// for re-weighted queries: any candidate with
    /// `lo · d₂(q, x) > r` certainly has `d(q, x) > r`.
    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        None
    }

    /// Rank-preserving surrogate key for `d(a, b)`: a strictly increasing
    /// function of the distance that is cheaper to compute (the squared
    /// distance for the L2 family). Defaults to the distance itself.
    #[inline]
    fn eval_key(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval(a, b)
    }

    /// Recover the true distance from a surrogate key
    /// (`finish_key(eval_key(a, b)) == eval(a, b)`). Must be increasing
    /// and map `+∞` to `+∞`.
    #[inline]
    fn finish_key(&self, key: f64) -> f64 {
        key
    }

    /// Map a true-distance threshold into key space: the inverse of
    /// [`Self::finish_key`], so `d ≤ r ⇔ eval_key ≤ key_of_dist(r)`.
    #[inline]
    fn key_of_dist(&self, dist: f64) -> f64 {
        dist
    }

    /// Evaluate one query against a contiguous row-major `block` of
    /// `block.len() / dim` vectors, writing the true distance of each row
    /// to `out`. The default loops [`Self::eval`]; specialized kernels
    /// avoid per-row virtual dispatch.
    fn eval_batch(&self, query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
        debug_assert_eq!(query.len(), dim);
        debug_assert_eq!(block.len(), dim * out.len());
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = self.eval(query, row);
        }
    }

    /// Batch version of [`Self::eval_key`]: write each row's surrogate
    /// key to `out`. `bound` is the caller's current pruning threshold in
    /// key space (`f64::INFINITY` when there is none): a kernel may
    /// *early-abandon* any row whose partial accumulation already exceeds
    /// `bound` and write `f64::INFINITY` for it — callers must therefore
    /// only use `out[i] ≤ bound` rows. Exact keys are written for all
    /// rows when `bound == f64::INFINITY`.
    fn eval_key_batch(
        &self,
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        let _ = bound;
        debug_assert_eq!(query.len(), dim);
        debug_assert_eq!(block.len(), dim * out.len());
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = self.eval_key(query, row);
        }
    }

    /// Multi-query version of [`Self::eval_key_batch`]: evaluate `Q`
    /// queries (`queries` is `Q × dim` row-major) against one block in a
    /// single pass, writing surrogate keys to `out` (`Q × rows` row-major
    /// per query, so query `q`'s key for block row `r` lands at
    /// `out[q·rows + r]`). `bounds` carries one key-space pruning
    /// threshold per query with the same early-abandon contract as the
    /// single-query batch call, applied per query.
    ///
    /// This is the memory-amortization hook for concurrent feedback
    /// sessions: a specialized kernel loads each block row once and
    /// scores it against every query while it is hot, dropping collection
    /// bytes per query by ~Q×. Keys must be bit-identical to `Q`
    /// independent [`Self::eval_key_batch`] calls for rows that survive
    /// their query's bound (the default implementation delegates to
    /// exactly those calls).
    fn eval_key_multi(
        &self,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        debug_assert!(dim > 0);
        debug_assert_eq!(queries.len(), bounds.len() * dim);
        debug_assert_eq!(out.len() * dim, bounds.len() * block.len());
        let rows = block.len() / dim;
        for ((query, &bound), out_row) in queries
            .chunks_exact(dim)
            .zip(bounds.iter())
            .zip(out.chunks_exact_mut(rows.max(1)))
        {
            self.eval_key_batch(query, block, dim, bound, &mut out_row[..rows]);
        }
    }

    /// f32 scanning support: an additive key-space rounding bound.
    ///
    /// `Some(Δ)` certifies that for **any** pair of vectors `a, b` of
    /// length `dim` whose components all satisfy `|·| ≤ max_abs`, the
    /// f32 key this class's [`Self::eval_key_batch_f32`] computes (from
    /// the f32-rounded inputs) differs from the exact f64 key by at most
    /// `Δ`:
    ///
    /// ```text
    /// |eval_key_batch_f32(a32, b32) − eval_key_batch(a, b)| ≤ Δ
    /// ```
    ///
    /// The f32-rescore scan path relies on this bound for exactness — an
    /// understated `Δ` silently drops true neighbors — so implementations
    /// must derive it from worst-case rounding analysis of their actual
    /// f32 kernel (the suite property-tests the inequality), and must
    /// return `None` whenever no finite `Δ` is sound — in particular
    /// when the worst-case key could overflow f32 to `+∞` (the internal
    /// `F32_KEY_OVERFLOW_GUARD` threshold), since a saturated `key32`
    /// breaks the inequality by an unbounded amount. `None` — also the default, declaring "no f32
    /// kernel" — makes scans fall back to the always-correct f64 path.
    fn f32_key_slack(&self, dim: usize, max_abs: f64) -> Option<f64> {
        let _ = (dim, max_abs);
        None
    }

    /// f32 variant of [`Self::eval_key_batch`]: surrogate keys for one
    /// query against a row-major **f32** block (the collection's mirror),
    /// with the same early-abandon contract in f32 key space. Only called
    /// by the scan engines when [`Self::f32_key_slack`] returns a finite
    /// bound; the default is a reference loop that evaluates each row
    /// through the f64 key path on widened inputs (correct, but paying
    /// f64 compute — real implementations use the f32 kernels).
    fn eval_key_batch_f32(
        &self,
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        let _ = bound;
        debug_assert_eq!(query.len(), dim);
        debug_assert_eq!(block.len(), dim * out.len());
        let q64: Vec<f64> = query.iter().map(|&v| v as f64).collect();
        let mut r64 = vec![0.0f64; dim];
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            for (d, &s) in r64.iter_mut().zip(row.iter()) {
                *d = s as f64;
            }
            *slot = self.eval_key(&q64, &r64) as f32;
        }
    }

    /// f32 variant of [`Self::eval_key_multi`]: `Q` queries against one
    /// f32 mirror block in a single pass (same layouts, f32 key space).
    /// The default delegates to per-query [`Self::eval_key_batch_f32`]
    /// calls; specialized kernels keep the row-outer loop so each mirror
    /// row is read once for all queries.
    fn eval_key_multi_f32(
        &self,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        debug_assert!(dim > 0);
        debug_assert_eq!(queries.len(), bounds.len() * dim);
        debug_assert_eq!(out.len() * dim, bounds.len() * block.len());
        let rows = block.len() / dim;
        for ((query, &bound), out_row) in queries
            .chunks_exact(dim)
            .zip(bounds.iter())
            .zip(out.chunks_exact_mut(rows.max(1)))
        {
            self.eval_key_batch_f32(query, block, dim, bound, &mut out_row[..rows]);
        }
    }

    /// Partition-pruning support: a sound **key-space lower bound** on
    /// `eval_key(query, x)` over *every* vector `x` within Euclidean
    /// distance `radius_l2` of `centroid` — or `None` when this class
    /// cannot certify one.
    ///
    /// The partitioned scan prunes a whole partition when this bound
    /// exceeds the running k-th key, so soundness is load-bearing: an
    /// overstated bound silently drops true neighbors. The default
    /// derivation uses the distortion route only — with
    /// `lo·d₂(a,b) ≤ d(a,b)` ([`Self::euclidean_distortion`]) and the
    /// Euclidean triangle inequality `d₂(q,x) ≥ d₂(q,c) − r`:
    ///
    /// ```text
    /// d(q, x) ≥ lo·d₂(q, x) ≥ lo·(d₂(q, c) − radius_l2)
    /// ```
    ///
    /// mapped into key space via [`Self::key_of_dist`] after the
    /// magnitude-scaled rounding deflation of `partition_safe_lower`
    /// (never negative, so the mapped key is always valid). Classes whose
    /// own distance satisfies the triangle inequality override this with
    /// the tighter two-path bound (`metric_partition_lower`); classes
    /// with no positive `lo` (Chebyshev, generic `Lp`, quadratic forms
    /// whose certified spectrum touches zero) return `None` and the scan
    /// must fall back to the flat pass for them — per class and explicit,
    /// never assumed.
    fn partition_lower_key(&self, query: &[f64], centroid: &[f64], radius_l2: f64) -> Option<f64> {
        let (lo, _) = self.euclidean_distortion()?;
        if !lo.is_finite() || lo <= 0.0 {
            return None;
        }
        let d2 = sq_dist(query, centroid).sqrt();
        let lb = partition_safe_lower(lo * (d2 - radius_l2), lo * (d2 + radius_l2));
        Some(self.key_of_dist(lb))
    }
}

/// Deflate a computed partition lower bound `raw` against floating-point
/// rounding: subtract a margin proportional to `scale` — the magnitude
/// of the terms that produced `raw`, so catastrophic cancellation in
/// `d(q,c) − r` is covered where a *relative* deflation of `raw` would
/// not be — and clamp at 0 (a distance lower bound is never negative).
/// The kernel evaluations this guards against carry relative error
/// around `dim·2⁻⁵³ ≈ 1e-14`; the `1e-9` margin leaves five orders of
/// magnitude of headroom while costing only partitions whose true
/// separation is within one part in 10⁹ of the threshold.
#[inline]
pub(crate) fn partition_safe_lower(raw: f64, scale: f64) -> f64 {
    (raw - 1e-9 * scale.abs()).max(0.0)
}

/// Two-path partition lower bound (in **distance** space) for classes
/// whose distance is itself a metric, each path deflated by
/// [`partition_safe_lower`]:
///
/// * distortion path — `lo·(d₂(q,c) − r)`, sound whenever
///   `lo·d₂ ≤ d` (never needs `d`'s own triangle inequality);
/// * metric path — `d(q,c) − hi·r`, sound because `d` obeys the
///   triangle inequality and every member satisfies `d(c,x) ≤ hi·r`
///   (from `d ≤ hi·d₂` and `d₂(c,x) ≤ r`). Skipped when `hi` is not
///   finite (e.g. Manhattan's unknown-dimension upper factor).
///
/// The max of two sound lower bounds is sound; the metric path usually
/// wins when the weights are anisotropic and the query sits far from
/// the centroid along a heavy axis.
#[inline]
pub(crate) fn metric_partition_lower(dqc: f64, lo: f64, hi: f64, d2qc: f64, radius_l2: f64) -> f64 {
    let a = partition_safe_lower(lo * (d2qc - radius_l2), lo * (d2qc + radius_l2));
    let b = if hi.is_finite() {
        partition_safe_lower(dqc - hi * radius_l2, dqc + hi * radius_l2)
    } else {
        0.0
    };
    a.max(b)
}

/// Half-ulp relative rounding bound of f32 round-to-nearest.
pub(crate) const F32_UNIT_ROUNDOFF: f64 = 1.0 / (1u64 << 24) as f64;

/// Largest worst-case f32 key magnitude for which f32 scanning is
/// offered at all. The rounding analyses below are only valid while the
/// f32 computation stays *finite*: a key that overflows to `+∞` while
/// its f64 counterpart stays finite violates `|key32 − key64| ≤ Δ` by an
/// unbounded amount, and the candidate filter would silently drop that
/// row. Any class whose worst-case key (intermediates included) could
/// cross this line must return `None` from
/// [`Distance::f32_key_slack`] — the scan then runs the pure-f64 path,
/// which is always correct. The 16× headroom under `f32::MAX` generously
/// absorbs accumulation-order overshoot.
pub(crate) const F32_KEY_OVERFLOW_GUARD: f64 = f32::MAX as f64 / 16.0;

/// Worst-case `|key32 − key64|` for the diagonal weighted-squared family
/// (`Σ wᵢ·(aᵢ−bᵢ)²`, covering Euclidean via `w ≡ 1` and hierarchical via
/// the flattened effective weights), at dimensionality `dim` with
/// component magnitudes ≤ `max_abs` and weights ≤ `w_max` — or `None`
/// when the worst-case key could overflow f32
/// ([`F32_KEY_OVERFLOW_GUARD`]), where no finite slack is sound.
///
/// Error budget (u = 2⁻²⁴, M = `max_abs`, per-component difference
/// `d = a − b` with `|d| ≤ 2M`):
/// input conversion + subtraction give `|d32 − d| ≤ 4.1uM`; squaring and
/// the weight product add ≤ `29·u·w·M²` per term; f32 accumulation of
/// `dim` terms adds ≤ `dim·u` times the term-magnitude sum
/// (≤ `dim·4.01·w_max·M²`), for any summation order. The total is
/// doubled as a safety margin (it also absorbs the f64 reference key's
/// own, far smaller, rounding error).
pub(crate) fn weighted_f32_slack(dim: usize, w_max: f64, max_abs: f64) -> Option<f64> {
    let n = dim as f64;
    let m2 = max_abs * max_abs;
    // Worst-case key ≤ Σ|tᵢ| ≤ n·w_max·(2.01·M)²; also covers every
    // partial sum (non-negative terms).
    let worst_key = n * w_max * 4.05 * m2;
    // `!(x <= guard)` deliberately catches NaN as well as overflow.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(worst_key <= F32_KEY_OVERFLOW_GUARD) {
        return None;
    }
    let u = F32_UNIT_ROUNDOFF;
    Some(2.0 * u * w_max * m2 * n * (29.0 + 4.1 * n))
}

#[cfg(test)]
mod slack_tests {
    use super::*;

    #[test]
    fn weighted_slack_is_positive_and_scales() {
        let s = weighted_f32_slack(64, 3.0, 1.0).unwrap();
        assert!(s > 0.0 && s.is_finite());
        // More components, bigger weights, bigger values ⇒ looser bound.
        assert!(weighted_f32_slack(128, 3.0, 1.0).unwrap() > s);
        assert!(weighted_f32_slack(64, 6.0, 1.0).unwrap() > s);
        assert!(weighted_f32_slack(64, 3.0, 2.0).unwrap() > s);
        // Degenerate all-zero data ⇒ zero slack (keys are exactly 0).
        assert_eq!(weighted_f32_slack(64, 3.0, 0.0), Some(0.0));
    }

    #[test]
    fn slack_refused_when_f32_keys_could_overflow() {
        // Component magnitudes ~1e18 drive 64-d weighted keys toward
        // f32::MAX, where |key32 − key64| ≤ Δ no longer holds (key32
        // saturates to +∞). No finite slack is sound there.
        assert_eq!(weighted_f32_slack(64, 1.0, 1e18), None);
        assert_eq!(weighted_f32_slack(64, 1e6, 1e16), None);
        // Ordinary magnitudes stay eligible.
        assert!(weighted_f32_slack(64, 10.0, 1e3).is_some());
    }
}

/// Squared Euclidean distance helper shared by implementations: the
/// *reference* sequential accumulation. `Distance::eval` deliberately
/// stays on this simple form — it is the measurable scalar baseline the
/// batched kernels are benchmarked against — while the engines' key
/// paths use the unrolled kernels in [`kernels`]. The two may differ in
/// the last ulp (different summation order); the consistency suite pins
/// them to 1e-12.
#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod batch_contract_tests {
    use super::test_support::sample_points;
    use super::{
        Distance, Euclidean, FeatureSpan, HierarchicalDistance, Lp, Manhattan, WeightedEuclidean,
    };

    /// Every implementation must satisfy the batch/surrogate-key
    /// contract: `eval_batch` rows match per-pair `eval` (to rounding),
    /// `finish_key ∘ eval_key == eval`, `key_of_dist` inverts
    /// `finish_key`, and `eval_key_multi` is bit-identical to independent
    /// `eval_key_batch` calls per query.
    fn check_batch_contract(d: &dyn Distance, dim: usize) {
        let pts = sample_points(dim);
        let query = &pts[0];
        let block: Vec<f64> = pts[1..].iter().flat_map(|p| p.iter().copied()).collect();
        let rows = pts.len() - 1;
        let mut dists = vec![0.0; rows];
        d.eval_batch(query, &block, dim, &mut dists);
        let mut keys = vec![0.0; rows];
        d.eval_key_batch(query, &block, dim, f64::INFINITY, &mut keys);
        // Multi-query pass over the same block: every query's key row must
        // be bit-identical to its own single-query batch call.
        let nq = 3.min(pts.len());
        let queries: Vec<f64> = pts[..nq].iter().flat_map(|p| p.iter().copied()).collect();
        let mut multi = vec![0.0; nq * rows];
        d.eval_key_multi(&queries, &block, dim, &vec![f64::INFINITY; nq], &mut multi);
        let mut single = vec![0.0; rows];
        for (q, qv) in pts[..nq].iter().enumerate() {
            d.eval_key_batch(qv, &block, dim, f64::INFINITY, &mut single);
            assert_eq!(
                &multi[q * rows..(q + 1) * rows],
                &single[..],
                "{}: eval_key_multi row {q} disagrees with eval_key_batch",
                d.name()
            );
        }
        for (i, p) in pts[1..].iter().enumerate() {
            let direct = d.eval(query, p);
            assert!(
                (dists[i] - direct).abs() <= 1e-12 * direct.max(1.0),
                "{}: eval_batch row {i}: {} vs eval {direct}",
                d.name(),
                dists[i]
            );
            let via_key = d.finish_key(d.eval_key(query, p));
            assert!(
                (via_key - direct).abs() <= 1e-12 * direct.max(1.0),
                "{}: finish_key∘eval_key {via_key} vs eval {direct}",
                d.name()
            );
            assert_eq!(
                d.finish_key(keys[i]),
                dists[i],
                "{}: key batch row {i} disagrees with eval_batch",
                d.name()
            );
            // key_of_dist inverts finish_key (to rounding).
            let rt = d.finish_key(d.key_of_dist(direct));
            assert!(
                (rt - direct).abs() <= 1e-12 * direct.max(1.0),
                "{}: key_of_dist round-trip {rt} vs {direct}",
                d.name()
            );
        }
    }

    #[test]
    fn all_classes_satisfy_batch_contract() {
        const DIM: usize = 7;
        check_batch_contract(&Euclidean, DIM);
        check_batch_contract(&Manhattan, DIM); // default impls
        check_batch_contract(&Lp::new(3.0).unwrap(), DIM);
        let w: Vec<f64> = (0..DIM).map(|i| 0.5 + i as f64).collect();
        check_batch_contract(&WeightedEuclidean::new(w.clone()).unwrap(), DIM);
        let h = HierarchicalDistance::new(
            vec![FeatureSpan::new(0, 3), FeatureSpan::new(3, DIM)],
            vec![2.0, 0.5],
            w,
        )
        .unwrap();
        check_batch_contract(&h, DIM);
        let m = fbp_linalg::Matrix::from_diag(&[1.0, 2.0, 0.5, 3.0, 1.5, 0.75, 2.5]);
        check_batch_contract(&super::QuadraticDistance::new(&m).unwrap(), DIM);
    }
}

#[cfg(test)]
mod partition_bound_tests {
    use super::test_support::sample_points;
    use super::{
        Chebyshev, Distance, Euclidean, FeatureSpan, HierarchicalDistance, Lp, Manhattan,
        QuadraticDistance, WeightedEuclidean,
    };

    /// Soundness per class: with any sample point as centroid and the
    /// max member Euclidean distance as radius, the reported key-space
    /// lower bound never exceeds any member's true key.
    fn check_partition_bound_sound(d: &dyn Distance, dim: usize, expect_bound: bool) {
        let pts = sample_points(dim);
        for centroid in &pts {
            let radius = pts
                .iter()
                .map(|p| super::sq_dist(centroid, p).sqrt())
                .fold(0.0, f64::max);
            for query in &pts {
                match d.partition_lower_key(query, centroid, radius) {
                    None => assert!(!expect_bound, "{}: expected a sound bound", d.name()),
                    Some(lb) => {
                        assert!(expect_bound, "{}: expected None (flat fallback)", d.name());
                        assert!(lb >= 0.0 && lb.is_finite(), "{}: bad bound {lb}", d.name());
                        for member in &pts {
                            let key = d.eval_key(query, member);
                            assert!(
                                lb <= key,
                                "{}: partition lower bound {lb} exceeds member key {key}",
                                d.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partition_bounds_sound_or_explicitly_absent_per_class() {
        const DIM: usize = 7;
        check_partition_bound_sound(&Euclidean, DIM, true);
        check_partition_bound_sound(&Manhattan, DIM, true);
        // No positive Euclidean distortion floor ⇒ explicit flat fallback.
        check_partition_bound_sound(&Chebyshev, DIM, false);
        check_partition_bound_sound(&Lp::new(3.0).unwrap(), DIM, false);
        let w: Vec<f64> = (0..DIM).map(|i| 0.5 + i as f64).collect();
        check_partition_bound_sound(&WeightedEuclidean::new(w.clone()).unwrap(), DIM, true);
        let h = HierarchicalDistance::new(
            vec![FeatureSpan::new(0, 3), FeatureSpan::new(3, DIM)],
            vec![2.0, 0.5],
            w,
        )
        .unwrap();
        check_partition_bound_sound(&h, DIM, true);
        let m = fbp_linalg::Matrix::from_diag(&[1.0, 2.0, 0.5, 3.0, 1.5, 0.75, 2.5]);
        check_partition_bound_sound(&QuadraticDistance::new(&m).unwrap(), DIM, true);
    }

    #[test]
    fn quadratic_without_positive_spectrum_reports_no_bound() {
        // PD matrix ([[2,2],[2,3]]: det 2, λ_min ≈ 0.44) whose
        // Gershgorin row estimate still touches zero (row 0: 2 − |2|),
        // so the *certified* floor is 0 ⇒ no sound bound, flat
        // fallback — explicitly, never assumed.
        let m = fbp_linalg::Matrix::from_rows(&[&[2.0, 2.0], &[2.0, 3.0]]);
        let q = QuadraticDistance::new(&m).unwrap();
        assert!(q.euclidean_distortion().is_none());
        assert!(q
            .partition_lower_key(&[1.0, -1.0], &[0.0, 0.0], 0.5)
            .is_none());
    }

    #[test]
    fn zero_radius_bound_is_tight_to_margin() {
        // radius 0 ⇒ the partition is a single point; the bound must
        // sit within the documented 1e-9-scaled margin of the true key.
        let q = vec![1.0, 2.0, 3.0];
        let c = vec![-0.5, 0.25, 1.0];
        let lb = Euclidean.partition_lower_key(&q, &c, 0.0).unwrap();
        let key = Euclidean.eval_key(&q, &c);
        assert!(lb <= key);
        let dist = key.sqrt();
        let deflated = dist - 1e-9 * dist;
        assert!(lb >= Euclidean.key_of_dist(deflated) * (1.0 - 1e-12));
    }

    #[test]
    fn metric_path_beats_distortion_path_on_anisotropic_weights() {
        // Heavy axis 0, light axis 1: a query displaced along axis 0
        // gets a much tighter bound from the triangle route than from
        // lo·(d₂ − r).
        let w = WeightedEuclidean::new(vec![100.0, 0.01]).unwrap();
        let query = [10.0, 0.0];
        let centroid = [0.0, 0.0];
        let radius = 1.0;
        let lb = w.partition_lower_key(&query, &centroid, radius).unwrap();
        // Distortion route alone: lo = √0.01 = 0.1 ⇒ d ≥ 0.1·(10−1) = 0.9.
        // Triangle route: d(q,c) = 100, hi = 10 ⇒ d ≥ 100 − 10 = 90.
        let weak = w.key_of_dist(0.9);
        let strong = w.key_of_dist(89.0);
        assert!(lb > weak, "bound {lb} did not use the metric path");
        assert!(lb > strong);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::Distance;

    /// Generic metric-axiom probe used by the per-class test modules.
    pub fn check_metric_axioms<D: Distance>(d: &D, pts: &[Vec<f64>], tol: f64) {
        for a in pts {
            assert!(
                d.eval(a, a).abs() <= tol,
                "{}: d(x,x) = {}",
                d.name(),
                d.eval(a, a)
            );
            for b in pts {
                let ab = d.eval(a, b);
                let ba = d.eval(b, a);
                assert!((ab - ba).abs() <= tol, "{}: asymmetric", d.name());
                assert!(ab >= 0.0, "{}: negative distance", d.name());
                for c in pts {
                    let ac = d.eval(a, c);
                    let cb = d.eval(c, b);
                    assert!(
                        ab <= ac + cb + tol,
                        "{}: triangle violated: d(a,b)={ab} > d(a,c)+d(c,b)={}",
                        d.name(),
                        ac + cb
                    );
                }
            }
        }
    }

    pub fn sample_points(dim: usize) -> Vec<Vec<f64>> {
        // Deterministic scattered points exercising negatives and zeros.
        let mut pts = Vec::new();
        for s in 0..6 {
            let v: Vec<f64> = (0..dim)
                .map(|i| ((s * 7 + i * 3) % 11) as f64 * 0.25 - 1.0)
                .collect();
            pts.push(v);
        }
        pts.push(vec![0.0; dim]);
        pts
    }
}
