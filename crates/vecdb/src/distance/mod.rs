//! Distance-function classes (paper §2).
//!
//! All retrieval in FeedbackBypass happens under a *parameterized class*
//! of distance functions; the feedback loop adjusts the parameters, and
//! the Simplex Tree stores them. The classes implemented here are the
//! ones the paper discusses:
//!
//! * [`Lp`] norms — `L1` Manhattan, `L2` Euclidean (the default distance
//!   in the paper's experiments), general `p`;
//! * [`WeightedEuclidean`] — Equation 1, the class learned in the paper's
//!   evaluation;
//! * [`QuadraticDistance`] — Mahalanobis-style forms
//!   `√((p−q)ᵀ·W·(p−q))` with SPD `W` (paper §2);
//! * [`HierarchicalDistance`] — the Rui-Huang model \[RH00\]: a weighted
//!   combination of per-feature quadratic distances.

mod hierarchical;
mod lp;
mod quadratic;
mod weighted;

pub use hierarchical::{FeatureSpan, HierarchicalDistance};
pub use lp::{Chebyshev, Euclidean, Lp, Manhattan};
pub use quadratic::QuadraticDistance;
pub use weighted::WeightedEuclidean;

/// A distance function over equal-length `f64` vectors.
///
/// Implementations must be symmetric and satisfy `d(x, x) = 0`; the
/// metric ones (all of the above with positive parameters) also satisfy
/// the triangle inequality, which the metric-tree engines rely on.
pub trait Distance: Send + Sync {
    /// Evaluate `d(a, b)`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Distortion bounds relative to the *unweighted Euclidean* metric:
    /// factors `(lo, hi)` with `lo·d₂(a,b) ≤ d(a,b) ≤ hi·d₂(a,b)` for all
    /// `a, b`, when such global factors exist.
    ///
    /// Metric trees built under plain Euclidean use `lo` to prune exactly
    /// for re-weighted queries: any candidate with
    /// `lo · d₂(q, x) > r` certainly has `d(q, x) > r`.
    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        None
    }
}

/// Squared Euclidean distance helper shared by implementations.
#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::Distance;

    /// Generic metric-axiom probe used by the per-class test modules.
    pub fn check_metric_axioms<D: Distance>(d: &D, pts: &[Vec<f64>], tol: f64) {
        for a in pts {
            assert!(
                d.eval(a, a).abs() <= tol,
                "{}: d(x,x) = {}",
                d.name(),
                d.eval(a, a)
            );
            for b in pts {
                let ab = d.eval(a, b);
                let ba = d.eval(b, a);
                assert!((ab - ba).abs() <= tol, "{}: asymmetric", d.name());
                assert!(ab >= 0.0, "{}: negative distance", d.name());
                for c in pts {
                    let ac = d.eval(a, c);
                    let cb = d.eval(c, b);
                    assert!(
                        ab <= ac + cb + tol,
                        "{}: triangle violated: d(a,b)={ab} > d(a,c)+d(c,b)={}",
                        d.name(),
                        ac + cb
                    );
                }
            }
        }
    }

    pub fn sample_points(dim: usize) -> Vec<Vec<f64>> {
        // Deterministic scattered points exercising negatives and zeros.
        let mut pts = Vec::new();
        for s in 0..6 {
            let v: Vec<f64> = (0..dim)
                .map(|i| ((s * 7 + i * 3) % 11) as f64 * 0.25 - 1.0)
                .collect();
            pts.push(v);
        }
        pts.push(vec![0.0; dim]);
        pts
    }
}
