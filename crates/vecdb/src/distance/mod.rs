//! Distance-function classes (paper §2).
//!
//! All retrieval in FeedbackBypass happens under a *parameterized class*
//! of distance functions; the feedback loop adjusts the parameters, and
//! the Simplex Tree stores them. The classes implemented here are the
//! ones the paper discusses:
//!
//! * [`Lp`] norms — `L1` Manhattan, `L2` Euclidean (the default distance
//!   in the paper's experiments), general `p`;
//! * [`WeightedEuclidean`] — Equation 1, the class learned in the paper's
//!   evaluation;
//! * [`QuadraticDistance`] — Mahalanobis-style forms
//!   `√((p−q)ᵀ·W·(p−q))` with SPD `W` (paper §2);
//! * [`HierarchicalDistance`] — the Rui-Huang model \[RH00\]: a weighted
//!   combination of per-feature quadratic distances.
//!
//! # Batch kernels and surrogate keys
//!
//! Every feedback iteration re-runs a k-NN query under a freshly
//! re-weighted metric, so the per-candidate cost of `d(q, x)` is the
//! latency floor of the whole interactive loop. Two observations cut it
//! down:
//!
//! 1. **Ranking never needs the true distance.** Each class here has a
//!    cheap *surrogate key* — a strictly increasing function of the
//!    distance (the squared form for the L2 family, the `p`-th power sum
//!    for general `Lp`) — and ranking by key is identical to ranking by
//!    distance. Engines therefore collect `(key, index)` candidates via
//!    [`Distance::eval_key`] and pay [`Distance::finish_key`] (the
//!    `sqrt`/`powf`) only for the final `k` winners.
//!
//! 2. **Candidates arrive in contiguous blocks.** A linear scan (and an
//!    index leaf) evaluates one query against many stored vectors that
//!    sit back-to-back in a row-major buffer. [`Distance::eval_key_batch`]
//!    evaluates a whole block per virtual call, replacing per-vector
//!    `dyn` dispatch with a tight, auto-vectorizable kernel. The batch
//!    call also takes the caller's current pruning `bound` (in key
//!    space): because every class accumulates a non-negative sum, a
//!    kernel may *early-abandon* a row once its partial sum exceeds the
//!    bound, writing `f64::INFINITY` instead of the exact key.
//!
//! The contract tying it together: for every implementation,
//! `finish_key(eval_key(a, b)) == eval(a, b)` (up to float rounding),
//! `eval_key` is strictly increasing in `eval`, and
//! [`Distance::key_of_dist`] maps a true-distance threshold into key
//! space (so `d(a, b) ≤ r ⇔ eval_key(a, b) ≤ key_of_dist(r)`).

mod hierarchical;
pub(crate) mod kernels;
mod lp;
mod quadratic;
mod weighted;

pub use hierarchical::{FeatureSpan, HierarchicalDistance};
pub use lp::{Chebyshev, Euclidean, Lp, Manhattan};
pub use quadratic::QuadraticDistance;
pub use weighted::WeightedEuclidean;

/// A distance function over equal-length `f64` vectors.
///
/// Implementations must be symmetric and satisfy `d(x, x) = 0`; the
/// metric ones (all of the above with positive parameters) also satisfy
/// the triangle inequality, which the metric-tree engines rely on.
pub trait Distance: Send + Sync {
    /// Evaluate `d(a, b)`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Distortion bounds relative to the *unweighted Euclidean* metric:
    /// factors `(lo, hi)` with `lo·d₂(a,b) ≤ d(a,b) ≤ hi·d₂(a,b)` for all
    /// `a, b`, when such global factors exist.
    ///
    /// Metric trees built under plain Euclidean use `lo` to prune exactly
    /// for re-weighted queries: any candidate with
    /// `lo · d₂(q, x) > r` certainly has `d(q, x) > r`.
    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        None
    }

    /// Rank-preserving surrogate key for `d(a, b)`: a strictly increasing
    /// function of the distance that is cheaper to compute (the squared
    /// distance for the L2 family). Defaults to the distance itself.
    #[inline]
    fn eval_key(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval(a, b)
    }

    /// Recover the true distance from a surrogate key
    /// (`finish_key(eval_key(a, b)) == eval(a, b)`). Must be increasing
    /// and map `+∞` to `+∞`.
    #[inline]
    fn finish_key(&self, key: f64) -> f64 {
        key
    }

    /// Map a true-distance threshold into key space: the inverse of
    /// [`Self::finish_key`], so `d ≤ r ⇔ eval_key ≤ key_of_dist(r)`.
    #[inline]
    fn key_of_dist(&self, dist: f64) -> f64 {
        dist
    }

    /// Evaluate one query against a contiguous row-major `block` of
    /// `block.len() / dim` vectors, writing the true distance of each row
    /// to `out`. The default loops [`Self::eval`]; specialized kernels
    /// avoid per-row virtual dispatch.
    fn eval_batch(&self, query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
        debug_assert_eq!(query.len(), dim);
        debug_assert_eq!(block.len(), dim * out.len());
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = self.eval(query, row);
        }
    }

    /// Batch version of [`Self::eval_key`]: write each row's surrogate
    /// key to `out`. `bound` is the caller's current pruning threshold in
    /// key space (`f64::INFINITY` when there is none): a kernel may
    /// *early-abandon* any row whose partial accumulation already exceeds
    /// `bound` and write `f64::INFINITY` for it — callers must therefore
    /// only use `out[i] ≤ bound` rows. Exact keys are written for all
    /// rows when `bound == f64::INFINITY`.
    fn eval_key_batch(
        &self,
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        let _ = bound;
        debug_assert_eq!(query.len(), dim);
        debug_assert_eq!(block.len(), dim * out.len());
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = self.eval_key(query, row);
        }
    }

    /// Multi-query version of [`Self::eval_key_batch`]: evaluate `Q`
    /// queries (`queries` is `Q × dim` row-major) against one block in a
    /// single pass, writing surrogate keys to `out` (`Q × rows` row-major
    /// per query, so query `q`'s key for block row `r` lands at
    /// `out[q·rows + r]`). `bounds` carries one key-space pruning
    /// threshold per query with the same early-abandon contract as the
    /// single-query batch call, applied per query.
    ///
    /// This is the memory-amortization hook for concurrent feedback
    /// sessions: a specialized kernel loads each block row once and
    /// scores it against every query while it is hot, dropping collection
    /// bytes per query by ~Q×. Keys must be bit-identical to `Q`
    /// independent [`Self::eval_key_batch`] calls for rows that survive
    /// their query's bound (the default implementation delegates to
    /// exactly those calls).
    fn eval_key_multi(
        &self,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        debug_assert!(dim > 0);
        debug_assert_eq!(queries.len(), bounds.len() * dim);
        debug_assert_eq!(out.len() * dim, bounds.len() * block.len());
        let rows = block.len() / dim;
        for ((query, &bound), out_row) in queries
            .chunks_exact(dim)
            .zip(bounds.iter())
            .zip(out.chunks_exact_mut(rows.max(1)))
        {
            self.eval_key_batch(query, block, dim, bound, &mut out_row[..rows]);
        }
    }
}

/// Squared Euclidean distance helper shared by implementations: the
/// *reference* sequential accumulation. `Distance::eval` deliberately
/// stays on this simple form — it is the measurable scalar baseline the
/// batched kernels are benchmarked against — while the engines' key
/// paths use the unrolled kernels in [`kernels`]. The two may differ in
/// the last ulp (different summation order); the consistency suite pins
/// them to 1e-12.
#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod batch_contract_tests {
    use super::test_support::sample_points;
    use super::{
        Distance, Euclidean, FeatureSpan, HierarchicalDistance, Lp, Manhattan, WeightedEuclidean,
    };

    /// Every implementation must satisfy the batch/surrogate-key
    /// contract: `eval_batch` rows match per-pair `eval` (to rounding),
    /// `finish_key ∘ eval_key == eval`, `key_of_dist` inverts
    /// `finish_key`, and `eval_key_multi` is bit-identical to independent
    /// `eval_key_batch` calls per query.
    fn check_batch_contract(d: &dyn Distance, dim: usize) {
        let pts = sample_points(dim);
        let query = &pts[0];
        let block: Vec<f64> = pts[1..].iter().flat_map(|p| p.iter().copied()).collect();
        let rows = pts.len() - 1;
        let mut dists = vec![0.0; rows];
        d.eval_batch(query, &block, dim, &mut dists);
        let mut keys = vec![0.0; rows];
        d.eval_key_batch(query, &block, dim, f64::INFINITY, &mut keys);
        // Multi-query pass over the same block: every query's key row must
        // be bit-identical to its own single-query batch call.
        let nq = 3.min(pts.len());
        let queries: Vec<f64> = pts[..nq].iter().flat_map(|p| p.iter().copied()).collect();
        let mut multi = vec![0.0; nq * rows];
        d.eval_key_multi(&queries, &block, dim, &vec![f64::INFINITY; nq], &mut multi);
        let mut single = vec![0.0; rows];
        for (q, qv) in pts[..nq].iter().enumerate() {
            d.eval_key_batch(qv, &block, dim, f64::INFINITY, &mut single);
            assert_eq!(
                &multi[q * rows..(q + 1) * rows],
                &single[..],
                "{}: eval_key_multi row {q} disagrees with eval_key_batch",
                d.name()
            );
        }
        for (i, p) in pts[1..].iter().enumerate() {
            let direct = d.eval(query, p);
            assert!(
                (dists[i] - direct).abs() <= 1e-12 * direct.max(1.0),
                "{}: eval_batch row {i}: {} vs eval {direct}",
                d.name(),
                dists[i]
            );
            let via_key = d.finish_key(d.eval_key(query, p));
            assert!(
                (via_key - direct).abs() <= 1e-12 * direct.max(1.0),
                "{}: finish_key∘eval_key {via_key} vs eval {direct}",
                d.name()
            );
            assert_eq!(
                d.finish_key(keys[i]),
                dists[i],
                "{}: key batch row {i} disagrees with eval_batch",
                d.name()
            );
            // key_of_dist inverts finish_key (to rounding).
            let rt = d.finish_key(d.key_of_dist(direct));
            assert!(
                (rt - direct).abs() <= 1e-12 * direct.max(1.0),
                "{}: key_of_dist round-trip {rt} vs {direct}",
                d.name()
            );
        }
    }

    #[test]
    fn all_classes_satisfy_batch_contract() {
        const DIM: usize = 7;
        check_batch_contract(&Euclidean, DIM);
        check_batch_contract(&Manhattan, DIM); // default impls
        check_batch_contract(&Lp::new(3.0).unwrap(), DIM);
        let w: Vec<f64> = (0..DIM).map(|i| 0.5 + i as f64).collect();
        check_batch_contract(&WeightedEuclidean::new(w.clone()).unwrap(), DIM);
        let h = HierarchicalDistance::new(
            vec![FeatureSpan::new(0, 3), FeatureSpan::new(3, DIM)],
            vec![2.0, 0.5],
            w,
        )
        .unwrap();
        check_batch_contract(&h, DIM);
        let m = fbp_linalg::Matrix::from_diag(&[1.0, 2.0, 0.5, 3.0, 1.5, 0.75, 2.5]);
        check_batch_contract(&super::QuadraticDistance::new(&m).unwrap(), DIM);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::Distance;

    /// Generic metric-axiom probe used by the per-class test modules.
    pub fn check_metric_axioms<D: Distance>(d: &D, pts: &[Vec<f64>], tol: f64) {
        for a in pts {
            assert!(
                d.eval(a, a).abs() <= tol,
                "{}: d(x,x) = {}",
                d.name(),
                d.eval(a, a)
            );
            for b in pts {
                let ab = d.eval(a, b);
                let ba = d.eval(b, a);
                assert!((ab - ba).abs() <= tol, "{}: asymmetric", d.name());
                assert!(ab >= 0.0, "{}: negative distance", d.name());
                for c in pts {
                    let ac = d.eval(a, c);
                    let cb = d.eval(c, b);
                    assert!(
                        ab <= ac + cb + tol,
                        "{}: triangle violated: d(a,b)={ab} > d(a,c)+d(c,b)={}",
                        d.name(),
                        ac + cb
                    );
                }
            }
        }
    }

    pub fn sample_points(dim: usize) -> Vec<Vec<f64>> {
        // Deterministic scattered points exercising negatives and zeros.
        let mut pts = Vec::new();
        for s in 0..6 {
            let v: Vec<f64> = (0..dim)
                .map(|i| ((s * 7 + i * 3) % 11) as f64 * 0.25 - 1.0)
                .collect();
            pts.push(v);
        }
        pts.push(vec![0.0; dim]);
        pts
    }
}
