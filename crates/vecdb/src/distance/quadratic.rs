//! Quadratic (Mahalanobis-style) distance — paper §2:
//!
//! ```text
//! d²(p, q; W) = Σᵢ Σⱼ wᵢⱼ·(pᵢ − qᵢ)·(pⱼ − qⱼ) = (p−q)ᵀ·W·(p−q)
//! ```
//!
//! with symmetric positive-definite `W`, yielding arbitrarily-oriented
//! ellipsoidal iso-distance surfaces ("a rotated weighted Euclidean
//! norm"). Positive definiteness is certified at construction by a
//! Cholesky factorization, which also evaluates the form as `‖Lᵀ·x‖²`.

use super::Distance;
use crate::{Result, VecdbError};
use fbp_linalg::{Cholesky, Matrix};

/// Quadratic-form distance with SPD parameter matrix.
#[derive(Debug, Clone)]
pub struct QuadraticDistance {
    chol: Cholesky,
    dim: usize,
    /// Extremal eigenvalue bounds estimated from the Cholesky factor (via
    /// Gershgorin on `W`); used for Euclidean distortion pruning.
    eig_lo: f64,
    eig_hi: f64,
    /// f32-rounded lower-triangular Cholesky factor, flattened row-major
    /// (`n × n`, zeros above the diagonal), for the mirror-scanning f32
    /// kernel; its rounding is part of [`Distance::f32_key_slack`].
    l_f32: Vec<f32>,
    /// Largest `|L[i,j]|` (drives the f32 rounding budget).
    l_max: f64,
}

impl QuadraticDistance {
    /// Construct from a symmetric positive-definite matrix.
    pub fn new(w: &Matrix) -> Result<Self> {
        if !w.is_square() {
            return Err(VecdbError::BadParameters("matrix must be square".into()));
        }
        if !w.is_symmetric(1e-9) {
            return Err(VecdbError::BadParameters("matrix must be symmetric".into()));
        }
        let chol = Cholesky::factor(w).map_err(|e| {
            VecdbError::BadParameters(format!("matrix must be positive definite: {e}"))
        })?;
        // Gershgorin bounds on the spectrum of W: every eigenvalue lies in
        // ∪ᵢ [wᵢᵢ − Rᵢ, wᵢᵢ + Rᵢ] with Rᵢ the off-diagonal row sum.
        let n = w.rows();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for i in 0..n {
            let mut radius = 0.0;
            for j in 0..n {
                if i != j {
                    radius += w[(i, j)].abs();
                }
            }
            lo = lo.min(w[(i, i)] - radius);
            hi = hi.max(w[(i, i)] + radius);
        }
        let l = chol.l();
        let mut l_f32 = vec![0.0f32; n * n];
        let mut l_max = 0.0f64;
        for i in 0..n {
            for j in 0..=i {
                l_f32[i * n + j] = l[(i, j)] as f32;
                l_max = l_max.max(l[(i, j)].abs());
            }
        }
        Ok(QuadraticDistance {
            chol,
            dim: n,
            eig_lo: lo.max(0.0),
            eig_hi: hi,
            l_f32,
            l_max,
        })
    }

    /// Mahalanobis distance: quadratic form with `W = Σ⁻¹` for a given
    /// covariance matrix `Σ` (ridge-regularized by `ridge·I` so nearly
    /// singular covariances — few feedback examples — stay usable).
    pub fn mahalanobis(covariance: &Matrix, ridge: f64) -> Result<Self> {
        if !covariance.is_square() {
            return Err(VecdbError::BadParameters(
                "covariance must be square".into(),
            ));
        }
        let n = covariance.rows();
        let mut reg = covariance.clone();
        for i in 0..n {
            reg[(i, i)] += ridge;
        }
        let chol = Cholesky::factor(&reg)
            .map_err(|e| VecdbError::BadParameters(format!("covariance not PSD: {e}")))?;
        // W = Σ⁻¹ column by column.
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = chol
                .solve(&e)
                .map_err(|e| VecdbError::BadParameters(format!("solve failed: {e}")))?;
            e[c] = 0.0;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        // Symmetrize against round-off before factoring.
        for r in 0..n {
            for c in (r + 1)..n {
                let m = 0.5 * (inv[(r, c)] + inv[(c, r)]);
                inv[(r, c)] = m;
                inv[(c, r)] = m;
            }
        }
        QuadraticDistance::new(&inv)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Squared distance `(a−b)ᵀ·W·(a−b)`.
    #[inline]
    pub fn eval_sq(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.dim);
        debug_assert_eq!(b.len(), self.dim);
        let mut diff = [0.0; QUAD_STACK_DIM];
        if self.dim <= QUAD_STACK_DIM {
            for i in 0..self.dim {
                diff[i] = a[i] - b[i];
            }
            self.sq_of_diff(&diff[..self.dim], f64::INFINITY)
        } else {
            let diff: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x - y).collect();
            self.sq_of_diff(&diff, f64::INFINITY)
        }
    }

    /// `‖Lᵀ·diff‖²` from the Cholesky factor, abandoning once the partial
    /// sum of squares exceeds `bound` (each `yⱼ²` term is non-negative).
    #[inline]
    fn sq_of_diff(&self, diff: &[f64], bound: f64) -> f64 {
        let l = self.chol.l();
        let n = self.dim;
        let mut acc = 0.0;
        for j in 0..n {
            // (Lᵀ·diff)ⱼ = Σ_{i ≥ j} L[i,j]·diffᵢ (L is lower-triangular).
            let mut y = 0.0;
            for i in j..n {
                y += l[(i, j)] * diff[i];
            }
            acc += y * y;
            if acc > bound {
                return f64::INFINITY;
            }
        }
        acc
    }

    /// f32 counterpart of [`Self::sq_of_diff`] over the cached f32
    /// factor; same non-negative-prefix structure, so abandonment against
    /// a bound never understates a surviving key.
    #[inline]
    fn sq_of_diff_f32(&self, diff: &[f32], bound: f32) -> f32 {
        let n = self.dim;
        let mut acc = 0.0f32;
        for j in 0..n {
            let mut y = 0.0f32;
            for (i, &df) in diff.iter().enumerate().skip(j) {
                y += self.l_f32[i * n + j] * df;
            }
            acc += y * y;
            if acc > bound {
                return f32::INFINITY;
            }
        }
        acc
    }
}

/// Stack-buffer size for per-pair difference vectors (avoids a heap
/// allocation per evaluation at the paper's dimensionalities).
const QUAD_STACK_DIM: usize = 128;

impl Distance for QuadraticDistance {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_sq(a, b).sqrt()
    }

    fn name(&self) -> &str {
        "quadratic"
    }

    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        if self.eig_lo > 0.0 {
            Some((self.eig_lo.sqrt(), self.eig_hi.sqrt()))
        } else {
            None
        }
    }

    /// Derivable only when the certified Gershgorin spectrum stays
    /// positive: then `d_A = ‖Lᵀ(a−b)‖` is a norm-induced metric and
    /// both the distortion and triangle routes apply. When `eig_lo`
    /// touches zero no sound lower bound exists (the form can collapse
    /// an arbitrarily long Euclidean displacement to distance ~0), so
    /// this returns `None` and the partitioned scan must take the flat
    /// pass — the explicit per-class fallback the pruning layer
    /// requires.
    fn partition_lower_key(&self, query: &[f64], centroid: &[f64], radius_l2: f64) -> Option<f64> {
        let (lo, hi) = self.euclidean_distortion()?;
        let d2 = super::sq_dist(query, centroid).sqrt();
        let dqc = self.eval(query, centroid);
        let lb = super::metric_partition_lower(dqc, lo, hi, d2, radius_l2);
        Some(self.key_of_dist(lb))
    }

    #[inline]
    fn eval_key(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_sq(a, b)
    }

    #[inline]
    fn finish_key(&self, key: f64) -> f64 {
        key.sqrt()
    }

    #[inline]
    fn key_of_dist(&self, dist: f64) -> f64 {
        dist * dist
    }

    fn eval_batch(&self, query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
        self.eval_key_batch(query, block, dim, f64::INFINITY, out);
        for v in out.iter_mut() {
            *v = v.sqrt();
        }
    }

    fn eval_key_batch(
        &self,
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        debug_assert_eq!(query.len(), dim);
        debug_assert_eq!(dim, self.dim);
        debug_assert_eq!(block.len(), dim * out.len());
        // One scratch diff buffer for the whole block (no per-row allocs).
        let mut diff = vec![0.0; dim];
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            for i in 0..dim {
                diff[i] = query[i] - row[i];
            }
            *slot = self.sq_of_diff(&diff, bound);
        }
    }

    fn eval_key_multi(
        &self,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(dim, self.dim);
        debug_assert_eq!(queries.len(), bounds.len() * dim);
        debug_assert_eq!(out.len() * dim, bounds.len() * block.len());
        let rows = block.len().checked_div(dim).unwrap_or(0);
        // Row-outer loop: each block row is differenced against every
        // query while hot. Per-pair arithmetic is identical to
        // `eval_key_batch`, so surviving keys are bit-identical.
        let mut diff = vec![0.0; dim];
        for (r, row) in block.chunks_exact(dim).enumerate() {
            for (q, query) in queries.chunks_exact(dim).enumerate() {
                for i in 0..dim {
                    diff[i] = query[i] - row[i];
                }
                out[q * rows + r] = self.sq_of_diff(&diff, bounds[q]);
            }
        }
    }

    /// Rounding budget of the f32 `‖Lᵀ₃₂·diff₃₂‖²` evaluation: bound the
    /// error of each transformed coordinate `yⱼ` (factor conversion,
    /// difference rounding, f32 dot-product accumulation), then of its
    /// square and the final sum — all against worst-case magnitudes
    /// (`|diff| ≤ 2M`, `|L| ≤ l_max`), doubled as a safety margin.
    fn f32_key_slack(&self, dim: usize, max_abs: f64) -> Option<f64> {
        let u = super::F32_UNIT_ROUNDOFF;
        let n = dim as f64;
        let m = max_abs;
        // |y32 − y| per coordinate: n product terms each off by
        // ≤ 8.5·u·l_max·M, plus f32 accumulation of n terms of magnitude
        // ≤ 2.01·l_max·M.
        let e_y = u * self.l_max * m * n * (8.5 + 2.01 * n);
        // Magnitude bound on the computed coordinate.
        let y_hi = 2.01 * self.l_max * m * n + e_y;
        // No finite slack is sound once the worst-case key (Σ y² ≤
        // n·y_hi², partial sums included) could overflow f32 — the scan
        // must fall back to pure f64 (see `F32_KEY_OVERFLOW_GUARD`).
        let worst_key = n * y_hi * y_hi;
        // `!(x <= guard)` deliberately catches NaN as well as overflow.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(worst_key <= super::F32_KEY_OVERFLOW_GUARD) {
            return None;
        }
        // Σ y²: per-term square rounding + propagated e_y, then f32
        // accumulation of n squares.
        let per_sq = u * y_hi * y_hi + 2.1 * e_y * y_hi;
        let accum = n * u * n * y_hi * y_hi;
        Some(2.0 * (n * per_sq + accum))
    }

    fn eval_key_batch_f32(
        &self,
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        debug_assert_eq!(query.len(), dim);
        debug_assert_eq!(dim, self.dim);
        debug_assert_eq!(block.len(), dim * out.len());
        let mut diff = vec![0.0f32; dim];
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            for i in 0..dim {
                diff[i] = query[i] - row[i];
            }
            *slot = self.sq_of_diff_f32(&diff, bound);
        }
    }

    fn eval_key_multi_f32(
        &self,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        debug_assert_eq!(dim, self.dim);
        debug_assert_eq!(queries.len(), bounds.len() * dim);
        debug_assert_eq!(out.len() * dim, bounds.len() * block.len());
        let rows = block.len().checked_div(dim).unwrap_or(0);
        let mut diff = vec![0.0f32; dim];
        for (r, row) in block.chunks_exact(dim).enumerate() {
            for (q, query) in queries.chunks_exact(dim).enumerate() {
                for i in 0..dim {
                    diff[i] = query[i] - row[i];
                }
                out[q * rows + r] = self.sq_of_diff_f32(&diff, bounds[q]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::test_support::{check_metric_axioms, sample_points};
    use crate::distance::{Euclidean, WeightedEuclidean};

    #[test]
    fn identity_matrix_is_euclidean() {
        let q = QuadraticDistance::new(&Matrix::identity(3)).unwrap();
        let e = Euclidean;
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, -1.0, 0.5];
        assert!((q.eval(&a, &b) - e.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_weighted_euclidean() {
        let w = vec![2.0, 5.0];
        let q = QuadraticDistance::new(&Matrix::from_diag(&w)).unwrap();
        let we = WeightedEuclidean::new(w).unwrap();
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((q.eval(&a, &b) - we.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn rotated_form_captures_correlation() {
        // W with positive off-diagonal: moving along (1,-1) costs more than
        // along (1,1).
        let w = Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]]);
        let q = QuadraticDistance::new(&w).unwrap();
        let o = [0.0, 0.0];
        let diag = q.eval(&o, &[1.0, 1.0]);
        let anti = q.eval(&o, &[1.0, -1.0]);
        assert!(
            diag > anti,
            "correlated direction should cost more: {diag} vs {anti}"
        );
    }

    #[test]
    fn rejects_bad_matrices() {
        assert!(QuadraticDistance::new(&Matrix::zeros(2, 3)).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]);
        assert!(QuadraticDistance::new(&asym).is_err());
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(QuadraticDistance::new(&indef).is_err());
    }

    #[test]
    fn mahalanobis_whitens_covariance() {
        // Covariance with variance 4 in x, 1 in y: Mahalanobis distance of
        // (2,0) and (0,1) from the origin should both be 1.
        let cov = Matrix::from_diag(&[4.0, 1.0]);
        let m = QuadraticDistance::mahalanobis(&cov, 0.0).unwrap();
        let o = [0.0, 0.0];
        assert!((m.eval(&o, &[2.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((m.eval(&o, &[0.0, 1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mahalanobis_ridge_rescues_singular_covariance() {
        // Rank-deficient covariance (constant second dim) fails without a
        // ridge, succeeds with one.
        let cov = Matrix::from_diag(&[1.0, 0.0]);
        assert!(QuadraticDistance::mahalanobis(&cov, 0.0).is_err());
        assert!(QuadraticDistance::mahalanobis(&cov, 1e-6).is_ok());
    }

    #[test]
    fn metric_axioms_hold() {
        let w = Matrix::from_rows(&[&[2.0, 0.3, 0.0], &[0.3, 1.0, -0.2], &[0.0, -0.2, 1.5]]);
        let q = QuadraticDistance::new(&w).unwrap();
        check_metric_axioms(&q, &sample_points(3), 1e-9);
    }

    #[test]
    fn distortion_bounds_hold() {
        let w = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]);
        let q = QuadraticDistance::new(&w).unwrap();
        let (lo, hi) = q.euclidean_distortion().unwrap();
        let e = Euclidean;
        for pts in sample_points(2).windows(2) {
            let dq = q.eval(&pts[0], &pts[1]);
            let d2 = e.eval(&pts[0], &pts[1]);
            assert!(dq >= lo * d2 - 1e-9);
            assert!(dq <= hi * d2 + 1e-9);
        }
    }
}
