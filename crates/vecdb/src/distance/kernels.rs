//! Blocked distance kernels shared by the [`super::Distance`]
//! implementations.
//!
//! The per-row inner loops are unrolled 8-wide over independent
//! accumulators — enough parallel chains for LLVM to
//! emit full-width SIMD adds/multiplies and keep the out-of-order window
//! busy. All kernels compute *surrogate keys* (squared-form sums); the
//! caller recovers true distances via `Distance::finish_key` for final
//! winners only.
//!
//! Early abandonment: the accumulated sums are non-decreasing in the
//! number of components, so once a row's partial sum exceeds the caller's
//! pruning bound the row can never enter the k-best — the kernels then
//! stop and report `INFINITY` for it. Segments of [`SEGMENT`] components
//! keep the bound check off the hot inner loop.
//!
//! # f32 kernels
//!
//! The `*_f32` variants scan the [`Collection`](crate::Collection)'s
//! optional f32 mirror at half the memory traffic of the f64 buffer —
//! the phase-1 filter of the `Precision::F32Rescore` scan path. Two
//! implementations exist: a portable auto-vectorized chain mirroring
//! the f64 structure, and hand-written AVX2+FMA intrinsics (see the
//! `f32_intr` module for why LLVM needs the help here). Within either
//! implementation the properties the filter relies on hold: prefix sums
//! are monotone non-decreasing (each step adds a non-negative term
//! under monotone rounding), so early abandonment against an *inflated*
//! bound can only drop rows whose full f32 key also exceeds that bound,
//! and a given (query, row) pair gets the same f32 key from the batch,
//! multi and one-row entry points. Unlike the f64 kernels, f32 keys are
//! NOT bit-identical across hosts (FMA vs non-FMA) — by design: they
//! only select candidates under a `Distance::f32_key_slack`-inflated
//! bound that covers either variant's rounding, and the exact f64
//! rescore makes the final answers host-independent again.

/// Unroll width of the inner component loops (f64).
pub(crate) const LANES: usize = 8;

/// Unroll width of the f32 inner loops. Same count as the f64 kernels —
/// measured on the build host, 8 f32 lanes (one 256-bit chain, the same
/// cheap 8-term reduction tree per row) beats 16 lanes, whose doubled
/// horizontal reduction eats the wider-register win at dim ≈ 64.
pub(crate) const LANES_F32: usize = 8;

/// Components accumulated between early-abandon bound checks (f64).
const SEGMENT: usize = 64;

/// f32 bound-check granularity (same as f64: a 32-component experiment
/// made the phase-1 pass ~40% slower on the build host — the branchy
/// bounded row path costs more than the skipped arithmetic saves at
/// dim ≈ 64).
const SEGMENT_F32: usize = 64;

/// Sum of `w·(q − r)²` over one segment (8-wide unrolled;
/// `chunks_exact` keeps the hot loop free of bounds checks).
#[inline(always)]
fn weighted_sq_seg(w: &[f64], q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let (w, r) = (&w[..n], &r[..n]);
    let mut acc = [0.0f64; LANES];
    let mut qc = q.chunks_exact(LANES);
    let mut wc = w.chunks_exact(LANES);
    let mut rc = r.chunks_exact(LANES);
    for ((qs, ws), rs) in (&mut qc).zip(&mut wc).zip(&mut rc) {
        for l in 0..LANES {
            let d = qs[l] - rs[l];
            acc[l] += ws[l] * d * d;
        }
    }
    let mut tail = 0.0;
    for ((x, w), y) in qc
        .remainder()
        .iter()
        .zip(wc.remainder().iter())
        .zip(rc.remainder().iter())
    {
        let d = x - y;
        tail += w * d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Sum of `(q − r)²` over one segment (8-wide unrolled).
#[inline(always)]
fn l2_sq_seg(q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let r = &r[..n];
    let mut acc = [0.0f64; LANES];
    let mut qc = q.chunks_exact(LANES);
    let mut rc = r.chunks_exact(LANES);
    for (qs, rs) in (&mut qc).zip(&mut rc) {
        for l in 0..LANES {
            let d = qs[l] - rs[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in qc.remainder().iter().zip(rc.remainder().iter()) {
        let d = x - y;
        tail += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

// The row functions below all accumulate segment-by-segment so that the
// bounded and unbounded paths produce BIT-IDENTICAL sums for rows that
// survive the bound — engines mixing the two paths (trees push exact
// keys, scans may abandon) must never disagree on a shared candidate.

/// Sum of `w·(q − r)²` over one row.
#[inline(always)]
pub(crate) fn weighted_sq_row(w: &[f64], q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
        i = end;
    }
    acc
}

/// Sum of `(q − r)²` over one row.
#[inline(always)]
pub(crate) fn l2_sq_row(q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += l2_sq_seg(&q[i..end], &r[i..end]);
        i = end;
    }
    acc
}

/// One row with early abandonment against `bound` (checked every
/// [`SEGMENT`] components). Returns `f64::INFINITY` when abandoned.
#[inline(always)]
fn weighted_sq_row_bounded(w: &[f64], q: &[f64], r: &[f64], bound: f64) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
        if acc > bound {
            return f64::INFINITY;
        }
        i = end;
    }
    acc
}

#[inline(always)]
fn l2_sq_row_bounded(q: &[f64], r: &[f64], bound: f64) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += l2_sq_seg(&q[i..end], &r[i..end]);
        if acc > bound {
            return f64::INFINITY;
        }
        i = end;
    }
    acc
}

/// Per-(query, row) computation shared by the single- and multi-query
/// block kernels: bounded accumulation when a finite bound can pay for
/// its branches, exact accumulation otherwise. Rows that survive a bound
/// get BIT-IDENTICAL sums on either path (see above), so multi-query
/// scans carrying per-query bounds agree exactly with per-query scans.
#[inline(always)]
fn l2_sq_pair(q: &[f64], r: &[f64], bound: f64) -> f64 {
    if bound.is_finite() && q.len() > SEGMENT {
        l2_sq_row_bounded(q, r, bound)
    } else {
        l2_sq_row(q, r)
    }
}

#[inline(always)]
fn weighted_sq_pair(w: &[f64], q: &[f64], r: &[f64], bound: f64) -> f64 {
    if bound.is_finite() && q.len() > SEGMENT {
        weighted_sq_row_bounded(w, q, r, bound)
    } else {
        weighted_sq_row(w, q, r)
    }
}

/// Squared-Euclidean keys for a row-major block (portable body).
///
/// Abandonment only pays once a row spans multiple segments; exact keys
/// are cheaper than branchy ones for short rows. The mode branch is
/// hoisted out of the row loop.
#[inline(always)]
fn l2_sq_block_impl(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
    if bound.is_finite() && dim > SEGMENT {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = l2_sq_row_bounded(query, row, bound);
        }
    } else {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = l2_sq_row(query, row);
        }
    }
}

/// Weighted squared-Euclidean keys for a row-major block (portable body).
#[inline(always)]
fn weighted_sq_block_impl(
    weights: &[f64],
    query: &[f64],
    block: &[f64],
    dim: usize,
    bound: f64,
    out: &mut [f64],
) {
    if bound.is_finite() && dim > SEGMENT {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = weighted_sq_row_bounded(weights, query, row, bound);
        }
    } else {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = weighted_sq_row(weights, query, row);
        }
    }
}

/// Squared-Euclidean keys for Q queries × one row-major block (portable
/// body). `queries` is `Q × dim` row-major; `bounds` holds one pruning
/// threshold per query; `out` is `Q × rows` row-major per query
/// (`out[q·rows + r]`).
///
/// The row loop is OUTER: each block row is loaded once and scored
/// against every query while it sits in registers/L1, so collection
/// bytes per query drop by ~Q× versus Q separate block passes. Each
/// (query, row) pair accumulates exactly like the single-query kernel,
/// so surviving keys are bit-identical to Q independent passes.
#[inline(always)]
fn l2_sq_multi_impl(queries: &[f64], block: &[f64], dim: usize, bounds: &[f64], out: &mut [f64]) {
    let rows = block.len().checked_div(dim).unwrap_or(0);
    for (r, row) in block.chunks_exact(dim).enumerate() {
        for (q, query) in queries.chunks_exact(dim).enumerate() {
            out[q * rows + r] = l2_sq_pair(query, row, bounds[q]);
        }
    }
}

/// Weighted squared-Euclidean keys for Q queries × one block (portable
/// body). `w_stride` selects the weight layout: `0` shares one `dim`-long
/// weight row across all queries (one metric, many queries), `dim` gives
/// each query its own weight row (per-session learned metrics).
#[inline(always)]
fn weighted_sq_multi_impl(
    weights: &[f64],
    w_stride: usize,
    queries: &[f64],
    block: &[f64],
    dim: usize,
    bounds: &[f64],
    out: &mut [f64],
) {
    let rows = block.len().checked_div(dim).unwrap_or(0);
    for (r, row) in block.chunks_exact(dim).enumerate() {
        for (q, query) in queries.chunks_exact(dim).enumerate() {
            let w = &weights[q * w_stride..q * w_stride + dim];
            out[q * rows + r] = weighted_sq_pair(w, query, row, bounds[q]);
        }
    }
}

// ---------------------------------------------------------------------
// f32 kernel bodies, portable chain (`f32_plain`): the same
// segment/lane structure and unfused multiply-add arithmetic as the
// f64 kernels, auto-vectorized under the runtime-dispatched
// `#[target_feature]` wrappers below. This chain serves non-FMA hosts
// and non-x86 targets; FMA-capable x86-64 hosts are instead routed to
// the hand-written `f32_intr` intrinsics further down (fused
// multiply-adds, different reduction — see that module for why).
// Either implementation's rounding is covered by
// `Distance::f32_key_slack` (fusion only removes roundings the budget
// charges for).

/// Fixed-shape reduction of the f32 accumulator lanes (the same
/// deterministic tree as the f64 kernels').
#[inline(always)]
fn reduce_f32(acc: &[f32; LANES_F32]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

mod f32_plain {
    use super::{reduce_f32, LANES_F32, SEGMENT_F32 as SEGMENT};

    /// Sum of `w·(q − r)²` over one segment (8-wide unrolled).
    #[inline(always)]
    fn weighted_sq_seg(w: &[f32], q: &[f32], r: &[f32]) -> f32 {
        let n = q.len();
        let (w, r) = (&w[..n], &r[..n]);
        let mut acc = [0.0f32; LANES_F32];
        let mut qc = q.chunks_exact(LANES_F32);
        let mut wc = w.chunks_exact(LANES_F32);
        let mut rc = r.chunks_exact(LANES_F32);
        for ((qs, ws), rs) in (&mut qc).zip(&mut wc).zip(&mut rc) {
            for l in 0..LANES_F32 {
                let d = qs[l] - rs[l];
                acc[l] += ws[l] * d * d;
            }
        }
        let mut tail = 0.0f32;
        for ((x, w), y) in qc
            .remainder()
            .iter()
            .zip(wc.remainder().iter())
            .zip(rc.remainder().iter())
        {
            let d = x - y;
            tail += w * d * d;
        }
        reduce_f32(&acc) + tail
    }

    /// Sum of `(q − r)²` over one segment (8-wide unrolled).
    #[inline(always)]
    fn l2_sq_seg(q: &[f32], r: &[f32]) -> f32 {
        let n = q.len();
        let r = &r[..n];
        let mut acc = [0.0f32; LANES_F32];
        let mut qc = q.chunks_exact(LANES_F32);
        let mut rc = r.chunks_exact(LANES_F32);
        for (qs, rs) in (&mut qc).zip(&mut rc) {
            for l in 0..LANES_F32 {
                let d = qs[l] - rs[l];
                acc[l] += d * d;
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in qc.remainder().iter().zip(rc.remainder().iter()) {
            let d = x - y;
            tail += d * d;
        }
        reduce_f32(&acc) + tail
    }

    /// Two rows' `w·(q − r)²` segment sums, interleaved: the
    /// per-row FP dependency chain is the latency bottleneck of
    /// the f32 pass, so a row pair keeps two independent chains
    /// in flight. Each row's lanes, order and reduction are
    /// exactly those of [`weighted_sq_seg`], so pairing never
    /// changes a key's bits.
    #[inline(always)]
    fn weighted_sq_seg2(w: &[f32], q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        let n = q.len();
        let (w, r0, r1) = (&w[..n], &r0[..n], &r1[..n]);
        let mut acc0 = [0.0f32; LANES_F32];
        let mut acc1 = [0.0f32; LANES_F32];
        let mut qc = q.chunks_exact(LANES_F32);
        let mut wc = w.chunks_exact(LANES_F32);
        let mut rc0 = r0.chunks_exact(LANES_F32);
        let mut rc1 = r1.chunks_exact(LANES_F32);
        for (((qs, ws), rs0), rs1) in (&mut qc).zip(&mut wc).zip(&mut rc0).zip(&mut rc1) {
            for l in 0..LANES_F32 {
                let d0 = qs[l] - rs0[l];
                acc0[l] += ws[l] * d0 * d0;
                let d1 = qs[l] - rs1[l];
                acc1[l] += ws[l] * d1 * d1;
            }
        }
        let mut tail0 = 0.0f32;
        let mut tail1 = 0.0f32;
        for (((x, w), y0), y1) in qc
            .remainder()
            .iter()
            .zip(wc.remainder().iter())
            .zip(rc0.remainder().iter())
            .zip(rc1.remainder().iter())
        {
            let d0 = x - y0;
            tail0 += w * d0 * d0;
            let d1 = x - y1;
            tail1 += w * d1 * d1;
        }
        (reduce_f32(&acc0) + tail0, reduce_f32(&acc1) + tail1)
    }

    /// Two rows' `(q − r)²` segment sums, interleaved (see
    /// [`weighted_sq_seg2`]).
    #[inline(always)]
    fn l2_sq_seg2(q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        let n = q.len();
        let (r0, r1) = (&r0[..n], &r1[..n]);
        let mut acc0 = [0.0f32; LANES_F32];
        let mut acc1 = [0.0f32; LANES_F32];
        let mut qc = q.chunks_exact(LANES_F32);
        let mut rc0 = r0.chunks_exact(LANES_F32);
        let mut rc1 = r1.chunks_exact(LANES_F32);
        for ((qs, rs0), rs1) in (&mut qc).zip(&mut rc0).zip(&mut rc1) {
            for l in 0..LANES_F32 {
                let d0 = qs[l] - rs0[l];
                acc0[l] += d0 * d0;
                let d1 = qs[l] - rs1[l];
                acc1[l] += d1 * d1;
            }
        }
        let mut tail0 = 0.0f32;
        let mut tail1 = 0.0f32;
        for ((x, y0), y1) in qc
            .remainder()
            .iter()
            .zip(rc0.remainder().iter())
            .zip(rc1.remainder().iter())
        {
            let d0 = x - y0;
            tail0 += d0 * d0;
            let d1 = x - y1;
            tail1 += d1 * d1;
        }
        (reduce_f32(&acc0) + tail0, reduce_f32(&acc1) + tail1)
    }

    /// Two full rows, interleaved; bit-identical per row to
    /// [`weighted_sq_row`].
    #[inline(always)]
    fn weighted_sq_row2(w: &[f32], q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        let n = q.len();
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut i = 0;
        while i < n {
            let end = (i + SEGMENT).min(n);
            let (s0, s1) = weighted_sq_seg2(&w[i..end], &q[i..end], &r0[i..end], &r1[i..end]);
            acc0 += s0;
            acc1 += s1;
            i = end;
        }
        (acc0, acc1)
    }

    /// Two full rows, interleaved; bit-identical per row to
    /// [`l2_sq_row`].
    #[inline(always)]
    fn l2_sq_row2(q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        let n = q.len();
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut i = 0;
        while i < n {
            let end = (i + SEGMENT).min(n);
            let (s0, s1) = l2_sq_seg2(&q[i..end], &r0[i..end], &r1[i..end]);
            acc0 += s0;
            acc1 += s1;
            i = end;
        }
        (acc0, acc1)
    }

    /// Sum of `w·(q − r)²` over one row.
    #[inline(always)]
    pub(super) fn weighted_sq_row(w: &[f32], q: &[f32], r: &[f32]) -> f32 {
        let n = q.len();
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < n {
            let end = (i + SEGMENT).min(n);
            acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
            i = end;
        }
        acc
    }

    /// Sum of `(q − r)²` over one row.
    #[inline(always)]
    pub(super) fn l2_sq_row(q: &[f32], r: &[f32]) -> f32 {
        let n = q.len();
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < n {
            let end = (i + SEGMENT).min(n);
            acc += l2_sq_seg(&q[i..end], &r[i..end]);
            i = end;
        }
        acc
    }

    #[inline(always)]
    fn weighted_sq_row_bounded(w: &[f32], q: &[f32], r: &[f32], bound: f32) -> f32 {
        let n = q.len();
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < n {
            let end = (i + SEGMENT).min(n);
            acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
            if acc > bound {
                return f32::INFINITY;
            }
            i = end;
        }
        acc
    }

    #[inline(always)]
    fn l2_sq_row_bounded(q: &[f32], r: &[f32], bound: f32) -> f32 {
        let n = q.len();
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < n {
            let end = (i + SEGMENT).min(n);
            acc += l2_sq_seg(&q[i..end], &r[i..end]);
            if acc > bound {
                return f32::INFINITY;
            }
            i = end;
        }
        acc
    }

    #[inline(always)]
    fn l2_sq_pair(q: &[f32], r: &[f32], bound: f32) -> f32 {
        if bound.is_finite() && q.len() > SEGMENT {
            l2_sq_row_bounded(q, r, bound)
        } else {
            l2_sq_row(q, r)
        }
    }

    #[inline(always)]
    fn weighted_sq_pair(w: &[f32], q: &[f32], r: &[f32], bound: f32) -> f32 {
        if bound.is_finite() && q.len() > SEGMENT {
            weighted_sq_row_bounded(w, q, r, bound)
        } else {
            weighted_sq_row(w, q, r)
        }
    }

    /// Squared-Euclidean f32 keys for a row-major f32 block.
    #[inline(always)]
    pub(super) fn l2_sq_block(
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        if bound.is_finite() && dim > SEGMENT {
            for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
                *slot = l2_sq_row_bounded(query, row, bound);
            }
        } else {
            let mut pairs = block.chunks_exact(2 * dim);
            let mut slots = out.chunks_exact_mut(2);
            for (pair, slot) in (&mut pairs).zip(&mut slots) {
                let (a, b) = l2_sq_row2(query, &pair[..dim], &pair[dim..]);
                slot[0] = a;
                slot[1] = b;
            }
            let rem = pairs.remainder();
            if let Some(slot) = slots.into_remainder().first_mut() {
                *slot = l2_sq_row(query, &rem[..dim]);
            }
        }
    }

    /// Weighted squared-Euclidean f32 keys for a row-major block.
    #[inline(always)]
    pub(super) fn weighted_sq_block(
        weights: &[f32],
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        if bound.is_finite() && dim > SEGMENT {
            for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
                *slot = weighted_sq_row_bounded(weights, query, row, bound);
            }
        } else {
            let mut pairs = block.chunks_exact(2 * dim);
            let mut slots = out.chunks_exact_mut(2);
            for (pair, slot) in (&mut pairs).zip(&mut slots) {
                let (a, b) = weighted_sq_row2(weights, query, &pair[..dim], &pair[dim..]);
                slot[0] = a;
                slot[1] = b;
            }
            let rem = pairs.remainder();
            if let Some(slot) = slots.into_remainder().first_mut() {
                *slot = weighted_sq_row(weights, query, &rem[..dim]);
            }
        }
    }

    /// Squared-Euclidean f32 keys for Q queries × one block
    /// (row-outer like the f64 multi kernel).
    #[inline(always)]
    pub(super) fn l2_sq_multi(
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        let rows = block.len().checked_div(dim).unwrap_or(0);
        for (r, row) in block.chunks_exact(dim).enumerate() {
            for (q, query) in queries.chunks_exact(dim).enumerate() {
                out[q * rows + r] = l2_sq_pair(query, row, bounds[q]);
            }
        }
    }

    /// Weighted squared-Euclidean f32 keys for Q queries × one
    /// block (`w_stride` as in the f64 multi kernel).
    #[inline(always)]
    pub(super) fn weighted_sq_multi(
        weights: &[f32],
        w_stride: usize,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        let rows = block.len().checked_div(dim).unwrap_or(0);
        for (r, row) in block.chunks_exact(dim).enumerate() {
            for (q, query) in queries.chunks_exact(dim).enumerate() {
                let w = &weights[q * w_stride..q * w_stride + dim];
                out[q * rows + r] = weighted_sq_pair(w, query, row, bounds[q]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Explicit-intrinsic f32 kernels (x86-64, AVX2+FMA).
//
// The auto-vectorized f32 bodies above hit an LLVM lane-splitting
// pathology on this shape (the 8-lane f32 accumulator is kept as two
// xmm halves with per-iteration extracts), leaving the phase-1 pass
// compute-bound well above the mirror's streaming floor. These
// hand-written kernels do what the f64 bodies get from auto-
// vectorization alone: full-width 256-bit lanes, two rows in flight
// (two independent FMA chains hide the accumulate latency), and a
// cheap `vhaddps` reduction. 256-bit vectors are used even on AVX-512
// hosts — at these row lengths the win is latency hiding, not width.
//
// f32 keys from this path differ in the last ulps from the portable
// chain (fused multiply-add, different reduction tree) — allowed by
// design: f32 keys only select candidates under a slack-inflated bound
// (fusion only *shrinks* the rounding the slack budgets for), and the
// exact f64 rescore makes final answers identical on every host. The
// `bound` argument is accepted but not used for early abandonment:
// at the dimensionalities where this path wins, the segment check
// never fires anyway, and exact keys always satisfy the kernel
// contract.
#[cfg(target_arch = "x86_64")]
mod f32_intr {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// `((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))` via two horizontal adds.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn reduce(acc: __m256) -> f32 {
        let h1 = _mm256_hadd_ps(acc, acc);
        let h2 = _mm256_hadd_ps(h1, h1);
        let lo = _mm256_castps256_ps128(h2);
        let hi = _mm256_extractf128_ps(h2, 1);
        _mm_cvtss_f32(_mm_add_ss(lo, hi))
    }

    /// One row of `Σ w·(q−r)²`; scalar tail beyond the 8-lane chunks.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn weighted_row(w: &[f32], q: &[f32], r: &[f32]) -> f32 {
        let dim = q.len();
        let chunks = dim / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let o = c * 8;
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(q.as_ptr().add(o)),
                _mm256_loadu_ps(r.as_ptr().add(o)),
            );
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(w.as_ptr().add(o)), _mm256_mul_ps(d, d), acc);
        }
        let mut sum = reduce(acc);
        for i in chunks * 8..dim {
            let d = q[i] - r[i];
            sum = w[i].mul_add(d * d, sum);
        }
        sum
    }

    /// Two rows of `Σ w·(q−r)²` in flight (shared q/w loads, two
    /// independent FMA chains).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn weighted_row2(w: &[f32], q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        let dim = q.len();
        let chunks = dim / 8;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for c in 0..chunks {
            let o = c * 8;
            let vq = _mm256_loadu_ps(q.as_ptr().add(o));
            let vw = _mm256_loadu_ps(w.as_ptr().add(o));
            let d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(r0.as_ptr().add(o)));
            acc0 = _mm256_fmadd_ps(vw, _mm256_mul_ps(d0, d0), acc0);
            let d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(r1.as_ptr().add(o)));
            acc1 = _mm256_fmadd_ps(vw, _mm256_mul_ps(d1, d1), acc1);
        }
        let mut sum0 = reduce(acc0);
        let mut sum1 = reduce(acc1);
        for i in chunks * 8..dim {
            let d0 = q[i] - r0[i];
            sum0 = w[i].mul_add(d0 * d0, sum0);
            let d1 = q[i] - r1[i];
            sum1 = w[i].mul_add(d1 * d1, sum1);
        }
        (sum0, sum1)
    }

    /// Two rows × two queries of `Σ w·(q−r)²` in flight: four
    /// independent FMA chains. The multi-query regime is compute-bound
    /// and the two-chain row-pair kernel sits on FMA-latency, so the
    /// register-blocked Q×row tile is what buys throughput: row loads
    /// are shared across the queries, query/weight loads across the
    /// rows, and the accumulator count doubles. Each (query, row) key
    /// accumulates in the same per-chunk order as
    /// [`weighted_row`]/[`weighted_row2`], so the key bits are identical
    /// whichever kernel shape a scan picks.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn weighted_row2_q2(
        w0: &[f32],
        q0: &[f32],
        w1: &[f32],
        q1: &[f32],
        r0: &[f32],
        r1: &[f32],
    ) -> (f32, f32, f32, f32) {
        let dim = q0.len();
        let chunks = dim / 8;
        let mut acc00 = _mm256_setzero_ps();
        let mut acc01 = _mm256_setzero_ps();
        let mut acc10 = _mm256_setzero_ps();
        let mut acc11 = _mm256_setzero_ps();
        for c in 0..chunks {
            let o = c * 8;
            let vr0 = _mm256_loadu_ps(r0.as_ptr().add(o));
            let vr1 = _mm256_loadu_ps(r1.as_ptr().add(o));
            let vq0 = _mm256_loadu_ps(q0.as_ptr().add(o));
            let vw0 = _mm256_loadu_ps(w0.as_ptr().add(o));
            let d00 = _mm256_sub_ps(vq0, vr0);
            acc00 = _mm256_fmadd_ps(vw0, _mm256_mul_ps(d00, d00), acc00);
            let d01 = _mm256_sub_ps(vq0, vr1);
            acc01 = _mm256_fmadd_ps(vw0, _mm256_mul_ps(d01, d01), acc01);
            let vq1 = _mm256_loadu_ps(q1.as_ptr().add(o));
            let vw1 = _mm256_loadu_ps(w1.as_ptr().add(o));
            let d10 = _mm256_sub_ps(vq1, vr0);
            acc10 = _mm256_fmadd_ps(vw1, _mm256_mul_ps(d10, d10), acc10);
            let d11 = _mm256_sub_ps(vq1, vr1);
            acc11 = _mm256_fmadd_ps(vw1, _mm256_mul_ps(d11, d11), acc11);
        }
        let mut s00 = reduce(acc00);
        let mut s01 = reduce(acc01);
        let mut s10 = reduce(acc10);
        let mut s11 = reduce(acc11);
        for i in chunks * 8..dim {
            let d00 = q0[i] - r0[i];
            s00 = w0[i].mul_add(d00 * d00, s00);
            let d01 = q0[i] - r1[i];
            s01 = w0[i].mul_add(d01 * d01, s01);
            let d10 = q1[i] - r0[i];
            s10 = w1[i].mul_add(d10 * d10, s10);
            let d11 = q1[i] - r1[i];
            s11 = w1[i].mul_add(d11 * d11, s11);
        }
        (s00, s01, s10, s11)
    }

    /// One row of `Σ (q−r)²`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn l2_row(q: &[f32], r: &[f32]) -> f32 {
        let dim = q.len();
        let chunks = dim / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let o = c * 8;
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(q.as_ptr().add(o)),
                _mm256_loadu_ps(r.as_ptr().add(o)),
            );
            acc = _mm256_fmadd_ps(d, d, acc);
        }
        let mut sum = reduce(acc);
        for i in chunks * 8..dim {
            let d = q[i] - r[i];
            sum = d.mul_add(d, sum);
        }
        sum
    }

    /// Two rows of `Σ (q−r)²` in flight.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn l2_row2(q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        let dim = q.len();
        let chunks = dim / 8;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for c in 0..chunks {
            let o = c * 8;
            let vq = _mm256_loadu_ps(q.as_ptr().add(o));
            let d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(r0.as_ptr().add(o)));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            let d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(r1.as_ptr().add(o)));
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        }
        let mut sum0 = reduce(acc0);
        let mut sum1 = reduce(acc1);
        for i in chunks * 8..dim {
            let d0 = q[i] - r0[i];
            sum0 = d0.mul_add(d0, sum0);
            let d1 = q[i] - r1[i];
            sum1 = d1.mul_add(d1, sum1);
        }
        (sum0, sum1)
    }

    /// Weighted block kernel: row pairs, remainder row single.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn weighted_sq_block(
        weights: &[f32],
        query: &[f32],
        block: &[f32],
        dim: usize,
        _bound: f32,
        out: &mut [f32],
    ) {
        let mut pairs = block.chunks_exact(2 * dim);
        let mut slots = out.chunks_exact_mut(2);
        for (pair, slot) in (&mut pairs).zip(&mut slots) {
            let (a, b) = weighted_row2(weights, query, &pair[..dim], &pair[dim..]);
            slot[0] = a;
            slot[1] = b;
        }
        let rem = pairs.remainder();
        if let Some(slot) = slots.into_remainder().first_mut() {
            *slot = weighted_row(weights, query, &rem[..dim]);
        }
    }

    /// L2 block kernel: row pairs, remainder row single.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn l2_sq_block(
        query: &[f32],
        block: &[f32],
        dim: usize,
        _bound: f32,
        out: &mut [f32],
    ) {
        let mut pairs = block.chunks_exact(2 * dim);
        let mut slots = out.chunks_exact_mut(2);
        for (pair, slot) in (&mut pairs).zip(&mut slots) {
            let (a, b) = l2_row2(query, &pair[..dim], &pair[dim..]);
            slot[0] = a;
            slot[1] = b;
        }
        let rem = pairs.remainder();
        if let Some(slot) = slots.into_remainder().first_mut() {
            *slot = l2_row(query, &rem[..dim]);
        }
    }

    /// L2 multi kernel: row-pair outer, queries inner (each mirror row
    /// pair is scored against every query while hot), per-(query, row)
    /// arithmetic identical to the batch kernel's.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn l2_sq_multi(
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        let rows = block.len().checked_div(dim).unwrap_or(0);
        let nq = bounds.len();
        let mut pairs = block.chunks_exact(2 * dim);
        let mut r = 0;
        for pair in &mut pairs {
            for (q, query) in queries.chunks_exact(dim).enumerate() {
                let (a, b) = l2_row2(query, &pair[..dim], &pair[dim..]);
                out[q * rows + r] = a;
                out[q * rows + r + 1] = b;
            }
            r += 2;
        }
        let rem = pairs.remainder();
        if r < rows {
            for q in 0..nq {
                out[q * rows + r] = l2_row(&queries[q * dim..(q + 1) * dim], &rem[..dim]);
            }
        }
    }

    /// Weighted multi kernel (`w_stride` as in the portable version).
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn weighted_sq_multi(
        weights: &[f32],
        w_stride: usize,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        let rows = block.len().checked_div(dim).unwrap_or(0);
        let nq = bounds.len();
        let mut pairs = block.chunks_exact(2 * dim);
        let mut r = 0;
        for pair in &mut pairs {
            let (r0, r1) = (&pair[..dim], &pair[dim..]);
            // 2×2 register tile over query pairs (four FMA chains), the
            // row-pair kernel for an odd trailing query.
            let mut q = 0;
            while q + 2 <= nq {
                let w0 = &weights[q * w_stride..q * w_stride + dim];
                let w1 = &weights[(q + 1) * w_stride..(q + 1) * w_stride + dim];
                let (s00, s01, s10, s11) = weighted_row2_q2(
                    w0,
                    &queries[q * dim..(q + 1) * dim],
                    w1,
                    &queries[(q + 1) * dim..(q + 2) * dim],
                    r0,
                    r1,
                );
                out[q * rows + r] = s00;
                out[q * rows + r + 1] = s01;
                out[(q + 1) * rows + r] = s10;
                out[(q + 1) * rows + r + 1] = s11;
                q += 2;
            }
            if q < nq {
                let w = &weights[q * w_stride..q * w_stride + dim];
                let (a, b) = weighted_row2(w, &queries[q * dim..(q + 1) * dim], r0, r1);
                out[q * rows + r] = a;
                out[q * rows + r + 1] = b;
            }
            r += 2;
        }
        let rem = pairs.remainder();
        if r < rows {
            for q in 0..nq {
                let w = &weights[q * w_stride..q * w_stride + dim];
                out[q * rows + r] = weighted_row(w, &queries[q * dim..(q + 1) * dim], &rem[..dim]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// ISA multiversioning.
//
// The default x86-64 target only assumes SSE2 (two f64 lanes). The block
// entry points below re-compile the *same* portable bodies with wider
// vector features enabled and select a version once at runtime. Because
// every f64 version executes the identical lane-structured code (no FMA
// contraction, no reassociation — vectorization maps accumulator lanes
// 1:1), all f64 versions produce bit-identical results; only throughput
// changes. The f32 dispatchers additionally route to the `f32_intr`
// intrinsics on FMA-capable hosts, which trade that cross-host bit
// stability (covered by the rescore design, see the module docs) for
// reaching the mirror's streaming bandwidth.

#[cfg(target_arch = "x86_64")]
mod dispatch {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const PORTABLE: u8 = 1;
    const AVX2: u8 = 2;
    const AVX512: u8 = 3;

    static LEVEL: AtomicU8 = AtomicU8::new(UNKNOWN);

    /// Cached FMA capability (0 unknown, 1 no, 2 yes) — consulted only
    /// by the f32 dispatchers; the f64 kernels never use FMA so they
    /// stay bit-identical across every x86-64 host.
    static FMA: AtomicU8 = AtomicU8::new(0);

    #[inline]
    pub(super) fn has_fma() -> bool {
        match FMA.load(Ordering::Relaxed) {
            0 => {
                let f = if is_x86_feature_detected!("fma") {
                    2
                } else {
                    1
                };
                FMA.store(f, Ordering::Relaxed);
                f == 2
            }
            f => f == 2,
        }
    }

    #[inline]
    pub(super) fn level() -> u8 {
        match LEVEL.load(Ordering::Relaxed) {
            UNKNOWN => {
                let l = if is_x86_feature_detected!("avx512f") {
                    AVX512
                } else if is_x86_feature_detected!("avx2") {
                    AVX2
                } else {
                    PORTABLE
                };
                LEVEL.store(l, Ordering::Relaxed);
                l
            }
            l => l,
        }
    }

    macro_rules! isa_versions {
        ($feature:literal, $l2:ident, $weighted:ident, $l2_multi:ident, $weighted_multi:ident) => {
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $l2(
                query: &[f64],
                block: &[f64],
                dim: usize,
                bound: f64,
                out: &mut [f64],
            ) {
                super::l2_sq_block_impl(query, block, dim, bound, out);
            }

            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $weighted(
                weights: &[f64],
                query: &[f64],
                block: &[f64],
                dim: usize,
                bound: f64,
                out: &mut [f64],
            ) {
                super::weighted_sq_block_impl(weights, query, block, dim, bound, out);
            }

            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $l2_multi(
                queries: &[f64],
                block: &[f64],
                dim: usize,
                bounds: &[f64],
                out: &mut [f64],
            ) {
                super::l2_sq_multi_impl(queries, block, dim, bounds, out);
            }

            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub(super) unsafe fn $weighted_multi(
                weights: &[f64],
                w_stride: usize,
                queries: &[f64],
                block: &[f64],
                dim: usize,
                bounds: &[f64],
                out: &mut [f64],
            ) {
                super::weighted_sq_multi_impl(weights, w_stride, queries, block, dim, bounds, out);
            }
        };
    }

    isa_versions!(
        "avx2",
        l2_avx2,
        weighted_avx2,
        l2_multi_avx2,
        weighted_multi_avx2
    );
    isa_versions!(
        "avx512f",
        l2_avx512,
        weighted_avx512,
        l2_multi_avx512,
        weighted_multi_avx512
    );

    // f32 ISA versions of the portable `f32_plain` chain — used on
    // AVX2/AVX-512 hosts WITHOUT the FMA feature. FMA-capable hosts
    // never reach these: the dispatchers below route them to the
    // `f32_intr` intrinsics instead.
    macro_rules! isa_versions_f32 {
        ($feature:literal, $chain:ident, $l2:ident, $weighted:ident, $l2_multi:ident,
         $weighted_multi:ident) => {
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $l2(
                query: &[f32],
                block: &[f32],
                dim: usize,
                bound: f32,
                out: &mut [f32],
            ) {
                super::$chain::l2_sq_block(query, block, dim, bound, out);
            }

            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $weighted(
                weights: &[f32],
                query: &[f32],
                block: &[f32],
                dim: usize,
                bound: f32,
                out: &mut [f32],
            ) {
                super::$chain::weighted_sq_block(weights, query, block, dim, bound, out);
            }

            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $l2_multi(
                queries: &[f32],
                block: &[f32],
                dim: usize,
                bounds: &[f32],
                out: &mut [f32],
            ) {
                super::$chain::l2_sq_multi(queries, block, dim, bounds, out);
            }

            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub(super) unsafe fn $weighted_multi(
                weights: &[f32],
                w_stride: usize,
                queries: &[f32],
                block: &[f32],
                dim: usize,
                bounds: &[f32],
                out: &mut [f32],
            ) {
                super::$chain::weighted_sq_multi(
                    weights, w_stride, queries, block, dim, bounds, out,
                );
            }
        };
    }

    isa_versions_f32!(
        "avx2",
        f32_plain,
        l2_f32_avx2,
        weighted_f32_avx2,
        l2_multi_f32_avx2,
        weighted_multi_f32_avx2
    );
    isa_versions_f32!(
        "avx512f",
        f32_plain,
        l2_f32_avx512,
        weighted_f32_avx512,
        l2_multi_f32_avx512,
        weighted_multi_f32_avx512
    );

    #[inline]
    pub(super) fn l2(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { l2_avx512(query, block, dim, bound, out) },
            AVX2 => unsafe { l2_avx2(query, block, dim, bound, out) },
            _ => super::l2_sq_block_impl(query, block, dim, bound, out),
        }
    }

    #[inline]
    pub(super) fn weighted(
        weights: &[f64],
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { weighted_avx512(weights, query, block, dim, bound, out) },
            AVX2 => unsafe { weighted_avx2(weights, query, block, dim, bound, out) },
            _ => super::weighted_sq_block_impl(weights, query, block, dim, bound, out),
        }
    }

    #[inline]
    pub(super) fn l2_multi(
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { l2_multi_avx512(queries, block, dim, bounds, out) },
            AVX2 => unsafe { l2_multi_avx2(queries, block, dim, bounds, out) },
            _ => super::l2_sq_multi_impl(queries, block, dim, bounds, out),
        }
    }

    #[inline]
    pub(super) fn weighted_multi(
        weights: &[f64],
        w_stride: usize,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe {
                weighted_multi_avx512(weights, w_stride, queries, block, dim, bounds, out)
            },
            AVX2 => unsafe {
                weighted_multi_avx2(weights, w_stride, queries, block, dim, bounds, out)
            },
            _ => super::weighted_sq_multi_impl(weights, w_stride, queries, block, dim, bounds, out),
        }
    }

    #[inline]
    pub(super) fn l2_f32(query: &[f32], block: &[f32], dim: usize, bound: f32, out: &mut [f32]) {
        match (level(), has_fma()) {
            // SAFETY: the matching CPU features were detected above.
            (AVX512 | AVX2, true) => unsafe {
                super::f32_intr::l2_sq_block(query, block, dim, bound, out)
            },
            (AVX512, false) => unsafe { l2_f32_avx512(query, block, dim, bound, out) },
            (AVX2, false) => unsafe { l2_f32_avx2(query, block, dim, bound, out) },
            _ => super::f32_plain::l2_sq_block(query, block, dim, bound, out),
        }
    }

    #[inline]
    pub(super) fn weighted_f32(
        weights: &[f32],
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        match (level(), has_fma()) {
            // SAFETY: the matching CPU features were detected above.
            (AVX512 | AVX2, true) => unsafe {
                super::f32_intr::weighted_sq_block(weights, query, block, dim, bound, out)
            },
            (AVX512, false) => unsafe {
                weighted_f32_avx512(weights, query, block, dim, bound, out)
            },
            (AVX2, false) => unsafe { weighted_f32_avx2(weights, query, block, dim, bound, out) },
            _ => super::f32_plain::weighted_sq_block(weights, query, block, dim, bound, out),
        }
    }

    #[inline]
    pub(super) fn l2_multi_f32(
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        match (level(), has_fma()) {
            // SAFETY: the matching CPU features were detected above.
            (AVX512 | AVX2, true) => unsafe {
                super::f32_intr::l2_sq_multi(queries, block, dim, bounds, out)
            },
            (AVX512, false) => unsafe { l2_multi_f32_avx512(queries, block, dim, bounds, out) },
            (AVX2, false) => unsafe { l2_multi_f32_avx2(queries, block, dim, bounds, out) },
            _ => super::f32_plain::l2_sq_multi(queries, block, dim, bounds, out),
        }
    }

    #[inline]
    pub(super) fn weighted_multi_f32(
        weights: &[f32],
        w_stride: usize,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        match (level(), has_fma()) {
            // SAFETY: the matching CPU features were detected above.
            (AVX512 | AVX2, true) => unsafe {
                super::f32_intr::weighted_sq_multi(
                    weights, w_stride, queries, block, dim, bounds, out,
                )
            },
            (AVX512, false) => unsafe {
                weighted_multi_f32_avx512(weights, w_stride, queries, block, dim, bounds, out)
            },
            (AVX2, false) => unsafe {
                weighted_multi_f32_avx2(weights, w_stride, queries, block, dim, bounds, out)
            },
            _ => super::f32_plain::weighted_sq_multi(
                weights, w_stride, queries, block, dim, bounds, out,
            ),
        }
    }
}

/// Squared-Euclidean keys for a row-major block.
pub(crate) fn l2_sq_block(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::l2(query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        l2_sq_block_impl(query, block, dim, bound, out)
    }
}

/// Weighted squared-Euclidean keys for a row-major block.
pub(crate) fn weighted_sq_block(
    weights: &[f64],
    query: &[f64],
    block: &[f64],
    dim: usize,
    bound: f64,
    out: &mut [f64],
) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(weights.len(), dim);
    debug_assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::weighted(weights, query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        weighted_sq_block_impl(weights, query, block, dim, bound, out)
    }
}

/// Squared-Euclidean keys for `Q` queries against one row-major block in
/// a single pass (each block row read once for all queries). `queries`
/// is `Q × dim`, `bounds` is `Q` per-query key-space thresholds, `out`
/// is `Q × rows` row-major per query.
pub(crate) fn l2_sq_multi_block(
    queries: &[f64],
    block: &[f64],
    dim: usize,
    bounds: &[f64],
    out: &mut [f64],
) {
    let nq = bounds.len();
    debug_assert_eq!(queries.len(), nq * dim);
    debug_assert_eq!(out.len() * dim, nq * block.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::l2_multi(queries, block, dim, bounds, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        l2_sq_multi_impl(queries, block, dim, bounds, out)
    }
}

/// Weighted squared-Euclidean keys for `Q` queries against one block in
/// a single pass. `w_stride = 0` shares one weight row across queries;
/// `w_stride = dim` gives each query its own row of `weights`.
pub(crate) fn weighted_sq_multi_block(
    weights: &[f64],
    w_stride: usize,
    queries: &[f64],
    block: &[f64],
    dim: usize,
    bounds: &[f64],
    out: &mut [f64],
) {
    let nq = bounds.len();
    debug_assert!(w_stride == 0 || w_stride == dim);
    debug_assert_eq!(queries.len(), nq * dim);
    debug_assert_eq!(weights.len(), if w_stride == 0 { dim } else { nq * dim });
    debug_assert_eq!(out.len() * dim, nq * block.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::weighted_multi(weights, w_stride, queries, block, dim, bounds, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        weighted_sq_multi_impl(weights, w_stride, queries, block, dim, bounds, out)
    }
}

/// Squared-Euclidean f32 keys for a row-major f32 block (the phase-1
/// filter of the f32-rescore scan).
pub(crate) fn l2_sq_block_f32(
    query: &[f32],
    block: &[f32],
    dim: usize,
    bound: f32,
    out: &mut [f32],
) {
    // Release-mode asserts: the intrinsic path below does unchecked
    // vector loads, so the length contract must hold even when
    // debug_asserts compile out. Checked once per block call.
    assert_eq!(query.len(), dim);
    assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::l2_f32(query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        f32_plain::l2_sq_block(query, block, dim, bound, out)
    }
}

/// Weighted squared-Euclidean f32 keys for a row-major f32 block.
pub(crate) fn weighted_sq_block_f32(
    weights: &[f32],
    query: &[f32],
    block: &[f32],
    dim: usize,
    bound: f32,
    out: &mut [f32],
) {
    // Release-mode asserts: see `l2_sq_block_f32`.
    assert_eq!(query.len(), dim);
    assert_eq!(weights.len(), dim);
    assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::weighted_f32(weights, query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        f32_plain::weighted_sq_block(weights, query, block, dim, bound, out)
    }
}

/// Squared-Euclidean f32 keys for `Q` queries against one f32 block in a
/// single pass (layouts as in [`l2_sq_multi_block`]).
pub(crate) fn l2_sq_multi_block_f32(
    queries: &[f32],
    block: &[f32],
    dim: usize,
    bounds: &[f32],
    out: &mut [f32],
) {
    let nq = bounds.len();
    // Release-mode asserts: see `l2_sq_block_f32`.
    assert_eq!(queries.len(), nq * dim);
    assert_eq!(out.len() * dim, nq * block.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::l2_multi_f32(queries, block, dim, bounds, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        f32_plain::l2_sq_multi(queries, block, dim, bounds, out)
    }
}

/// Weighted squared-Euclidean f32 keys for `Q` queries against one f32
/// block in a single pass (`w_stride` as in [`weighted_sq_multi_block`]).
pub(crate) fn weighted_sq_multi_block_f32(
    weights: &[f32],
    w_stride: usize,
    queries: &[f32],
    block: &[f32],
    dim: usize,
    bounds: &[f32],
    out: &mut [f32],
) {
    let nq = bounds.len();
    // Release-mode asserts: see `l2_sq_block_f32`.
    assert!(w_stride == 0 || w_stride == dim);
    assert_eq!(queries.len(), nq * dim);
    assert_eq!(weights.len(), if w_stride == 0 { dim } else { nq * dim });
    assert_eq!(out.len() * dim, nq * block.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::weighted_multi_f32(weights, w_stride, queries, block, dim, bounds, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        f32_plain::weighted_sq_multi(weights, w_stride, queries, block, dim, bounds, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_weighted(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
        w.iter()
            .zip(a.iter().zip(b.iter()))
            .map(|(w, (x, y))| w * (x - y) * (x - y))
            .sum()
    }

    #[test]
    fn rows_match_naive_all_dims() {
        for dim in [1, 3, 4, 7, 8, 9, 16, 17, 33, 64] {
            let q: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
            let r: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.7).cos()).collect();
            let w: Vec<f64> = (0..dim).map(|i| 0.5 + (i % 5) as f64).collect();
            let got = weighted_sq_row(&w, &q, &r);
            let want = naive_weighted(&w, &q, &r);
            assert!((got - want).abs() < 1e-12 * want.max(1.0), "dim {dim}");
            let got2 = l2_sq_row(&q, &r);
            let want2 = naive_weighted(&vec![1.0; dim], &q, &r);
            assert!((got2 - want2).abs() < 1e-12 * want2.max(1.0), "dim {dim}");
        }
    }

    #[test]
    fn blocks_match_rows() {
        let dim = 24;
        let rows = 19; // not a multiple of the unroll width
        let q: Vec<f64> = (0..dim).map(|i| i as f64 * 0.1).collect();
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.3).sin()).collect();
        let w: Vec<f64> = (0..dim).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut out = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, f64::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], l2_sq_row(&q, row));
        }
        weighted_sq_block(&w, &q, &block, dim, f64::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], weighted_sq_row(&w, &q, row));
        }
    }

    #[test]
    fn multi_blocks_match_single_query_blocks() {
        let dim = 24;
        let rows = 19;
        let nq = 5;
        let queries: Vec<f64> = (0..nq * dim).map(|i| (i as f64 * 0.13).cos()).collect();
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.3).sin()).collect();
        let shared_w: Vec<f64> = (0..dim).map(|i| 1.0 + (i % 3) as f64).collect();
        let per_q_w: Vec<f64> = (0..nq * dim).map(|i| 0.5 + (i % 7) as f64).collect();
        let bounds = vec![f64::INFINITY; nq];
        let mut single = vec![0.0; rows];
        // L2 multi vs per-query single blocks: bit-identical.
        let mut multi = vec![0.0; nq * rows];
        l2_sq_multi_block(&queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            l2_sq_block(
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f64::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "l2 q{q}");
        }
        // Weighted multi, shared weights (stride 0).
        weighted_sq_multi_block(&shared_w, 0, &queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            weighted_sq_block(
                &shared_w,
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f64::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "shared q{q}");
        }
        // Weighted multi, per-query weights (stride dim).
        weighted_sq_multi_block(&per_q_w, dim, &queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            weighted_sq_block(
                &per_q_w[q * dim..(q + 1) * dim],
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f64::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "per-q q{q}");
        }
    }

    #[test]
    fn multi_blocks_respect_per_query_bounds() {
        let dim = 96; // > SEGMENT so the bounded path engages
        let rows = 16;
        let nq = 3;
        let queries = vec![0.0; nq * dim];
        let block: Vec<f64> = (0..rows * dim).map(|i| (i % 13) as f64 * 0.21).collect();
        let mut exact = vec![0.0; nq * rows];
        l2_sq_multi_block(&queries, &block, dim, &[f64::INFINITY; 3], &mut exact);
        // Distinct bound per query: tight, median, infinite.
        let mut sorted: Vec<f64> = exact[..rows].to_vec();
        sorted.sort_by(f64::total_cmp);
        let bounds = [sorted[2], sorted[rows / 2], f64::INFINITY];
        let mut bounded = vec![0.0; nq * rows];
        l2_sq_multi_block(&queries, &block, dim, &bounds, &mut bounded);
        for q in 0..nq {
            for r in 0..rows {
                let (e, b) = (exact[q * rows + r], bounded[q * rows + r]);
                if e <= bounds[q] {
                    assert_eq!(e, b, "q{q} r{r}: rows within the bound must be exact");
                } else {
                    assert!(
                        b > bounds[q],
                        "q{q} r{r}: abandoned rows stay over the bound"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_rows_approximate_f64_rows() {
        for dim in [1, 3, 8, 15, 16, 17, 33, 64, 96] {
            let q: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
            let r: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.7).cos()).collect();
            let w: Vec<f64> = (0..dim).map(|i| 0.5 + (i % 5) as f64).collect();
            let q32: Vec<f32> = q.iter().map(|&v| v as f32).collect();
            let r32: Vec<f32> = r.iter().map(|&v| v as f32).collect();
            let w32: Vec<f32> = w.iter().map(|&v| v as f32).collect();
            // The portable chain and whatever variant the host
            // dispatches (possibly the FMA intrinsics) both stay within
            // f32 rounding of the f64 reference.
            let mut dispatched = [0.0f32; 1];
            weighted_sq_block_f32(&w32, &q32, &r32, dim, f32::INFINITY, &mut dispatched);
            for (name, approx) in [
                ("plain", f32_plain::weighted_sq_row(&w32, &q32, &r32)),
                ("dispatched", dispatched[0]),
            ] {
                let exact = weighted_sq_row(&w, &q, &r);
                assert!(
                    (exact - approx as f64).abs() <= 1e-4 * exact.max(1.0),
                    "dim {dim} {name}: f32 {approx} vs f64 {exact}"
                );
            }
            l2_sq_block_f32(&q32, &r32, dim, f32::INFINITY, &mut dispatched);
            for (name, approx) in [
                ("plain", f32_plain::l2_sq_row(&q32, &r32)),
                ("dispatched", dispatched[0]),
            ] {
                let exact = l2_sq_row(&q, &r);
                assert!(
                    (exact - approx as f64).abs() <= 1e-4 * exact.max(1.0),
                    "dim {dim} {name}: l2 f32 {approx} vs f64 {exact}"
                );
            }
        }
    }

    #[test]
    fn f32_blocks_match_single_row_blocks() {
        // The dispatched block kernel must give every row the same key a
        // one-row block call gives it (whatever ISA/FMA variant the host
        // selected — both calls go through the same dispatch).
        let dim = 24;
        let rows = 19;
        let q: Vec<f32> = (0..dim).map(|i| i as f32 * 0.1).collect();
        let block: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.3).sin()).collect();
        let w: Vec<f32> = (0..dim).map(|i| 1.0 + (i % 3) as f32).collect();
        let mut out = vec![0.0f32; rows];
        let mut one = [0.0f32; 1];
        l2_sq_block_f32(&q, &block, dim, f32::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            l2_sq_block_f32(&q, row, dim, f32::INFINITY, &mut one);
            assert_eq!(out[i], one[0]);
        }
        weighted_sq_block_f32(&w, &q, &block, dim, f32::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            weighted_sq_block_f32(&w, &q, row, dim, f32::INFINITY, &mut one);
            assert_eq!(out[i], one[0]);
        }
    }

    #[test]
    fn f32_multi_blocks_match_single_query_blocks() {
        let dim = 24;
        let rows = 19;
        let nq = 5;
        let queries: Vec<f32> = (0..nq * dim).map(|i| (i as f32 * 0.13).cos()).collect();
        let block: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.3).sin()).collect();
        let shared_w: Vec<f32> = (0..dim).map(|i| 1.0 + (i % 3) as f32).collect();
        let per_q_w: Vec<f32> = (0..nq * dim).map(|i| 0.5 + (i % 7) as f32).collect();
        let bounds = vec![f32::INFINITY; nq];
        let mut single = vec![0.0f32; rows];
        let mut multi = vec![0.0f32; nq * rows];
        l2_sq_multi_block_f32(&queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            l2_sq_block_f32(
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f32::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "l2 q{q}");
        }
        weighted_sq_multi_block_f32(&shared_w, 0, &queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            weighted_sq_block_f32(
                &shared_w,
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f32::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "shared q{q}");
        }
        weighted_sq_multi_block_f32(&per_q_w, dim, &queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            weighted_sq_block_f32(
                &per_q_w[q * dim..(q + 1) * dim],
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f32::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "per-q q{q}");
        }
    }

    #[test]
    fn f32_abandoned_rows_are_infinite_never_understated() {
        let dim = 96; // > SEGMENT so the bounded path engages
        let rows = 32;
        let q = vec![0.0f32; dim];
        let block: Vec<f32> = (0..rows * dim).map(|i| (i % 13) as f32 * 0.21).collect();
        let mut exact = vec![0.0f32; rows];
        l2_sq_block_f32(&q, &block, dim, f32::INFINITY, &mut exact);
        let bound = {
            let mut s = exact.clone();
            s.sort_by(f32::total_cmp);
            s[rows / 2]
        };
        let mut bounded = vec![0.0f32; rows];
        l2_sq_block_f32(&q, &block, dim, bound, &mut bounded);
        for (e, b) in exact.iter().zip(bounded.iter()) {
            if *e <= bound {
                assert_eq!(e, b, "rows within the bound must be exact");
            } else {
                assert!(*b > bound, "abandoned rows must stay over the bound");
            }
        }
    }

    #[test]
    fn abandoned_rows_are_infinite_never_understated() {
        let dim = 48;
        let rows = 32;
        let q = vec![0.0; dim];
        let block: Vec<f64> = (0..rows * dim).map(|i| (i % 13) as f64 * 0.21).collect();
        let mut exact = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, f64::INFINITY, &mut exact);
        let bound = {
            let mut s = exact.clone();
            s.sort_by(f64::total_cmp);
            s[rows / 2]
        };
        let mut bounded = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, bound, &mut bounded);
        for (e, b) in exact.iter().zip(bounded.iter()) {
            if *e <= bound {
                assert_eq!(e, b, "rows within the bound must be exact");
            } else {
                assert!(*b > bound, "abandoned rows must stay over the bound");
            }
        }
    }
}
