//! Blocked distance kernels shared by the [`super::Distance`]
//! implementations.
//!
//! The per-row inner loops are unrolled 8-wide over independent
//! accumulators — enough parallel chains for LLVM to emit full-width SIMD
//! adds/multiplies and keep the out-of-order window busy. All kernels
//! compute *surrogate keys* (squared-form sums); the caller recovers true
//! distances via `Distance::finish_key` for final winners only.
//!
//! Early abandonment: the accumulated sums are non-decreasing in the
//! number of components, so once a row's partial sum exceeds the caller's
//! pruning bound the row can never enter the k-best — the kernels then
//! stop and report `f64::INFINITY` for it. Segments of [`SEGMENT`]
//! components keep the bound check off the hot inner loop.

/// Unroll width of the inner component loops.
pub(crate) const LANES: usize = 8;

/// Components accumulated between early-abandon bound checks.
const SEGMENT: usize = 64;

/// Sum of `w·(q − r)²` over one segment (8-wide unrolled;
/// `chunks_exact` keeps the hot loop free of bounds checks).
#[inline(always)]
fn weighted_sq_seg(w: &[f64], q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let (w, r) = (&w[..n], &r[..n]);
    let mut acc = [0.0f64; LANES];
    let mut qc = q.chunks_exact(LANES);
    let mut wc = w.chunks_exact(LANES);
    let mut rc = r.chunks_exact(LANES);
    for ((qs, ws), rs) in (&mut qc).zip(&mut wc).zip(&mut rc) {
        for l in 0..LANES {
            let d = qs[l] - rs[l];
            acc[l] += ws[l] * d * d;
        }
    }
    let mut tail = 0.0;
    for ((x, w), y) in qc
        .remainder()
        .iter()
        .zip(wc.remainder().iter())
        .zip(rc.remainder().iter())
    {
        let d = x - y;
        tail += w * d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Sum of `(q − r)²` over one segment (8-wide unrolled).
#[inline(always)]
fn l2_sq_seg(q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let r = &r[..n];
    let mut acc = [0.0f64; LANES];
    let mut qc = q.chunks_exact(LANES);
    let mut rc = r.chunks_exact(LANES);
    for (qs, rs) in (&mut qc).zip(&mut rc) {
        for l in 0..LANES {
            let d = qs[l] - rs[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in qc.remainder().iter().zip(rc.remainder().iter()) {
        let d = x - y;
        tail += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

// The row functions below all accumulate segment-by-segment so that the
// bounded and unbounded paths produce BIT-IDENTICAL sums for rows that
// survive the bound — engines mixing the two paths (trees push exact
// keys, scans may abandon) must never disagree on a shared candidate.

/// Sum of `w·(q − r)²` over one row.
#[inline(always)]
pub(crate) fn weighted_sq_row(w: &[f64], q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
        i = end;
    }
    acc
}

/// Sum of `(q − r)²` over one row.
#[inline(always)]
pub(crate) fn l2_sq_row(q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += l2_sq_seg(&q[i..end], &r[i..end]);
        i = end;
    }
    acc
}

/// One row with early abandonment against `bound` (checked every
/// [`SEGMENT`] components). Returns `f64::INFINITY` when abandoned.
#[inline(always)]
fn weighted_sq_row_bounded(w: &[f64], q: &[f64], r: &[f64], bound: f64) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
        if acc > bound {
            return f64::INFINITY;
        }
        i = end;
    }
    acc
}

#[inline(always)]
fn l2_sq_row_bounded(q: &[f64], r: &[f64], bound: f64) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += l2_sq_seg(&q[i..end], &r[i..end]);
        if acc > bound {
            return f64::INFINITY;
        }
        i = end;
    }
    acc
}

/// Squared-Euclidean keys for a row-major block (portable body).
///
/// Abandonment only pays once a row spans multiple segments; exact keys
/// are cheaper than branchy ones for short rows. The mode branch is
/// hoisted out of the row loop.
#[inline(always)]
fn l2_sq_block_impl(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
    if bound.is_finite() && dim > SEGMENT {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = l2_sq_row_bounded(query, row, bound);
        }
    } else {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = l2_sq_row(query, row);
        }
    }
}

/// Weighted squared-Euclidean keys for a row-major block (portable body).
#[inline(always)]
fn weighted_sq_block_impl(
    weights: &[f64],
    query: &[f64],
    block: &[f64],
    dim: usize,
    bound: f64,
    out: &mut [f64],
) {
    if bound.is_finite() && dim > SEGMENT {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = weighted_sq_row_bounded(weights, query, row, bound);
        }
    } else {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = weighted_sq_row(weights, query, row);
        }
    }
}

// ---------------------------------------------------------------------
// ISA multiversioning.
//
// The default x86-64 target only assumes SSE2 (two f64 lanes). The block
// entry points below re-compile the *same* portable bodies with wider
// vector features enabled and select a version once at runtime. Because
// every version executes the identical lane-structured code (no FMA
// contraction, no reassociation — vectorization maps accumulator lanes
// 1:1), all versions produce bit-identical results; only throughput
// changes.

#[cfg(target_arch = "x86_64")]
mod dispatch {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const PORTABLE: u8 = 1;
    const AVX2: u8 = 2;
    const AVX512: u8 = 3;

    static LEVEL: AtomicU8 = AtomicU8::new(UNKNOWN);

    #[inline]
    pub(super) fn level() -> u8 {
        match LEVEL.load(Ordering::Relaxed) {
            UNKNOWN => {
                let l = if is_x86_feature_detected!("avx512f") {
                    AVX512
                } else if is_x86_feature_detected!("avx2") {
                    AVX2
                } else {
                    PORTABLE
                };
                LEVEL.store(l, Ordering::Relaxed);
                l
            }
            l => l,
        }
    }

    macro_rules! isa_versions {
        ($feature:literal, $l2:ident, $weighted:ident) => {
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $l2(
                query: &[f64],
                block: &[f64],
                dim: usize,
                bound: f64,
                out: &mut [f64],
            ) {
                super::l2_sq_block_impl(query, block, dim, bound, out);
            }

            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $weighted(
                weights: &[f64],
                query: &[f64],
                block: &[f64],
                dim: usize,
                bound: f64,
                out: &mut [f64],
            ) {
                super::weighted_sq_block_impl(weights, query, block, dim, bound, out);
            }
        };
    }

    isa_versions!("avx2", l2_avx2, weighted_avx2);
    isa_versions!("avx512f", l2_avx512, weighted_avx512);

    #[inline]
    pub(super) fn l2(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { l2_avx512(query, block, dim, bound, out) },
            AVX2 => unsafe { l2_avx2(query, block, dim, bound, out) },
            _ => super::l2_sq_block_impl(query, block, dim, bound, out),
        }
    }

    #[inline]
    pub(super) fn weighted(
        weights: &[f64],
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { weighted_avx512(weights, query, block, dim, bound, out) },
            AVX2 => unsafe { weighted_avx2(weights, query, block, dim, bound, out) },
            _ => super::weighted_sq_block_impl(weights, query, block, dim, bound, out),
        }
    }
}

/// Squared-Euclidean keys for a row-major block.
pub(crate) fn l2_sq_block(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::l2(query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        l2_sq_block_impl(query, block, dim, bound, out)
    }
}

/// Weighted squared-Euclidean keys for a row-major block.
pub(crate) fn weighted_sq_block(
    weights: &[f64],
    query: &[f64],
    block: &[f64],
    dim: usize,
    bound: f64,
    out: &mut [f64],
) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(weights.len(), dim);
    debug_assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::weighted(weights, query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        weighted_sq_block_impl(weights, query, block, dim, bound, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_weighted(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
        w.iter()
            .zip(a.iter().zip(b.iter()))
            .map(|(w, (x, y))| w * (x - y) * (x - y))
            .sum()
    }

    #[test]
    fn rows_match_naive_all_dims() {
        for dim in [1, 3, 4, 7, 8, 9, 16, 17, 33, 64] {
            let q: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
            let r: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.7).cos()).collect();
            let w: Vec<f64> = (0..dim).map(|i| 0.5 + (i % 5) as f64).collect();
            let got = weighted_sq_row(&w, &q, &r);
            let want = naive_weighted(&w, &q, &r);
            assert!((got - want).abs() < 1e-12 * want.max(1.0), "dim {dim}");
            let got2 = l2_sq_row(&q, &r);
            let want2 = naive_weighted(&vec![1.0; dim], &q, &r);
            assert!((got2 - want2).abs() < 1e-12 * want2.max(1.0), "dim {dim}");
        }
    }

    #[test]
    fn blocks_match_rows() {
        let dim = 24;
        let rows = 19; // not a multiple of the unroll width
        let q: Vec<f64> = (0..dim).map(|i| i as f64 * 0.1).collect();
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.3).sin()).collect();
        let w: Vec<f64> = (0..dim).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut out = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, f64::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], l2_sq_row(&q, row));
        }
        weighted_sq_block(&w, &q, &block, dim, f64::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], weighted_sq_row(&w, &q, row));
        }
    }

    #[test]
    fn abandoned_rows_are_infinite_never_understated() {
        let dim = 48;
        let rows = 32;
        let q = vec![0.0; dim];
        let block: Vec<f64> = (0..rows * dim).map(|i| (i % 13) as f64 * 0.21).collect();
        let mut exact = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, f64::INFINITY, &mut exact);
        let bound = {
            let mut s = exact.clone();
            s.sort_by(f64::total_cmp);
            s[rows / 2]
        };
        let mut bounded = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, bound, &mut bounded);
        for (e, b) in exact.iter().zip(bounded.iter()) {
            if *e <= bound {
                assert_eq!(e, b, "rows within the bound must be exact");
            } else {
                assert!(*b > bound, "abandoned rows must stay over the bound");
            }
        }
    }
}
