//! Blocked distance kernels shared by the [`super::Distance`]
//! implementations.
//!
//! The per-row inner loops are unrolled 8-wide over independent
//! accumulators — enough parallel chains for LLVM to emit full-width SIMD
//! adds/multiplies and keep the out-of-order window busy. All kernels
//! compute *surrogate keys* (squared-form sums); the caller recovers true
//! distances via `Distance::finish_key` for final winners only.
//!
//! Early abandonment: the accumulated sums are non-decreasing in the
//! number of components, so once a row's partial sum exceeds the caller's
//! pruning bound the row can never enter the k-best — the kernels then
//! stop and report `f64::INFINITY` for it. Segments of [`SEGMENT`]
//! components keep the bound check off the hot inner loop.

/// Unroll width of the inner component loops.
pub(crate) const LANES: usize = 8;

/// Components accumulated between early-abandon bound checks.
const SEGMENT: usize = 64;

/// Sum of `w·(q − r)²` over one segment (8-wide unrolled;
/// `chunks_exact` keeps the hot loop free of bounds checks).
#[inline(always)]
fn weighted_sq_seg(w: &[f64], q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let (w, r) = (&w[..n], &r[..n]);
    let mut acc = [0.0f64; LANES];
    let mut qc = q.chunks_exact(LANES);
    let mut wc = w.chunks_exact(LANES);
    let mut rc = r.chunks_exact(LANES);
    for ((qs, ws), rs) in (&mut qc).zip(&mut wc).zip(&mut rc) {
        for l in 0..LANES {
            let d = qs[l] - rs[l];
            acc[l] += ws[l] * d * d;
        }
    }
    let mut tail = 0.0;
    for ((x, w), y) in qc
        .remainder()
        .iter()
        .zip(wc.remainder().iter())
        .zip(rc.remainder().iter())
    {
        let d = x - y;
        tail += w * d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Sum of `(q − r)²` over one segment (8-wide unrolled).
#[inline(always)]
fn l2_sq_seg(q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let r = &r[..n];
    let mut acc = [0.0f64; LANES];
    let mut qc = q.chunks_exact(LANES);
    let mut rc = r.chunks_exact(LANES);
    for (qs, rs) in (&mut qc).zip(&mut rc) {
        for l in 0..LANES {
            let d = qs[l] - rs[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in qc.remainder().iter().zip(rc.remainder().iter()) {
        let d = x - y;
        tail += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

// The row functions below all accumulate segment-by-segment so that the
// bounded and unbounded paths produce BIT-IDENTICAL sums for rows that
// survive the bound — engines mixing the two paths (trees push exact
// keys, scans may abandon) must never disagree on a shared candidate.

/// Sum of `w·(q − r)²` over one row.
#[inline(always)]
pub(crate) fn weighted_sq_row(w: &[f64], q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
        i = end;
    }
    acc
}

/// Sum of `(q − r)²` over one row.
#[inline(always)]
pub(crate) fn l2_sq_row(q: &[f64], r: &[f64]) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += l2_sq_seg(&q[i..end], &r[i..end]);
        i = end;
    }
    acc
}

/// One row with early abandonment against `bound` (checked every
/// [`SEGMENT`] components). Returns `f64::INFINITY` when abandoned.
#[inline(always)]
fn weighted_sq_row_bounded(w: &[f64], q: &[f64], r: &[f64], bound: f64) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += weighted_sq_seg(&w[i..end], &q[i..end], &r[i..end]);
        if acc > bound {
            return f64::INFINITY;
        }
        i = end;
    }
    acc
}

#[inline(always)]
fn l2_sq_row_bounded(q: &[f64], r: &[f64], bound: f64) -> f64 {
    let n = q.len();
    let mut acc = 0.0;
    let mut i = 0;
    while i < n {
        let end = (i + SEGMENT).min(n);
        acc += l2_sq_seg(&q[i..end], &r[i..end]);
        if acc > bound {
            return f64::INFINITY;
        }
        i = end;
    }
    acc
}

/// Per-(query, row) computation shared by the single- and multi-query
/// block kernels: bounded accumulation when a finite bound can pay for
/// its branches, exact accumulation otherwise. Rows that survive a bound
/// get BIT-IDENTICAL sums on either path (see above), so multi-query
/// scans carrying per-query bounds agree exactly with per-query scans.
#[inline(always)]
fn l2_sq_pair(q: &[f64], r: &[f64], bound: f64) -> f64 {
    if bound.is_finite() && q.len() > SEGMENT {
        l2_sq_row_bounded(q, r, bound)
    } else {
        l2_sq_row(q, r)
    }
}

#[inline(always)]
fn weighted_sq_pair(w: &[f64], q: &[f64], r: &[f64], bound: f64) -> f64 {
    if bound.is_finite() && q.len() > SEGMENT {
        weighted_sq_row_bounded(w, q, r, bound)
    } else {
        weighted_sq_row(w, q, r)
    }
}

/// Squared-Euclidean keys for a row-major block (portable body).
///
/// Abandonment only pays once a row spans multiple segments; exact keys
/// are cheaper than branchy ones for short rows. The mode branch is
/// hoisted out of the row loop.
#[inline(always)]
fn l2_sq_block_impl(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
    if bound.is_finite() && dim > SEGMENT {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = l2_sq_row_bounded(query, row, bound);
        }
    } else {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = l2_sq_row(query, row);
        }
    }
}

/// Weighted squared-Euclidean keys for a row-major block (portable body).
#[inline(always)]
fn weighted_sq_block_impl(
    weights: &[f64],
    query: &[f64],
    block: &[f64],
    dim: usize,
    bound: f64,
    out: &mut [f64],
) {
    if bound.is_finite() && dim > SEGMENT {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = weighted_sq_row_bounded(weights, query, row, bound);
        }
    } else {
        for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
            *slot = weighted_sq_row(weights, query, row);
        }
    }
}

/// Squared-Euclidean keys for Q queries × one row-major block (portable
/// body). `queries` is `Q × dim` row-major; `bounds` holds one pruning
/// threshold per query; `out` is `Q × rows` row-major per query
/// (`out[q·rows + r]`).
///
/// The row loop is OUTER: each block row is loaded once and scored
/// against every query while it sits in registers/L1, so collection
/// bytes per query drop by ~Q× versus Q separate block passes. Each
/// (query, row) pair accumulates exactly like the single-query kernel,
/// so surviving keys are bit-identical to Q independent passes.
#[inline(always)]
fn l2_sq_multi_impl(queries: &[f64], block: &[f64], dim: usize, bounds: &[f64], out: &mut [f64]) {
    let rows = block.len().checked_div(dim).unwrap_or(0);
    for (r, row) in block.chunks_exact(dim).enumerate() {
        for (q, query) in queries.chunks_exact(dim).enumerate() {
            out[q * rows + r] = l2_sq_pair(query, row, bounds[q]);
        }
    }
}

/// Weighted squared-Euclidean keys for Q queries × one block (portable
/// body). `w_stride` selects the weight layout: `0` shares one `dim`-long
/// weight row across all queries (one metric, many queries), `dim` gives
/// each query its own weight row (per-session learned metrics).
#[inline(always)]
fn weighted_sq_multi_impl(
    weights: &[f64],
    w_stride: usize,
    queries: &[f64],
    block: &[f64],
    dim: usize,
    bounds: &[f64],
    out: &mut [f64],
) {
    let rows = block.len().checked_div(dim).unwrap_or(0);
    for (r, row) in block.chunks_exact(dim).enumerate() {
        for (q, query) in queries.chunks_exact(dim).enumerate() {
            let w = &weights[q * w_stride..q * w_stride + dim];
            out[q * rows + r] = weighted_sq_pair(w, query, row, bounds[q]);
        }
    }
}

// ---------------------------------------------------------------------
// ISA multiversioning.
//
// The default x86-64 target only assumes SSE2 (two f64 lanes). The block
// entry points below re-compile the *same* portable bodies with wider
// vector features enabled and select a version once at runtime. Because
// every version executes the identical lane-structured code (no FMA
// contraction, no reassociation — vectorization maps accumulator lanes
// 1:1), all versions produce bit-identical results; only throughput
// changes.

#[cfg(target_arch = "x86_64")]
mod dispatch {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const PORTABLE: u8 = 1;
    const AVX2: u8 = 2;
    const AVX512: u8 = 3;

    static LEVEL: AtomicU8 = AtomicU8::new(UNKNOWN);

    #[inline]
    pub(super) fn level() -> u8 {
        match LEVEL.load(Ordering::Relaxed) {
            UNKNOWN => {
                let l = if is_x86_feature_detected!("avx512f") {
                    AVX512
                } else if is_x86_feature_detected!("avx2") {
                    AVX2
                } else {
                    PORTABLE
                };
                LEVEL.store(l, Ordering::Relaxed);
                l
            }
            l => l,
        }
    }

    macro_rules! isa_versions {
        ($feature:literal, $l2:ident, $weighted:ident, $l2_multi:ident, $weighted_multi:ident) => {
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $l2(
                query: &[f64],
                block: &[f64],
                dim: usize,
                bound: f64,
                out: &mut [f64],
            ) {
                super::l2_sq_block_impl(query, block, dim, bound, out);
            }

            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $weighted(
                weights: &[f64],
                query: &[f64],
                block: &[f64],
                dim: usize,
                bound: f64,
                out: &mut [f64],
            ) {
                super::weighted_sq_block_impl(weights, query, block, dim, bound, out);
            }

            #[target_feature(enable = $feature)]
            pub(super) unsafe fn $l2_multi(
                queries: &[f64],
                block: &[f64],
                dim: usize,
                bounds: &[f64],
                out: &mut [f64],
            ) {
                super::l2_sq_multi_impl(queries, block, dim, bounds, out);
            }

            #[target_feature(enable = $feature)]
            #[allow(clippy::too_many_arguments)]
            pub(super) unsafe fn $weighted_multi(
                weights: &[f64],
                w_stride: usize,
                queries: &[f64],
                block: &[f64],
                dim: usize,
                bounds: &[f64],
                out: &mut [f64],
            ) {
                super::weighted_sq_multi_impl(weights, w_stride, queries, block, dim, bounds, out);
            }
        };
    }

    isa_versions!(
        "avx2",
        l2_avx2,
        weighted_avx2,
        l2_multi_avx2,
        weighted_multi_avx2
    );
    isa_versions!(
        "avx512f",
        l2_avx512,
        weighted_avx512,
        l2_multi_avx512,
        weighted_multi_avx512
    );

    #[inline]
    pub(super) fn l2(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { l2_avx512(query, block, dim, bound, out) },
            AVX2 => unsafe { l2_avx2(query, block, dim, bound, out) },
            _ => super::l2_sq_block_impl(query, block, dim, bound, out),
        }
    }

    #[inline]
    pub(super) fn weighted(
        weights: &[f64],
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { weighted_avx512(weights, query, block, dim, bound, out) },
            AVX2 => unsafe { weighted_avx2(weights, query, block, dim, bound, out) },
            _ => super::weighted_sq_block_impl(weights, query, block, dim, bound, out),
        }
    }

    #[inline]
    pub(super) fn l2_multi(
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe { l2_multi_avx512(queries, block, dim, bounds, out) },
            AVX2 => unsafe { l2_multi_avx2(queries, block, dim, bounds, out) },
            _ => super::l2_sq_multi_impl(queries, block, dim, bounds, out),
        }
    }

    #[inline]
    pub(super) fn weighted_multi(
        weights: &[f64],
        w_stride: usize,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        match level() {
            // SAFETY: the matching CPU feature was detected above.
            AVX512 => unsafe {
                weighted_multi_avx512(weights, w_stride, queries, block, dim, bounds, out)
            },
            AVX2 => unsafe {
                weighted_multi_avx2(weights, w_stride, queries, block, dim, bounds, out)
            },
            _ => super::weighted_sq_multi_impl(weights, w_stride, queries, block, dim, bounds, out),
        }
    }
}

/// Squared-Euclidean keys for a row-major block.
pub(crate) fn l2_sq_block(query: &[f64], block: &[f64], dim: usize, bound: f64, out: &mut [f64]) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::l2(query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        l2_sq_block_impl(query, block, dim, bound, out)
    }
}

/// Weighted squared-Euclidean keys for a row-major block.
pub(crate) fn weighted_sq_block(
    weights: &[f64],
    query: &[f64],
    block: &[f64],
    dim: usize,
    bound: f64,
    out: &mut [f64],
) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(weights.len(), dim);
    debug_assert_eq!(block.len(), dim * out.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::weighted(weights, query, block, dim, bound, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        weighted_sq_block_impl(weights, query, block, dim, bound, out)
    }
}

/// Squared-Euclidean keys for `Q` queries against one row-major block in
/// a single pass (each block row read once for all queries). `queries`
/// is `Q × dim`, `bounds` is `Q` per-query key-space thresholds, `out`
/// is `Q × rows` row-major per query.
pub(crate) fn l2_sq_multi_block(
    queries: &[f64],
    block: &[f64],
    dim: usize,
    bounds: &[f64],
    out: &mut [f64],
) {
    let nq = bounds.len();
    debug_assert_eq!(queries.len(), nq * dim);
    debug_assert_eq!(out.len() * dim, nq * block.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::l2_multi(queries, block, dim, bounds, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        l2_sq_multi_impl(queries, block, dim, bounds, out)
    }
}

/// Weighted squared-Euclidean keys for `Q` queries against one block in
/// a single pass. `w_stride = 0` shares one weight row across queries;
/// `w_stride = dim` gives each query its own row of `weights`.
pub(crate) fn weighted_sq_multi_block(
    weights: &[f64],
    w_stride: usize,
    queries: &[f64],
    block: &[f64],
    dim: usize,
    bounds: &[f64],
    out: &mut [f64],
) {
    let nq = bounds.len();
    debug_assert!(w_stride == 0 || w_stride == dim);
    debug_assert_eq!(queries.len(), nq * dim);
    debug_assert_eq!(weights.len(), if w_stride == 0 { dim } else { nq * dim });
    debug_assert_eq!(out.len() * dim, nq * block.len());
    #[cfg(target_arch = "x86_64")]
    {
        dispatch::weighted_multi(weights, w_stride, queries, block, dim, bounds, out)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        weighted_sq_multi_impl(weights, w_stride, queries, block, dim, bounds, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_weighted(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
        w.iter()
            .zip(a.iter().zip(b.iter()))
            .map(|(w, (x, y))| w * (x - y) * (x - y))
            .sum()
    }

    #[test]
    fn rows_match_naive_all_dims() {
        for dim in [1, 3, 4, 7, 8, 9, 16, 17, 33, 64] {
            let q: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
            let r: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.7).cos()).collect();
            let w: Vec<f64> = (0..dim).map(|i| 0.5 + (i % 5) as f64).collect();
            let got = weighted_sq_row(&w, &q, &r);
            let want = naive_weighted(&w, &q, &r);
            assert!((got - want).abs() < 1e-12 * want.max(1.0), "dim {dim}");
            let got2 = l2_sq_row(&q, &r);
            let want2 = naive_weighted(&vec![1.0; dim], &q, &r);
            assert!((got2 - want2).abs() < 1e-12 * want2.max(1.0), "dim {dim}");
        }
    }

    #[test]
    fn blocks_match_rows() {
        let dim = 24;
        let rows = 19; // not a multiple of the unroll width
        let q: Vec<f64> = (0..dim).map(|i| i as f64 * 0.1).collect();
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.3).sin()).collect();
        let w: Vec<f64> = (0..dim).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut out = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, f64::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], l2_sq_row(&q, row));
        }
        weighted_sq_block(&w, &q, &block, dim, f64::INFINITY, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[i], weighted_sq_row(&w, &q, row));
        }
    }

    #[test]
    fn multi_blocks_match_single_query_blocks() {
        let dim = 24;
        let rows = 19;
        let nq = 5;
        let queries: Vec<f64> = (0..nq * dim).map(|i| (i as f64 * 0.13).cos()).collect();
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.3).sin()).collect();
        let shared_w: Vec<f64> = (0..dim).map(|i| 1.0 + (i % 3) as f64).collect();
        let per_q_w: Vec<f64> = (0..nq * dim).map(|i| 0.5 + (i % 7) as f64).collect();
        let bounds = vec![f64::INFINITY; nq];
        let mut single = vec![0.0; rows];
        // L2 multi vs per-query single blocks: bit-identical.
        let mut multi = vec![0.0; nq * rows];
        l2_sq_multi_block(&queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            l2_sq_block(
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f64::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "l2 q{q}");
        }
        // Weighted multi, shared weights (stride 0).
        weighted_sq_multi_block(&shared_w, 0, &queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            weighted_sq_block(
                &shared_w,
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f64::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "shared q{q}");
        }
        // Weighted multi, per-query weights (stride dim).
        weighted_sq_multi_block(&per_q_w, dim, &queries, &block, dim, &bounds, &mut multi);
        for q in 0..nq {
            weighted_sq_block(
                &per_q_w[q * dim..(q + 1) * dim],
                &queries[q * dim..(q + 1) * dim],
                &block,
                dim,
                f64::INFINITY,
                &mut single,
            );
            assert_eq!(&multi[q * rows..(q + 1) * rows], &single[..], "per-q q{q}");
        }
    }

    #[test]
    fn multi_blocks_respect_per_query_bounds() {
        let dim = 96; // > SEGMENT so the bounded path engages
        let rows = 16;
        let nq = 3;
        let queries = vec![0.0; nq * dim];
        let block: Vec<f64> = (0..rows * dim).map(|i| (i % 13) as f64 * 0.21).collect();
        let mut exact = vec![0.0; nq * rows];
        l2_sq_multi_block(&queries, &block, dim, &[f64::INFINITY; 3], &mut exact);
        // Distinct bound per query: tight, median, infinite.
        let mut sorted: Vec<f64> = exact[..rows].to_vec();
        sorted.sort_by(f64::total_cmp);
        let bounds = [sorted[2], sorted[rows / 2], f64::INFINITY];
        let mut bounded = vec![0.0; nq * rows];
        l2_sq_multi_block(&queries, &block, dim, &bounds, &mut bounded);
        for q in 0..nq {
            for r in 0..rows {
                let (e, b) = (exact[q * rows + r], bounded[q * rows + r]);
                if e <= bounds[q] {
                    assert_eq!(e, b, "q{q} r{r}: rows within the bound must be exact");
                } else {
                    assert!(
                        b > bounds[q],
                        "q{q} r{r}: abandoned rows stay over the bound"
                    );
                }
            }
        }
    }

    #[test]
    fn abandoned_rows_are_infinite_never_understated() {
        let dim = 48;
        let rows = 32;
        let q = vec![0.0; dim];
        let block: Vec<f64> = (0..rows * dim).map(|i| (i % 13) as f64 * 0.21).collect();
        let mut exact = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, f64::INFINITY, &mut exact);
        let bound = {
            let mut s = exact.clone();
            s.sort_by(f64::total_cmp);
            s[rows / 2]
        };
        let mut bounded = vec![0.0; rows];
        l2_sq_block(&q, &block, dim, bound, &mut bounded);
        for (e, b) in exact.iter().zip(bounded.iter()) {
            if *e <= bound {
                assert_eq!(e, b, "rows within the bound must be exact");
            } else {
                assert!(*b > bound, "abandoned rows must stay over the bound");
            }
        }
    }
}
