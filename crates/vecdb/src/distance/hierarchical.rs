//! The Rui-Huang hierarchical similarity model \[RH00\] (paper §2).
//!
//! Objects are described by `F` *features* (e.g. color histogram, texture,
//! shape), each occupying a contiguous span of the flat feature vector.
//! The overall distance combines per-feature distances with feature-level
//! weights `uₑ`, while each feature's distance is itself a weighted
//! (diagonal-quadratic) form with component weights:
//!
//! ```text
//! d²(p, q) = Σₑ uₑ · dₑ²(p, q),    dₑ²  = Σ_{i ∈ span(e)} wᵢ·(pᵢ−qᵢ)²
//! ```
//!
//! Re-weighting then happens at both levels (see `fbp-feedback`): the
//! component weights within a feature by the `1/σ²` rule, the feature
//! weights by how well each feature's distance separates good matches.

use super::{kernels, Distance};
use crate::{Result, VecdbError};

/// A contiguous component span of one feature in the flat vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSpan {
    /// First component index.
    pub start: usize,
    /// One past the last component index.
    pub end: usize,
}

impl FeatureSpan {
    /// Construct a span (`start < end`).
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "empty feature span");
        FeatureSpan { start, end }
    }

    /// Components in the span.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Hierarchical weighted distance over a feature partition.
#[derive(Debug, Clone)]
pub struct HierarchicalDistance {
    spans: Vec<FeatureSpan>,
    /// Feature-level weights `uₑ` (one per span, positive).
    feature_weights: Vec<f64>,
    /// Component-level weights `wᵢ` (full dim, positive).
    component_weights: Vec<f64>,
    /// Flattened effective weights `uₑ·wᵢ`, precomputed so evaluation
    /// collapses to a single weighted-Euclidean kernel pass.
    effective_weights: Vec<f64>,
    /// f32-rounded effective weights for the mirror-scanning kernels
    /// (the rounding is part of [`Distance::f32_key_slack`]).
    effective_weights_f32: Vec<f32>,
    dim: usize,
}

impl HierarchicalDistance {
    /// Construct; spans must partition `0..dim` contiguously in order.
    pub fn new(
        spans: Vec<FeatureSpan>,
        feature_weights: Vec<f64>,
        component_weights: Vec<f64>,
    ) -> Result<Self> {
        if spans.is_empty() {
            return Err(VecdbError::BadParameters("no feature spans".into()));
        }
        if spans.len() != feature_weights.len() {
            return Err(VecdbError::BadParameters(format!(
                "{} spans but {} feature weights",
                spans.len(),
                feature_weights.len()
            )));
        }
        let mut expected_start = 0usize;
        for s in &spans {
            if s.start != expected_start {
                return Err(VecdbError::BadParameters(format!(
                    "spans must tile the vector: expected start {expected_start}, got {}",
                    s.start
                )));
            }
            expected_start = s.end;
        }
        let dim = expected_start;
        if component_weights.len() != dim {
            return Err(VecdbError::DimMismatch {
                expected: dim,
                got: component_weights.len(),
            });
        }
        if feature_weights
            .iter()
            .chain(component_weights.iter())
            .any(|w| !w.is_finite() || *w <= 0.0)
        {
            return Err(VecdbError::BadParameters(
                "all weights must be finite and positive".into(),
            ));
        }
        let mut effective_weights = vec![0.0; dim];
        for (e, span) in spans.iter().enumerate() {
            for i in span.start..span.end {
                effective_weights[i] = feature_weights[e] * component_weights[i];
            }
        }
        let effective_weights_f32 = effective_weights.iter().map(|&w| w as f32).collect();
        Ok(HierarchicalDistance {
            spans,
            feature_weights,
            component_weights,
            effective_weights,
            effective_weights_f32,
            dim,
        })
    }

    /// Uniform model: `F` equal spans over `dim` components, all weights 1.
    pub fn uniform(dim: usize, features: usize) -> Result<Self> {
        if features == 0 || !dim.is_multiple_of(features) {
            return Err(VecdbError::BadParameters(format!(
                "cannot split {dim} components into {features} equal features"
            )));
        }
        let per = dim / features;
        let spans = (0..features)
            .map(|f| FeatureSpan::new(f * per, (f + 1) * per))
            .collect();
        HierarchicalDistance::new(spans, vec![1.0; features], vec![1.0; dim])
    }

    /// Dimensionality of the flat vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature partition.
    pub fn spans(&self) -> &[FeatureSpan] {
        &self.spans
    }

    /// Feature-level weights.
    pub fn feature_weights(&self) -> &[f64] {
        &self.feature_weights
    }

    /// Component-level weights.
    pub fn component_weights(&self) -> &[f64] {
        &self.component_weights
    }

    /// Squared per-feature distance `dₑ²`.
    pub fn feature_dist_sq(&self, e: usize, a: &[f64], b: &[f64]) -> f64 {
        let span = &self.spans[e];
        let mut acc = 0.0;
        for i in span.start..span.end {
            let d = a[i] - b[i];
            acc += self.component_weights[i] * d * d;
        }
        acc
    }

    /// Full squared distance `Σₑ uₑ·dₑ²`. Reference per-span
    /// accumulation — the engines' ranking paths use the flattened
    /// effective weights through [`Distance::eval_key`] instead.
    #[inline]
    pub fn eval_sq(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.dim);
        debug_assert_eq!(b.len(), self.dim);
        let mut acc = 0.0;
        for (e, span) in self.spans.iter().enumerate() {
            let mut fe = 0.0;
            for i in span.start..span.end {
                let d = a[i] - b[i];
                fe += self.component_weights[i] * d * d;
            }
            acc += self.feature_weights[e] * fe;
        }
        acc
    }
}

impl Distance for HierarchicalDistance {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_sq(a, b).sqrt()
    }

    fn name(&self) -> &str {
        "hierarchical"
    }

    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        // Effective per-component weight is uₑ·wᵢ; min/max over all
        // components bound the form exactly like weighted Euclidean.
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for &w in &self.effective_weights {
            lo = lo.min(w);
            hi = hi.max(w);
        }
        Some((lo.sqrt(), hi.sqrt()))
    }

    /// Two-path bound: the hierarchical form is a weighted Euclidean
    /// norm over the flattened `uₑ·wᵢ` weights, hence a metric — the
    /// triangle route `d(q,c) − hi·r` composes with the distortion
    /// route exactly as for [`WeightedEuclidean`](super::WeightedEuclidean).
    fn partition_lower_key(&self, query: &[f64], centroid: &[f64], radius_l2: f64) -> Option<f64> {
        let (lo, hi) = self.euclidean_distortion()?;
        if !lo.is_finite() || lo <= 0.0 {
            return None;
        }
        let d2 = super::sq_dist(query, centroid).sqrt();
        let dqc = self.eval(query, centroid);
        let lb = super::metric_partition_lower(dqc, lo, hi, d2, radius_l2);
        Some(self.key_of_dist(lb))
    }

    /// Squared distance via the flattened `uₑ·wᵢ` weights and the
    /// unrolled kernel (ulp-level differences from `eval_sq` possible:
    /// different association order).
    #[inline]
    fn eval_key(&self, a: &[f64], b: &[f64]) -> f64 {
        kernels::weighted_sq_row(&self.effective_weights, a, b)
    }

    #[inline]
    fn finish_key(&self, key: f64) -> f64 {
        key.sqrt()
    }

    #[inline]
    fn key_of_dist(&self, dist: f64) -> f64 {
        dist * dist
    }

    fn eval_batch(&self, query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
        kernels::weighted_sq_block(
            &self.effective_weights,
            query,
            block,
            dim,
            f64::INFINITY,
            out,
        );
        for v in out.iter_mut() {
            *v = v.sqrt();
        }
    }

    fn eval_key_batch(
        &self,
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        kernels::weighted_sq_block(&self.effective_weights, query, block, dim, bound, out);
    }

    fn eval_key_multi(
        &self,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        kernels::weighted_sq_multi_block(
            &self.effective_weights,
            0,
            queries,
            block,
            dim,
            bounds,
            out,
        );
    }

    fn f32_key_slack(&self, dim: usize, max_abs: f64) -> Option<f64> {
        // The flattened form is exactly a weighted Euclidean with the
        // effective weights, so the same rounding budget applies.
        let w_max = self.effective_weights.iter().cloned().fold(0.0, f64::max);
        super::weighted_f32_slack(dim, w_max, max_abs)
    }

    fn eval_key_batch_f32(
        &self,
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        kernels::weighted_sq_block_f32(&self.effective_weights_f32, query, block, dim, bound, out);
    }

    fn eval_key_multi_f32(
        &self,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        kernels::weighted_sq_multi_block_f32(
            &self.effective_weights_f32,
            0,
            queries,
            block,
            dim,
            bounds,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::test_support::{check_metric_axioms, sample_points};
    use crate::distance::{Euclidean, WeightedEuclidean};

    #[test]
    fn uniform_equals_euclidean() {
        let h = HierarchicalDistance::uniform(6, 2).unwrap();
        let e = Euclidean;
        let a = [1.0, 0.0, -1.0, 2.0, 0.5, 0.0];
        let b = [0.0, 1.0, 1.0, 0.0, 0.0, 0.25];
        assert!((h.eval(&a, &b) - e.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn equals_weighted_euclidean_with_effective_weights() {
        let spans = vec![FeatureSpan::new(0, 2), FeatureSpan::new(2, 4)];
        let h = HierarchicalDistance::new(spans, vec![2.0, 0.5], vec![1.0, 3.0, 4.0, 1.0]).unwrap();
        // Effective weights: [2·1, 2·3, 0.5·4, 0.5·1].
        let we = WeightedEuclidean::new(vec![2.0, 6.0, 2.0, 0.5]).unwrap();
        let a = [0.3, -1.0, 2.0, 0.0];
        let b = [1.0, 0.0, 0.0, -2.0];
        assert!((h.eval(&a, &b) - we.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn feature_dist_decomposes_total() {
        let h = HierarchicalDistance::uniform(4, 2).unwrap();
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.0, 0.0, 0.0, 0.0];
        let total = h.eval_sq(&a, &b);
        let parts = h.feature_dist_sq(0, &a, &b) + h.feature_dist_sq(1, &a, &b);
        assert!((total - parts).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        // Gap in the partition.
        let gap = vec![FeatureSpan::new(0, 2), FeatureSpan::new(3, 4)];
        assert!(HierarchicalDistance::new(gap, vec![1.0, 1.0], vec![1.0; 4]).is_err());
        // Wrong weight counts.
        let spans = vec![FeatureSpan::new(0, 2)];
        assert!(HierarchicalDistance::new(spans.clone(), vec![], vec![1.0; 2]).is_err());
        assert!(HierarchicalDistance::new(spans.clone(), vec![1.0], vec![1.0; 3]).is_err());
        // Non-positive weights.
        assert!(HierarchicalDistance::new(spans, vec![0.0], vec![1.0; 2]).is_err());
        // Bad uniform splits.
        assert!(HierarchicalDistance::uniform(5, 2).is_err());
        assert!(HierarchicalDistance::uniform(4, 0).is_err());
    }

    #[test]
    fn metric_axioms_hold() {
        let spans = vec![FeatureSpan::new(0, 2), FeatureSpan::new(2, 4)];
        let h =
            HierarchicalDistance::new(spans, vec![1.5, 0.75], vec![2.0, 0.5, 1.0, 4.0]).unwrap();
        check_metric_axioms(&h, &sample_points(4), 1e-9);
    }

    #[test]
    fn distortion_bounds_hold() {
        let spans = vec![FeatureSpan::new(0, 1), FeatureSpan::new(1, 3)];
        let h = HierarchicalDistance::new(spans, vec![4.0, 1.0], vec![1.0, 0.25, 9.0]).unwrap();
        let (lo, hi) = h.euclidean_distortion().unwrap();
        assert!((lo - 0.5).abs() < 1e-12); // min eff. weight 0.25
        assert!((hi - 3.0).abs() < 1e-12); // max eff. weight 9
        let e = Euclidean;
        for pts in sample_points(3).windows(2) {
            let dh = h.eval(&pts[0], &pts[1]);
            let d2 = e.eval(&pts[0], &pts[1]);
            assert!(dh >= lo * d2 - 1e-9 && dh <= hi * d2 + 1e-9);
        }
    }
}
