//! Weighted Euclidean distance — Equation 1 of the paper, the class of
//! distance functions learned in its experiments:
//!
//! ```text
//! L2W(p, q; W) = ( Σᵢ wᵢ·(pᵢ − qᵢ)² )^½ ,   wᵢ > 0
//! ```

use super::{kernels, Distance};
use crate::{Result, VecdbError};

/// Weighted Euclidean distance with strictly positive per-component
/// weights.
#[derive(Debug, Clone)]
pub struct WeightedEuclidean {
    weights: Vec<f64>,
    /// f32-rounded weights for the mirror-scanning kernels, cached at
    /// construction (the rounding is part of the class's
    /// [`Distance::f32_key_slack`] error budget).
    weights_f32: Vec<f32>,
    min_w: f64,
    max_w: f64,
}

impl WeightedEuclidean {
    /// Construct from weights (all must be finite and > 0).
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(VecdbError::BadParameters("empty weight vector".into()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Err(VecdbError::BadParameters(
                "weights must be finite and positive".into(),
            ));
        }
        let min_w = weights.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_w = weights.iter().cloned().fold(0.0, f64::max);
        let weights_f32 = weights.iter().map(|&w| w as f32).collect();
        Ok(WeightedEuclidean {
            weights,
            weights_f32,
            min_w,
            max_w,
        })
    }

    /// The unweighted special case (`wᵢ = 1`), dimension `dim`.
    pub fn uniform(dim: usize) -> Self {
        WeightedEuclidean {
            weights: vec![1.0; dim],
            weights_f32: vec![1.0; dim],
            min_w: 1.0,
            max_w: 1.0,
        }
    }

    /// Component weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The cached f32 rounding of the weights (the mirror-scan layout).
    pub(crate) fn weights_f32(&self) -> &[f32] {
        &self.weights_f32
    }

    /// Smallest weight (drives the Euclidean-index pruning bound).
    pub fn min_weight(&self) -> f64 {
        self.min_w
    }

    /// Largest weight.
    pub fn max_weight(&self) -> f64 {
        self.max_w
    }

    /// Squared distance (saves the `sqrt` in rank-only comparisons).
    /// Reference sequential accumulation — the engines' ranking paths use
    /// the unrolled kernel via [`Distance::eval_key`] instead.
    #[inline]
    pub fn eval_sq(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), self.weights.len());
        let mut acc = 0.0;
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc += self.weights[i] * d * d;
        }
        acc
    }
}

impl Distance for WeightedEuclidean {
    #[inline]
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_sq(a, b).sqrt()
    }

    fn name(&self) -> &str {
        "weighted-euclidean"
    }

    fn euclidean_distortion(&self) -> Option<(f64, f64)> {
        // √w_min·d₂ ≤ d_W ≤ √w_max·d₂, componentwise bound.
        Some((self.min_w.sqrt(), self.max_w.sqrt()))
    }

    /// Two-path bound: `d_W` is a norm-induced metric, so the triangle
    /// route `d_W(q,c) − √w_max·r` composes with the distortion route;
    /// the triangle route wins when the query's displacement from the
    /// centroid lies along heavy axes.
    fn partition_lower_key(&self, query: &[f64], centroid: &[f64], radius_l2: f64) -> Option<f64> {
        let d2 = super::sq_dist(query, centroid).sqrt();
        let dqc = self.eval(query, centroid);
        let lb =
            super::metric_partition_lower(dqc, self.min_w.sqrt(), self.max_w.sqrt(), d2, radius_l2);
        Some(self.key_of_dist(lb))
    }

    #[inline]
    fn eval_key(&self, a: &[f64], b: &[f64]) -> f64 {
        kernels::weighted_sq_row(&self.weights, a, b)
    }

    #[inline]
    fn finish_key(&self, key: f64) -> f64 {
        key.sqrt()
    }

    #[inline]
    fn key_of_dist(&self, dist: f64) -> f64 {
        dist * dist
    }

    fn eval_batch(&self, query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
        kernels::weighted_sq_block(&self.weights, query, block, dim, f64::INFINITY, out);
        for v in out.iter_mut() {
            *v = v.sqrt();
        }
    }

    fn eval_key_batch(
        &self,
        query: &[f64],
        block: &[f64],
        dim: usize,
        bound: f64,
        out: &mut [f64],
    ) {
        kernels::weighted_sq_block(&self.weights, query, block, dim, bound, out);
    }

    fn eval_key_multi(
        &self,
        queries: &[f64],
        block: &[f64],
        dim: usize,
        bounds: &[f64],
        out: &mut [f64],
    ) {
        kernels::weighted_sq_multi_block(&self.weights, 0, queries, block, dim, bounds, out);
    }

    fn f32_key_slack(&self, dim: usize, max_abs: f64) -> Option<f64> {
        super::weighted_f32_slack(dim, self.max_w, max_abs)
    }

    fn eval_key_batch_f32(
        &self,
        query: &[f32],
        block: &[f32],
        dim: usize,
        bound: f32,
        out: &mut [f32],
    ) {
        kernels::weighted_sq_block_f32(&self.weights_f32, query, block, dim, bound, out);
    }

    fn eval_key_multi_f32(
        &self,
        queries: &[f32],
        block: &[f32],
        dim: usize,
        bounds: &[f32],
        out: &mut [f32],
    ) {
        kernels::weighted_sq_multi_block_f32(
            &self.weights_f32,
            0,
            queries,
            block,
            dim,
            bounds,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::test_support::{check_metric_axioms, sample_points};
    use crate::distance::Euclidean;

    #[test]
    fn uniform_equals_euclidean() {
        let w = WeightedEuclidean::uniform(3);
        let e = Euclidean;
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 1.0, 2.0];
        assert!((w.eval(&a, &b) - e.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_components() {
        let w = WeightedEuclidean::new(vec![4.0, 1.0]).unwrap();
        // Distance along the first axis doubles.
        assert!((w.eval(&[0.0, 0.0], &[1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert!((w.eval(&[0.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distortion_bounds_hold() {
        let w = WeightedEuclidean::new(vec![0.25, 4.0, 1.0]).unwrap();
        let (lo, hi) = w.euclidean_distortion().unwrap();
        assert_eq!(lo, 0.5);
        assert_eq!(hi, 2.0);
        let e = Euclidean;
        for pts in sample_points(3).windows(2) {
            let dw = w.eval(&pts[0], &pts[1]);
            let d2 = e.eval(&pts[0], &pts[1]);
            assert!(dw >= lo * d2 - 1e-12, "lower bound violated");
            assert!(dw <= hi * d2 + 1e-12, "upper bound violated");
        }
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(WeightedEuclidean::new(vec![]).is_err());
        assert!(WeightedEuclidean::new(vec![1.0, 0.0]).is_err());
        assert!(WeightedEuclidean::new(vec![1.0, -2.0]).is_err());
        assert!(WeightedEuclidean::new(vec![f64::NAN]).is_err());
        assert!(WeightedEuclidean::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn metric_axioms_hold() {
        let w = WeightedEuclidean::new(vec![0.5, 2.0, 1.0, 3.0]).unwrap();
        check_metric_axioms(&w, &sample_points(4), 1e-9);
    }

    #[test]
    fn eval_sq_consistent() {
        let w = WeightedEuclidean::new(vec![2.0, 3.0]).unwrap();
        let a = [1.0, 2.0];
        let b = [-1.0, 0.5];
        assert!((w.eval(&a, &b).powi(2) - w.eval_sq(&a, &b)).abs() < 1e-12);
    }
}
