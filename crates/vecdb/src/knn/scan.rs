//! Exhaustive linear scan: the correctness baseline, and the engine of
//! choice when the query metric changes every iteration (no index to
//! invalidate, perfectly sequential memory traffic).

use super::{KBest, KnnEngine, Neighbor, SearchStats};
use crate::collection::Collection;
use crate::distance::Distance;

/// Linear-scan engine borrowing a collection.
#[derive(Debug, Clone, Copy)]
pub struct LinearScan<'a> {
    coll: &'a Collection,
}

impl<'a> LinearScan<'a> {
    /// New scan engine over `coll`.
    pub fn new(coll: &'a Collection) -> Self {
        LinearScan { coll }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &'a Collection {
        self.coll
    }
}

impl KnnEngine for LinearScan<'_> {
    fn knn(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, dist).0
    }

    fn knn_with_stats(
        &self,
        query: &[f64],
        k: usize,
        dist: &dyn Distance,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut kb = KBest::new(k);
        for i in 0..self.coll.len() {
            kb.push(i as u32, dist.eval(query, self.coll.vector(i)));
        }
        (
            kb.into_sorted(),
            SearchStats {
                distance_evals: self.coll.len() as u64,
                nodes_visited: 0,
            },
        )
    }

    fn range(&self, query: &[f64], radius: f64, dist: &dyn Distance) -> Vec<Neighbor> {
        let mut out = Vec::new();
        for i in 0..self.coll.len() {
            let d = dist.eval(query, self.coll.vector(i));
            if d <= radius {
                out.push(Neighbor {
                    index: i as u32,
                    dist: d,
                });
            }
        }
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("non-finite distance")
                .then(a.index.cmp(&b.index))
        });
        out
    }

    fn name(&self) -> &str {
        "linear-scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::distance::{Euclidean, WeightedEuclidean};

    fn grid_collection() -> Collection {
        let mut b = CollectionBuilder::new();
        for x in 0..5 {
            for y in 0..5 {
                b.push_unlabelled(&[x as f64, y as f64]).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn knn_finds_nearest_grid_points() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let res = scan.knn(&[0.1, 0.1], 3, &Euclidean);
        assert_eq!(res.len(), 3);
        // Closest is (0,0), then (1,0) and (0,1) (tie).
        assert_eq!(res[0].index, 0);
        assert!((res[0].dist - (0.02f64).sqrt()).abs() < 1e-12);
        let next: Vec<u32> = res[1..].iter().map(|n| n.index).collect();
        assert!(next.contains(&1) || next.contains(&5));
    }

    #[test]
    fn k_larger_than_collection() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let res = scan.knn(&[0.0, 0.0], 100, &Euclidean);
        assert_eq!(res.len(), 25);
        // Sorted ascending.
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        assert!(scan.knn(&[0.0, 0.0], 0, &Euclidean).is_empty());
    }

    #[test]
    fn weighted_metric_changes_ranking() {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[1.0, 0.0]).unwrap(); // index 0
        b.push_unlabelled(&[0.0, 1.1]).unwrap(); // index 1
        let c = b.build();
        let scan = LinearScan::new(&c);
        // Euclidean: point 0 is closer to origin.
        let r1 = scan.knn(&[0.0, 0.0], 1, &Euclidean);
        assert_eq!(r1[0].index, 0);
        // Heavy weight on x flips the ranking.
        let w = WeightedEuclidean::new(vec![100.0, 1.0]).unwrap();
        let r2 = scan.knn(&[0.0, 0.0], 1, &w);
        assert_eq!(r2[0].index, 1);
    }

    #[test]
    fn range_query_inclusive() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let res = scan.range(&[0.0, 0.0], 1.0, &Euclidean);
        // (0,0), (1,0), (0,1) at distances 0, 1, 1.
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].dist, 0.0);
        assert_eq!(res[1].dist, 1.0);
    }

    #[test]
    fn stats_count_all_evals() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let (_, stats) = scan.knn_with_stats(&[0.0, 0.0], 2, &Euclidean);
        assert_eq!(stats.distance_evals, 25);
        assert_eq!(stats.nodes_visited, 0);
    }
}
