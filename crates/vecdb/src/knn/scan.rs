//! Exhaustive linear scan: the correctness baseline, and the engine of
//! choice when the query metric changes every iteration (no index to
//! invalidate, perfectly sequential memory traffic).
//!
//! Three execution paths agree on results: Batched and Parallel are
//! bit-identical to each other (same kernels, deterministic merge);
//! Scalar produces the same ranking with distances matching to ~1e-12
//! (its reference implementation accumulates sequentially, the kernels
//! 8-wide, so last-ulp rounding may differ — and, for `range`, boundary
//! membership of a candidate sitting exactly on the radius can differ
//! between Scalar and the key-space modes by that same ulp):
//!
//! * [`ScanMode::Scalar`] — one `dyn Distance::eval` per vector, a `sqrt`
//!   per candidate. Kept in-tree as the measurable baseline the batched
//!   paths are benchmarked against (`cargo bench --bench knn_engines`).
//! * [`ScanMode::Batched`] — blocks of [`BLOCK_ROWS`] vectors go through
//!   [`Distance::eval_key_batch`]: one virtual call per block, surrogate
//!   keys instead of distances (no `sqrt`), early abandonment against the
//!   running k-best threshold inside the kernel. Only the final `k`
//!   winners pay [`Distance::finish_key`].
//! * [`ScanMode::Parallel`] — the batched path fanned out over worker
//!   threads in contiguous chunks, each with a private k-best; the
//!   per-thread results merge by ascending `(key, index)`, so the answer
//!   is deterministic regardless of thread count or scheduling.
//!
//! [`ScanMode::Auto`] (the default) picks Batched below
//! [`PARALLEL_CUTOFF`] candidate-components and Parallel above it.
//!
//! Orthogonally, [`LinearScan::with_precision`] selects
//! [`Precision::F32Rescore`]: the kernel-path modes then run their
//! phase-1 filter over the collection's f32 mirror (half the scan bytes
//! — the dominant cost on a bandwidth-bound host) and rescore the
//! surviving candidates in f64, returning results identical to the pure
//! f64 scan. This covers `range` queries too: phase 1 filters against
//! the radius bound inflated by the class's rounding slack, phase 2
//! re-applies the exact bound, so membership on the radius boundary is
//! decided by the same f64 kernel keys as the single-phase scan. Scalar
//! mode deliberately ignores the knob — it *is* the reference the other
//! paths are pinned against.

use super::{
    f32_bound_up, KBest, KnnEngine, Neighbor, Precision, SearchStats, BLOCK_ROWS, PARALLEL_CUTOFF,
};
use crate::collection::Collection;
use crate::distance::Distance;

/// Execution strategy for [`LinearScan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Pick [`ScanMode::Batched`] or [`ScanMode::Parallel`] by data size.
    #[default]
    Auto,
    /// Per-vector `dyn` dispatch with a `sqrt` per candidate (baseline).
    Scalar,
    /// Blocked surrogate-key kernels, single-threaded.
    Batched,
    /// Blocked surrogate-key kernels across worker threads.
    Parallel,
}

/// Linear-scan engine borrowing a collection.
#[derive(Debug, Clone, Copy)]
pub struct LinearScan<'a> {
    coll: &'a Collection,
    mode: ScanMode,
    precision: Precision,
    thread_budget: Option<usize>,
}

impl<'a> LinearScan<'a> {
    /// New scan engine over `coll` with [`ScanMode::Auto`].
    pub fn new(coll: &'a Collection) -> Self {
        LinearScan {
            coll,
            mode: ScanMode::Auto,
            precision: Precision::F64,
            thread_budget: None,
        }
    }

    /// New scan engine with an explicit execution mode.
    pub fn with_mode(coll: &'a Collection, mode: ScanMode) -> Self {
        LinearScan {
            coll,
            mode,
            precision: Precision::F64,
            thread_budget: None,
        }
    }

    /// Select the scan precision. [`Precision::F32Rescore`] silently
    /// degrades to the f64 path when the collection has no mirror, the
    /// distance class exposes no f32 kernel, or the mode is Scalar —
    /// results are identical in every case.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Cap the parallel path at `threads` worker threads (at least 1)
    /// instead of the machine's full parallelism. Callers that already
    /// run scans from several of their own threads (the `fbp-eval`
    /// sweeps) set this to `available / own_threads` so nested
    /// parallelism does not oversubscribe the host.
    pub fn with_thread_budget(mut self, threads: usize) -> Self {
        self.thread_budget = Some(threads.max(1));
        self
    }

    /// The underlying collection.
    pub fn collection(&self) -> &'a Collection {
        self.coll
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The mode Auto resolves to for this collection.
    fn effective_mode(&self) -> ScanMode {
        match self.mode {
            ScanMode::Auto => {
                if self.coll.len() * self.coll.dim().max(1) >= PARALLEL_CUTOFF {
                    ScanMode::Parallel
                } else {
                    ScanMode::Batched
                }
            }
            m => m,
        }
    }

    /// Baseline path: one virtual `eval` (with its `sqrt`) per vector.
    fn knn_scalar(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor> {
        let mut kb = KBest::new(k);
        for i in 0..self.coll.len() {
            kb.push(i as u32, dist.eval(query, self.coll.vector(i)));
        }
        kb.into_sorted()
    }

    /// Batched path over one contiguous index range; pushes surrogate
    /// keys into `kb`.
    fn scan_range_keys(
        &self,
        query: &[f64],
        dist: &dyn Distance,
        rows: std::ops::Range<usize>,
        kb: &mut KBest,
    ) {
        let dim = self.coll.dim();
        let mut keys = [0.0f64; BLOCK_ROWS];
        let mut start = rows.start;
        while start < rows.end {
            let end = (start + BLOCK_ROWS).min(rows.end);
            let n = end - start;
            let block = self.coll.block(start, end);
            dist.eval_key_batch(query, block, dim, kb.threshold(), &mut keys[..n]);
            for (offset, &key) in keys[..n].iter().enumerate() {
                kb.push((start + offset) as u32, key);
            }
            start = end;
        }
    }

    fn knn_batched(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor> {
        let mut kb = KBest::new(k);
        self.scan_range_keys(query, dist, 0..self.coll.len(), &mut kb);
        kb.into_sorted_with(|key| dist.finish_key(key))
    }

    /// The parallel path — and the two-phase f32-rescore path in either
    /// kernel mode — is the single-query case of the multi-query scan:
    /// delegating keeps the subtle fan-out/merge and phase-1/phase-2
    /// logic (chunking, per-thread k-bests, inflated-bound candidate
    /// collection, the exact rescore) in one place. For one query the
    /// multi kernels compute the exact same keys, so results stay
    /// bit-identical to [`Self::knn_batched`].
    fn knn_via_multi(
        &self,
        query: &[f64],
        k: usize,
        dist: &dyn Distance,
        mode: ScanMode,
    ) -> Vec<Neighbor> {
        let mut multi =
            super::MultiQueryScan::with_mode(self.coll, mode).with_precision(self.precision);
        if let Some(budget) = self.thread_budget {
            multi = multi.with_thread_budget(budget);
        }
        multi.knn_multi(&[query], k, dist).pop().unwrap_or_default()
    }

    /// The key-space rounding slack of an f32 phase-1 under `dist`, when
    /// every precondition for a two-phase range scan holds: `F32Rescore`
    /// requested, mirror present, class exposes an f32 kernel with a
    /// finite bound for this data/query magnitude. (The k-NN paths get
    /// the same answer from `MultiQueryScan`, which the scan delegates
    /// to; `range` runs its own single-query pass, so it re-derives it.)
    fn f32_slack(&self, dist: &dyn Distance, query: &[f64]) -> Option<f64> {
        if self.precision != Precision::F32Rescore {
            return None;
        }
        let m_coll = self.coll.max_abs()?; // None ⇔ no mirror
        let m = query.iter().fold(m_coll, |m, &v| m.max(v.abs()));
        let slack = dist.f32_key_slack(self.coll.dim(), m)?;
        slack.is_finite().then_some(slack)
    }

    /// Two-phase range scan: phase 1 streams the f32 mirror collecting
    /// every row whose f32 key lands under the radius bound inflated by
    /// the class's rounding slack, phase 2 gather-rescores the candidates
    /// with the exact f64 batch kernel and applies the *uninflated* key
    /// bound — results (membership, indices, distances) identical to the
    /// single-phase f64 pass.
    ///
    /// Why one `slack` suffices (vs the k-NN paths' `2·slack`): the range
    /// bound `B = key_of_dist(radius)` is fixed, not a running threshold.
    /// Every row obeys `|key32 − key64| ≤ Δ`, so a true member
    /// (`key64 ≤ B`) always has `key32 ≤ B + Δ`; its monotone f32 prefix
    /// sums never exceed its final `key32`, so the kernel cannot abandon
    /// it and the filter admits it into the candidate pool.
    fn range_f32_rescore(
        &self,
        query: &[f64],
        radius: f64,
        dist: &dyn Distance,
        slack: f64,
    ) -> Vec<Neighbor> {
        let dim = self.coll.dim();
        let bound = dist.key_of_dist(radius);
        let inflated = bound + slack;
        let inflated32 = f32_bound_up(inflated);
        let q32: Vec<f32> = query.iter().map(|&v| v as f32).collect();

        // A range result set is unbounded — once a large share of the
        // collection passes the phase-1 filter, the gather-rescore costs
        // more than the single-phase f64 scan would have, so bail to it.
        // (The partial phase 1 is wasted, but it is at most half the f64
        // pass's bytes.)
        let candidate_cap = self.coll.len() / 4;

        // Phase 1: f32 filter over the mirror.
        let mut cands: Vec<u32> = Vec::new();
        let mut keys32 = [0.0f32; BLOCK_ROWS];
        let mut start = 0;
        while start < self.coll.len() {
            let end = (start + BLOCK_ROWS).min(self.coll.len());
            let n = end - start;
            let block = self
                .coll
                .block_f32(start, end)
                .expect("f32 path requires the mirror");
            dist.eval_key_batch_f32(&q32, block, dim, inflated32, &mut keys32[..n]);
            for (offset, &key) in keys32[..n].iter().enumerate() {
                if (key as f64) <= inflated {
                    cands.push((start + offset) as u32);
                }
            }
            if cands.len() > candidate_cap {
                return self.range_f64_keyspace(query, radius, dist);
            }
            start = end;
        }

        // Phase 2: exact f64 rescore of the candidates, uninflated bound.
        let mut out = Vec::new();
        if dim == 0 {
            return out;
        }
        let mut rows = vec![0.0f64; BLOCK_ROWS * dim];
        let mut keys = [0.0f64; BLOCK_ROWS];
        for chunk in cands.chunks(BLOCK_ROWS) {
            let n = chunk.len();
            for (slot, &i) in rows.chunks_exact_mut(dim).zip(chunk.iter()) {
                slot.copy_from_slice(self.coll.vector(i as usize));
            }
            dist.eval_key_batch(query, &rows[..n * dim], dim, bound, &mut keys[..n]);
            for (&i, &key) in chunk.iter().zip(keys.iter()) {
                if key <= bound {
                    out.push(Neighbor {
                        index: i,
                        dist: dist.finish_key(key),
                    });
                }
            }
        }
        out.sort_unstable_by(Neighbor::total_cmp);
        out
    }

    /// Single-phase key-space range scan over the f64 buffer:
    /// `d ≤ r ⇔ key ≤ key_of_dist(r)`; abandoned rows come back `+∞`
    /// and can never pass the bound.
    fn range_f64_keyspace(&self, query: &[f64], radius: f64, dist: &dyn Distance) -> Vec<Neighbor> {
        let dim = self.coll.dim();
        let bound = dist.key_of_dist(radius);
        let mut out = Vec::new();
        let mut keys = [0.0f64; BLOCK_ROWS];
        let mut start = 0;
        while start < self.coll.len() {
            let end = (start + BLOCK_ROWS).min(self.coll.len());
            let n = end - start;
            let block = self.coll.block(start, end);
            dist.eval_key_batch(query, block, dim, bound, &mut keys[..n]);
            for (offset, &key) in keys[..n].iter().enumerate() {
                if key <= bound {
                    out.push(Neighbor {
                        index: (start + offset) as u32,
                        dist: dist.finish_key(key),
                    });
                }
            }
            start = end;
        }
        out.sort_unstable_by(Neighbor::total_cmp);
        out
    }

    /// All-mode dispatch used by [`KnnEngine::knn_with_stats`].
    fn knn_dispatch(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor> {
        match self.effective_mode() {
            ScanMode::Scalar => self.knn_scalar(query, k, dist),
            ScanMode::Batched => {
                if self.precision == Precision::F32Rescore {
                    self.knn_via_multi(query, k, dist, ScanMode::Batched)
                } else {
                    self.knn_batched(query, k, dist)
                }
            }
            ScanMode::Parallel => self.knn_via_multi(query, k, dist, ScanMode::Parallel),
            ScanMode::Auto => unreachable!("effective_mode resolves Auto"),
        }
    }
}

impl KnnEngine for LinearScan<'_> {
    fn knn(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor> {
        self.knn_dispatch(query, k, dist)
    }

    fn knn_with_stats(
        &self,
        query: &[f64],
        k: usize,
        dist: &dyn Distance,
    ) -> (Vec<Neighbor>, SearchStats) {
        (
            self.knn_dispatch(query, k, dist),
            SearchStats {
                distance_evals: self.coll.len() as u64,
                nodes_visited: 0,
            },
        )
    }

    fn range(&self, query: &[f64], radius: f64, dist: &dyn Distance) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if self.effective_mode() == ScanMode::Scalar {
            for i in 0..self.coll.len() {
                let d = dist.eval(query, self.coll.vector(i));
                if d <= radius {
                    out.push(Neighbor {
                        index: i as u32,
                        dist: d,
                    });
                }
            }
        } else if let Some(slack) = self.f32_slack(dist, query) {
            // Two-phase mirror scan: f32 filter under the slack-inflated
            // radius bound, exact f64 rescore of the candidates (bails
            // back to the single-phase pass for bulky result sets).
            return self.range_f32_rescore(query, radius, dist, slack);
        } else {
            return self.range_f64_keyspace(query, radius, dist);
        }
        out.sort_unstable_by(Neighbor::total_cmp);
        out
    }

    fn name(&self) -> &str {
        "linear-scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::distance::{Euclidean, WeightedEuclidean};

    fn grid_collection() -> Collection {
        let mut b = CollectionBuilder::new();
        for x in 0..5 {
            for y in 0..5 {
                b.push_unlabelled(&[x as f64, y as f64]).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn knn_finds_nearest_grid_points() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let res = scan.knn(&[0.1, 0.1], 3, &Euclidean);
        assert_eq!(res.len(), 3);
        // Closest is (0,0), then (1,0) and (0,1) (tie).
        assert_eq!(res[0].index, 0);
        assert!((res[0].dist - (0.02f64).sqrt()).abs() < 1e-12);
        let next: Vec<u32> = res[1..].iter().map(|n| n.index).collect();
        assert!(next.contains(&1) || next.contains(&5));
    }

    #[test]
    fn k_larger_than_collection() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let res = scan.knn(&[0.0, 0.0], 100, &Euclidean);
        assert_eq!(res.len(), 25);
        // Sorted ascending.
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        assert!(scan.knn(&[0.0, 0.0], 0, &Euclidean).is_empty());
    }

    #[test]
    fn weighted_metric_changes_ranking() {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[1.0, 0.0]).unwrap(); // index 0
        b.push_unlabelled(&[0.0, 1.1]).unwrap(); // index 1
        let c = b.build();
        let scan = LinearScan::new(&c);
        // Euclidean: point 0 is closer to origin.
        let r1 = scan.knn(&[0.0, 0.0], 1, &Euclidean);
        assert_eq!(r1[0].index, 0);
        // Heavy weight on x flips the ranking.
        let w = WeightedEuclidean::new(vec![100.0, 1.0]).unwrap();
        let r2 = scan.knn(&[0.0, 0.0], 1, &w);
        assert_eq!(r2[0].index, 1);
    }

    #[test]
    fn range_query_inclusive() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let res = scan.range(&[0.0, 0.0], 1.0, &Euclidean);
        // (0,0), (1,0), (0,1) at distances 0, 1, 1.
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].dist, 0.0);
        assert_eq!(res[1].dist, 1.0);
    }

    #[test]
    fn stats_count_all_evals() {
        let c = grid_collection();
        let scan = LinearScan::new(&c);
        let (_, stats) = scan.knn_with_stats(&[0.0, 0.0], 2, &Euclidean);
        assert_eq!(stats.distance_evals, 25);
        assert_eq!(stats.nodes_visited, 0);
    }

    fn pseudo_random_collection(n: usize, dim: usize) -> Collection {
        // LCG-based filler: deterministic, no dev-dependency needed here.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut b = CollectionBuilder::new();
        for _ in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| next()).collect();
            b.push_unlabelled(&v).unwrap();
        }
        b.build()
    }

    #[test]
    fn all_modes_agree() {
        let c = pseudo_random_collection(1500, 48);
        let q: Vec<f64> = (0..48).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let w: Vec<f64> = (0..48).map(|i| 0.2 + (i % 7) as f64).collect();
        let weighted = WeightedEuclidean::new(w).unwrap();
        for k in [1, 7, 50] {
            let scalar = LinearScan::with_mode(&c, ScanMode::Scalar).knn(&q, k, &weighted);
            let batched = LinearScan::with_mode(&c, ScanMode::Batched).knn(&q, k, &weighted);
            let parallel = LinearScan::with_mode(&c, ScanMode::Parallel).knn(&q, k, &weighted);
            // The scalar reference accumulates sequentially, the key
            // kernels 8-wide: same ranking, distances to 1e-12.
            assert_eq!(scalar.len(), batched.len(), "k={k}");
            for (a, b) in scalar.iter().zip(batched.iter()) {
                assert_eq!(a.index, b.index, "k={k}");
                assert!((a.dist - b.dist).abs() <= 1e-12, "k={k}");
            }
            // Batched and parallel share the exact same kernels: the
            // merge is deterministic, results bit-identical.
            assert_eq!(batched, parallel, "k={k}");
        }
        // Range queries agree across modes too (same tolerance contract).
        let r_scalar = LinearScan::with_mode(&c, ScanMode::Scalar).range(&q, 4.0, &weighted);
        let r_batched = LinearScan::with_mode(&c, ScanMode::Batched).range(&q, 4.0, &weighted);
        assert_eq!(r_scalar.len(), r_batched.len());
        for (a, b) in r_scalar.iter().zip(r_batched.iter()) {
            assert_eq!(a.index, b.index);
            assert!((a.dist - b.dist).abs() <= 1e-12);
        }
    }

    #[test]
    fn auto_mode_picks_by_size() {
        let small = pseudo_random_collection(10, 4);
        assert_eq!(LinearScan::new(&small).effective_mode(), ScanMode::Batched);
        let large = pseudo_random_collection(3000, 32);
        assert_eq!(LinearScan::new(&large).effective_mode(), ScanMode::Parallel);
    }

    #[test]
    fn empty_collection_all_modes() {
        let c = CollectionBuilder::new().build();
        for mode in [ScanMode::Scalar, ScanMode::Batched, ScanMode::Parallel] {
            let scan = LinearScan::with_mode(&c, mode);
            assert!(scan.knn(&[], 5, &Euclidean).is_empty());
            assert!(scan.range(&[], 1.0, &Euclidean).is_empty());
        }
    }
}
