//! Multi-query block scanning: evaluate Q concurrent queries per
//! collection pass instead of re-reading the collection once per query.
//!
//! The single-query [`LinearScan`](super::LinearScan) is memory-bound on
//! typical hosts: one pass streams `len × dim` f64s from DRAM to answer
//! one query. A retrieval service with many interactive feedback
//! sessions issues many k-NN queries against the *same* collection at
//! once, so [`MultiQueryScan`] amortizes that traffic: each block of
//! [`BLOCK_ROWS`] vectors is loaded once and scored against every
//! pending query while it is hot (via
//! [`Distance::eval_key_multi`]), dropping collection bytes per query by
//! ~Q× until the scan turns compute-bound.
//!
//! Two entry points cover the serving shapes:
//!
//! * [`MultiQueryScan::knn_multi`] — Q queries under **one shared
//!   metric** (e.g. a Q-sweep, or sessions that have not diverged yet).
//!   Uses the specialized multi-query kernels.
//! * [`MultiQueryScan::knn_per_query`] — Q queries each under **its own
//!   metric** (concurrent sessions with per-session learned weights).
//!   Shares the block pass; each query's distance runs its single-query
//!   batch kernel on the hot block.
//!
//! Results are **bit-identical** to Q independent `LinearScan` runs in
//! the same key-space mode: every (query, row) key is computed by the
//! same segment-wise accumulation, per-query early-abandon bounds can
//! only drop rows that could never enter that query's k-best, and the
//! parallel path merges per-thread candidates by ascending
//! `(key, index)` exactly like the single-query scan. The consistency
//! suite (`crates/vecdb/tests/multi_query.rs`) pins this across all four
//! distance classes.
//!
//! # Precision
//!
//! With [`Precision::F32Rescore`] (and a collection carrying its f32
//! mirror) the kernel-path modes run **two phases**: phase 1 streams the
//! mirror through the f32 kernels with per-query pruning bounds inflated
//! by twice the distance class's rounding slack, collecting every row
//! whose f32 key lands under the inflated bound; phase 2 rescores those
//! candidates from the f64 buffer with the exact kernels. The inflation
//! makes the candidate set a guaranteed superset of the true f64 top-k
//! (see the proof sketch on [`MultiQueryScan::scan_range_shared_f32`]),
//! so results remain bit-identical to the pure-f64 scan while the bulk
//! of the pass moves half the bytes.

use super::stats::{ScanStats, ScanStatsSink};
use super::{
    f32_bound_up, finish_entries, rescore_f64_keyed, scan_threads, KBest, Neighbor, Precision,
    ScanMode, SearchStats, BLOCK_ROWS, PARALLEL_CUTOFF,
};
use crate::collection::Collection;
use crate::distance::{kernels, Distance, WeightedEuclidean};

/// Keyed (pre-[`Distance::finish_key`]) results of one multi-query
/// pass: one ascending `(value, index)` k-best per query, plus whether
/// the values are already true distances (the Scalar reference pushes
/// distances; the kernel paths push surrogate keys). This is the unit
/// the sharded scatter/gather scan merges across shards **before**
/// finishing, so selection happens in one key space end to end.
pub(crate) struct KeyedResults {
    /// Per query: `(value, local index)`, ascending by `(value, index)`.
    pub entries: Vec<Vec<(f64, u32)>>,
    /// True when values are distances (identity finish — Scalar mode).
    pub finished: bool,
}

/// One f32 phase-1 chunk pass: scan a row range, tracking per-query
/// k-bests (f32 keys) and `(index, key32)` candidate pools.
type F32ChunkScan<'a> =
    dyn Fn(std::ops::Range<usize>, &mut [KBest], &mut [Vec<(u32, f32)>]) + Sync + 'a;

/// Multi-query scan engine borrowing a collection.
#[derive(Debug, Clone, Copy)]
pub struct MultiQueryScan<'a> {
    coll: &'a Collection,
    mode: ScanMode,
    precision: Precision,
    thread_budget: Option<usize>,
    stats: Option<&'a ScanStatsSink>,
}

impl<'a> MultiQueryScan<'a> {
    /// New engine over `coll` with [`ScanMode::Auto`].
    pub fn new(coll: &'a Collection) -> Self {
        MultiQueryScan {
            coll,
            mode: ScanMode::Auto,
            precision: Precision::F64,
            thread_budget: None,
            stats: None,
        }
    }

    /// New engine with an explicit execution mode.
    pub fn with_mode(coll: &'a Collection, mode: ScanMode) -> Self {
        MultiQueryScan {
            coll,
            mode,
            precision: Precision::F64,
            thread_budget: None,
            stats: None,
        }
    }

    /// Select the scan precision ([`Precision::F32Rescore`] silently
    /// degrades to the f64 path when the collection has no mirror or the
    /// distance class has no f32 kernel — results are identical either
    /// way, only bandwidth differs).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Cap the parallel path at `threads` worker threads (at least 1).
    /// Set this when the caller already runs scans from several of its
    /// own threads, so nested parallelism cannot oversubscribe the host.
    pub fn with_thread_budget(mut self, threads: usize) -> Self {
        self.thread_budget = Some(threads.max(1));
        self
    }

    /// Flush this scan's work counters into `sink` (see [`ScanStats`]):
    /// passes accumulate plain local tallies and record them with a few
    /// relaxed `fetch_add`s at pass end, so attaching a sink never
    /// perturbs the per-row hot loops — and never changes an answer.
    pub fn with_scan_stats(mut self, sink: &'a ScanStatsSink) -> Self {
        self.stats = Some(sink);
        self
    }

    /// Flush one pass's tallies, when a sink is attached.
    fn record_stats(&self, tally: ScanStats) {
        if let Some(sink) = self.stats {
            sink.record(&tally);
        }
    }

    /// Count one seeded pass: the caller handed finite cross-request /
    /// cross-shard caps, so this pass pruned against a bound tighter
    /// than `+∞` from row one.
    fn record_seeded_pass(&self, caps: Option<&[f64]>) {
        if self.stats.is_some() && caps.is_some_and(|c| c.iter().any(|v| v.is_finite())) {
            self.record_stats(ScanStats {
                seed_prunes: 1,
                ..Default::default()
            });
        }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &'a Collection {
        self.coll
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The key-space rounding slack of an f32 phase-1 under `dist`, when
    /// every precondition for the two-phase scan holds: `F32Rescore`
    /// requested, mirror present, class exposes an f32 kernel with a
    /// finite bound for this data/query magnitude.
    pub(crate) fn f32_slack(&self, dist: &dyn Distance, queries: &[&[f64]]) -> Option<f64> {
        if self.precision != Precision::F32Rescore {
            return None;
        }
        let m_coll = self.coll.max_abs()?; // None ⇔ no mirror
        let m = queries
            .iter()
            .flat_map(|q| q.iter())
            .fold(m_coll, |m, &v| m.max(v.abs()));
        let slack = dist.f32_key_slack(self.coll.dim(), m)?;
        slack.is_finite().then_some(slack)
    }

    /// The mode Auto resolves to for `nq` concurrent queries: total work
    /// is `len × dim × nq` candidate-components, so more queries tip the
    /// same collection into the parallel regime sooner.
    fn effective_mode(&self, nq: usize) -> ScanMode {
        match self.mode {
            ScanMode::Auto => {
                if self.coll.len() * self.coll.dim().max(1) * nq.max(1) >= PARALLEL_CUTOFF {
                    ScanMode::Parallel
                } else {
                    ScanMode::Batched
                }
            }
            m => m,
        }
    }

    /// The `k` nearest neighbors of every query under one shared
    /// `dist`, in one blocked pass over the collection. Queries must all
    /// have the collection's dimensionality; result `i` is sorted
    /// ascending by `(dist, index)` exactly like
    /// [`KnnEngine::knn`](super::KnnEngine::knn) on query `i`.
    pub fn knn_multi(
        &self,
        queries: &[&[f64]],
        k: usize,
        dist: &dyn Distance,
    ) -> Vec<Vec<Neighbor>> {
        self.knn_multi_k(queries, &vec![k; queries.len()], dist)
    }

    /// Like [`Self::knn_multi`] but with a **per-query** result count:
    /// query `i` gets its `ks[i]` nearest neighbors, all still answered
    /// in the same single blocked pass (concurrent sessions rarely agree
    /// on `k`; forcing the batch to the maximum would make every smaller
    /// request pay the widest k-best and return rows its session never
    /// asked for).
    pub fn knn_multi_k(
        &self,
        queries: &[&[f64]],
        ks: &[usize],
        dist: &dyn Distance,
    ) -> Vec<Vec<Neighbor>> {
        let keyed = self.knn_multi_k_keyed(queries, ks, dist, None);
        keyed
            .entries
            .into_iter()
            .map(|e| finish_entries(e, keyed.finished, dist))
            .collect()
    }

    /// [`Self::knn_multi_k`] stopped before the `finish_key` step: the
    /// pass's exact k-bests in selection space, for the sharded scan's
    /// per-shard scatter stage.
    ///
    /// `caps` (one per query, when given) are **sound pruning seeds**:
    /// the caller guarantees `caps[q]` is an upper bound on the true
    /// global k-th key of query `q` (in this pass's selection space),
    /// so rows with larger values can be dropped before the running
    /// k-best would have — the cross-shard bound-propagation lever.
    /// Rows beyond a cap never enter the result, which is exactly why a
    /// sound cap cannot change the merged global answer; an `INFINITY`
    /// cap is a no-op.
    pub(crate) fn knn_multi_k_keyed(
        &self,
        queries: &[&[f64]],
        ks: &[usize],
        dist: &dyn Distance,
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() || self.coll.is_empty() {
            return KeyedResults {
                entries: vec![Vec::new(); queries.len()],
                finished: true,
            };
        }
        let dim = self.coll.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimensionality mismatch");
        }
        self.record_seeded_pass(caps);
        let mode = self.effective_mode(queries.len());
        if mode != ScanMode::Scalar {
            if let Some(slack) = self.f32_slack(dist, queries) {
                return self.knn_multi_f32_keyed(queries, ks, dist, slack, mode, caps);
            }
        }
        let (kbs, finished) = match mode {
            ScanMode::Scalar => {
                let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                for i in 0..self.coll.len() {
                    let row = self.coll.vector(i);
                    for (qi, (q, kb)) in queries.iter().zip(kbs.iter_mut()).enumerate() {
                        let d = dist.eval(q, row);
                        if d <= cap_of(caps, qi) {
                            kb.push(i as u32, d);
                        }
                    }
                }
                self.record_stats(ScanStats {
                    rows_visited: self.coll.len() as u64,
                    ..Default::default()
                });
                // Scalar pushes true distances; finish is the identity.
                (kbs, true)
            }
            ScanMode::Batched => {
                let flat = flatten(queries);
                let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                self.scan_range_shared(&flat, dist, 0..self.coll.len(), &mut kbs, caps, None);
                (kbs, false)
            }
            ScanMode::Parallel => {
                let flat = flatten(queries);
                let kbs = self.parallel_merge(ks, &|range, kbs| {
                    self.scan_range_shared(&flat, dist, range, kbs, caps, None)
                });
                (kbs, false)
            }
            ScanMode::Auto => unreachable!("effective_mode resolves Auto"),
        };
        KeyedResults {
            entries: kbs.into_iter().map(KBest::into_sorted_entries).collect(),
            finished,
        }
    }

    /// Two-phase shared-metric scan: f32 phase-1 over the mirror
    /// (batched or fanned out over threads), exact f64 rescore of the
    /// surviving candidates per query — results still in key space.
    fn knn_multi_f32_keyed(
        &self,
        queries: &[&[f64]],
        ks: &[usize],
        dist: &dyn Distance,
        slack: f64,
        mode: ScanMode,
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        let flat32 = flatten_f32(queries);
        let slacks = vec![slack; ks.len()];
        let cands = match mode {
            ScanMode::Batched => {
                let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                let mut cands: Vec<Vec<(u32, f32)>> = vec![Vec::new(); ks.len()];
                self.scan_range_shared_f32(
                    &flat32,
                    dist,
                    slack,
                    ks,
                    0..self.coll.len(),
                    &mut kbs,
                    &mut cands,
                    caps,
                );
                filter_candidates(&kbs, &slacks, cands, caps, self.stats)
            }
            ScanMode::Parallel => {
                self.parallel_candidates(ks, &slacks, caps, &|range, kbs, cands| {
                    self.scan_range_shared_f32(&flat32, dist, slack, ks, range, kbs, cands, caps)
                })
            }
            _ => unreachable!("f32 path only runs in kernel modes"),
        };
        KeyedResults {
            entries: queries
                .iter()
                .zip(ks.iter())
                .zip(cands.iter())
                .map(|((q, &k), c)| {
                    rescore_f64_keyed(self.coll, q, dist, c, k, None).into_sorted_entries()
                })
                .collect(),
            finished: false,
        }
    }

    /// Like [`Self::knn_multi`] but also reports the pass's work
    /// counters (one distance evaluation per query per stored vector).
    pub fn knn_multi_with_stats(
        &self,
        queries: &[&[f64]],
        k: usize,
        dist: &dyn Distance,
    ) -> (Vec<Vec<Neighbor>>, SearchStats) {
        let results = self.knn_multi(queries, k, dist);
        (
            results,
            SearchStats {
                distance_evals: (self.coll.len() * queries.len()) as u64,
                nodes_visited: 0,
            },
        )
    }

    /// The `k` nearest neighbors of every query under its **own**
    /// distance function (`dists[i]` for `queries[i]`), sharing one
    /// blocked pass over the collection. This is the concurrent-session
    /// serving shape: each session's learned metric differs, but every
    /// block still gets read once for all of them.
    pub fn knn_per_query(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        self.knn_per_query_k(queries, dists, &vec![k; queries.len()])
    }

    /// Like [`Self::knn_per_query`] but with a per-query result count
    /// (`ks[i]` neighbors for `queries[i]`), still in one shared pass.
    pub fn knn_per_query_k(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
    ) -> Vec<Vec<Neighbor>> {
        let keyed = self.knn_per_query_k_keyed(queries, dists, ks, None);
        keyed
            .entries
            .into_iter()
            .zip(dists.iter())
            .map(|(e, d)| finish_entries(e, keyed.finished, *d))
            .collect()
    }

    /// [`Self::knn_per_query_k`] in selection space (pre-`finish_key`),
    /// for the sharded scan's per-shard scatter stage. `caps` as on
    /// [`Self::knn_multi_k_keyed`]: sound per-query upper bounds on the
    /// global k-th key, used to prune earlier than the running k-best.
    pub(crate) fn knn_per_query_k_keyed(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        assert_eq!(
            queries.len(),
            dists.len(),
            "one distance function per query"
        );
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() || self.coll.is_empty() {
            return KeyedResults {
                entries: vec![Vec::new(); queries.len()],
                finished: true,
            };
        }
        let dim = self.coll.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimensionality mismatch");
        }
        self.record_seeded_pass(caps);
        let mode = self.effective_mode(queries.len());
        if mode != ScanMode::Scalar {
            // All-or-nothing: the f32 pass engages only when *every*
            // request's metric certifies a rounding bound, so the block
            // loop reads exactly one of the two buffers.
            let slacks: Option<Vec<f64>> =
                dists.iter().map(|d| self.f32_slack(*d, queries)).collect();
            if let Some(slacks) = slacks {
                return self.knn_per_query_f32_keyed(queries, dists, ks, &slacks, mode, caps);
            }
        }
        let (kbs, finished) = match mode {
            ScanMode::Scalar => {
                let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                for i in 0..self.coll.len() {
                    let row = self.coll.vector(i);
                    for (q, ((query, d), kb)) in queries
                        .iter()
                        .zip(dists.iter())
                        .zip(kbs.iter_mut())
                        .enumerate()
                    {
                        let dist = d.eval(query, row);
                        if dist <= cap_of(caps, q) {
                            kb.push(i as u32, dist);
                        }
                    }
                }
                self.record_stats(ScanStats {
                    rows_visited: self.coll.len() as u64,
                    ..Default::default()
                });
                (kbs, true)
            }
            ScanMode::Batched => {
                let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                self.scan_range_per_query(queries, dists, 0..self.coll.len(), &mut kbs, caps, None);
                (kbs, false)
            }
            ScanMode::Parallel => {
                let kbs = self.parallel_merge(ks, &|range, kbs| {
                    self.scan_range_per_query(queries, dists, range, kbs, caps, None)
                });
                (kbs, false)
            }
            ScanMode::Auto => unreachable!("effective_mode resolves Auto"),
        };
        KeyedResults {
            entries: kbs.into_iter().map(KBest::into_sorted_entries).collect(),
            finished,
        }
    }

    /// [`Self::knn_per_query_k`] specialized to **per-query
    /// weighted-Euclidean metrics** — the serving shape after sessions'
    /// learned weights diverge. Instead of one batch-kernel call per
    /// (query, block), every block goes through the Q×row multi kernels
    /// in their per-query-weight layout (`w_stride = dim`): one kernel
    /// call scores the block against all queries with register-blocked
    /// query/row tiles, which is what the compute-bound multi-query
    /// regime wants. Results are bit-identical to
    /// [`Self::knn_per_query_k`] with the same metrics (the per-
    /// (query, row) key arithmetic is the same in every kernel shape),
    /// and therefore to per-query [`LinearScan`](super::LinearScan)s.
    pub fn knn_weighted_per_query_k(
        &self,
        queries: &[&[f64]],
        metrics: &[WeightedEuclidean],
        ks: &[usize],
    ) -> Vec<Vec<Neighbor>> {
        let refs: Vec<&WeightedEuclidean> = metrics.iter().collect();
        let keyed = self.knn_weighted_per_query_k_keyed(queries, &refs, ks, None);
        keyed
            .entries
            .into_iter()
            .zip(metrics.iter())
            .map(|(e, m)| finish_entries(e, keyed.finished, m))
            .collect()
    }

    /// [`Self::knn_weighted_per_query_k`] in selection space
    /// (pre-`finish_key`), for the sharded scan's per-shard scatter
    /// stage. `caps` as on [`Self::knn_multi_k_keyed`].
    pub(crate) fn knn_weighted_per_query_k_keyed(
        &self,
        queries: &[&[f64]],
        metrics: &[&WeightedEuclidean],
        ks: &[usize],
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        assert_eq!(queries.len(), metrics.len(), "one metric per query");
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() || self.coll.is_empty() {
            return KeyedResults {
                entries: vec![Vec::new(); queries.len()],
                finished: true,
            };
        }
        let dim = self.coll.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimensionality mismatch");
        }
        for m in metrics {
            assert_eq!(m.weights().len(), dim, "metric dimensionality mismatch");
        }
        let mode = self.effective_mode(queries.len());
        if mode == ScanMode::Scalar {
            // The scalar reference has no kernel layout to specialize.
            // (It records the seeded pass itself — don't double-count.)
            let dists: Vec<&dyn Distance> = metrics.iter().map(|&m| m as &dyn Distance).collect();
            return self.knn_per_query_k_keyed(queries, &dists, ks, caps);
        }
        self.record_seeded_pass(caps);
        // All-or-nothing f32 eligibility, exactly like the generic path.
        let slacks: Option<Vec<f64>> = metrics
            .iter()
            .map(|&m| self.f32_slack(m, queries))
            .collect();
        if let Some(slacks) = slacks {
            let flat_q32 = flatten_f32(queries);
            let flat_w32: Vec<f32> = metrics
                .iter()
                .flat_map(|m| m.weights_f32().to_vec())
                .collect();
            let nq = queries.len();
            let scan_chunk =
                |rows: std::ops::Range<usize>, kbs: &mut [KBest], cands: &mut [Vec<(u32, f32)>]| {
                    let mut keys = vec![0.0f32; nq * BLOCK_ROWS];
                    let mut bounds64 = vec![f64::INFINITY; nq];
                    let mut bounds32 = vec![f32::INFINITY; nq];
                    let mut start = rows.start;
                    let mut tally = ScanStats::default();
                    while start < rows.end {
                        let end = (start + BLOCK_ROWS).min(rows.end);
                        let n = end - start;
                        tally.rows_visited += n as u64;
                        let block = self
                            .coll
                            .block_f32(start, end)
                            .expect("f32 path requires the mirror");
                        for (q, ((b64, b32), kb)) in bounds64
                            .iter_mut()
                            .zip(bounds32.iter_mut())
                            .zip(kbs.iter())
                            .enumerate()
                        {
                            *b64 = if ks[q] == 0 {
                                f64::NEG_INFINITY
                            } else {
                                kb.threshold().min(cap_of(caps, q)) + 2.0 * slacks[q]
                            };
                            *b32 = f32_bound_up(*b64);
                        }
                        kernels::weighted_sq_multi_block_f32(
                            &flat_w32,
                            dim,
                            &flat_q32,
                            block,
                            dim,
                            &bounds32,
                            &mut keys[..nq * n],
                        );
                        let mut block_abandoned = false;
                        for (q, (kb, cand)) in kbs.iter_mut().zip(cands.iter_mut()).enumerate() {
                            for (offset, &key) in keys[q * n..(q + 1) * n].iter().enumerate() {
                                if (key as f64) <= bounds64[q] {
                                    cand.push(((start + offset) as u32, key));
                                    kb.push((start + offset) as u32, key as f64);
                                } else {
                                    block_abandoned = true;
                                }
                            }
                        }
                        tally.blocks_abandoned += block_abandoned as u64;
                        start = end;
                    }
                    self.record_stats(tally);
                };
            let cands = match mode {
                ScanMode::Batched => {
                    let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                    let mut cands: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nq];
                    scan_chunk(0..self.coll.len(), &mut kbs, &mut cands);
                    filter_candidates(&kbs, &slacks, cands, caps, self.stats)
                }
                ScanMode::Parallel => self.parallel_candidates(ks, &slacks, caps, &scan_chunk),
                _ => unreachable!("f32 path only runs in kernel modes"),
            };
            return KeyedResults {
                entries: queries
                    .iter()
                    .zip(metrics.iter().zip(ks.iter()))
                    .zip(cands.iter())
                    .map(|((q, (m, &k)), c)| {
                        rescore_f64_keyed(self.coll, q, *m, c, k, None).into_sorted_entries()
                    })
                    .collect(),
                finished: false,
            };
        }
        // Pure-f64 pass through the same multi-kernel layout.
        let flat_q = flatten(queries);
        let flat_w: Vec<f64> = metrics.iter().flat_map(|m| m.weights().to_vec()).collect();
        let scan_chunk = |rows: std::ops::Range<usize>, kbs: &mut [KBest]| {
            let nq = kbs.len();
            let mut keys = vec![0.0f64; nq * BLOCK_ROWS];
            let mut bounds = vec![f64::INFINITY; nq];
            let mut start = rows.start;
            let mut tally = ScanStats::default();
            while start < rows.end {
                let end = (start + BLOCK_ROWS).min(rows.end);
                let n = end - start;
                tally.rows_visited += n as u64;
                let block = self.coll.block(start, end);
                for (q, (b, kb)) in bounds.iter_mut().zip(kbs.iter()).enumerate() {
                    *b = kb.threshold().min(cap_of(caps, q));
                }
                kernels::weighted_sq_multi_block(
                    &flat_w,
                    dim,
                    &flat_q,
                    block,
                    dim,
                    &bounds,
                    &mut keys[..nq * n],
                );
                let mut block_abandoned = false;
                for (q, kb) in kbs.iter_mut().enumerate() {
                    for (offset, &key) in keys[q * n..(q + 1) * n].iter().enumerate() {
                        // Capped pruning can abandon rows before the
                        // k-best is full; the bound guard keeps their
                        // partial-sum keys (> bound) out of the heap.
                        if key <= bounds[q] {
                            kb.push((start + offset) as u32, key);
                        } else {
                            block_abandoned = true;
                        }
                    }
                }
                tally.blocks_abandoned += block_abandoned as u64;
                start = end;
            }
            self.record_stats(tally);
        };
        let kbs = match mode {
            ScanMode::Batched => {
                let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                scan_chunk(0..self.coll.len(), &mut kbs);
                kbs
            }
            ScanMode::Parallel => self.parallel_merge(ks, &scan_chunk),
            _ => unreachable!("scalar handled above"),
        };
        KeyedResults {
            entries: kbs.into_iter().map(KBest::into_sorted_entries).collect(),
            finished: false,
        }
    }

    /// Two-phase per-query-metric scan (each query's own slack/kernels),
    /// results still in key space.
    fn knn_per_query_f32_keyed(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
        slacks: &[f64],
        mode: ScanMode,
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        let q32s: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| q.iter().map(|&v| v as f32).collect())
            .collect();
        let cands = match mode {
            ScanMode::Batched => {
                let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                let mut cands: Vec<Vec<(u32, f32)>> = vec![Vec::new(); ks.len()];
                self.scan_range_per_query_f32(
                    &q32s,
                    dists,
                    slacks,
                    ks,
                    0..self.coll.len(),
                    &mut kbs,
                    &mut cands,
                    caps,
                );
                filter_candidates(&kbs, slacks, cands, caps, self.stats)
            }
            ScanMode::Parallel => {
                self.parallel_candidates(ks, slacks, caps, &|range, kbs, cands| {
                    self.scan_range_per_query_f32(&q32s, dists, slacks, ks, range, kbs, cands, caps)
                })
            }
            _ => unreachable!("f32 path only runs in kernel modes"),
        };
        KeyedResults {
            entries: queries
                .iter()
                .zip(dists.iter().zip(ks.iter()))
                .zip(cands.iter())
                .map(|((q, (d, &k)), c)| {
                    rescore_f64_keyed(self.coll, q, *d, c, k, None).into_sorted_entries()
                })
                .collect(),
            finished: false,
        }
    }

    /// Shared-metric blocked pass over one contiguous index range:
    /// refresh every query's bound per block, evaluate the block against
    /// all queries in one kernel call, push surrogate keys. `perm`
    /// (when given) maps each scanned row index before the push — the
    /// partitioned scan's reorder-transparency: selection tie-breaks
    /// then happen in the *original* index space, which is what pins
    /// partitioned answers bit-identical to flat ones.
    pub(crate) fn scan_range_shared(
        &self,
        flat_queries: &[f64],
        dist: &dyn Distance,
        rows: std::ops::Range<usize>,
        kbs: &mut [KBest],
        caps: Option<&[f64]>,
        perm: Option<&[u32]>,
    ) {
        let dim = self.coll.dim();
        let nq = kbs.len();
        let mut keys = vec![0.0f64; nq * BLOCK_ROWS];
        let mut bounds = vec![f64::INFINITY; nq];
        let mut start = rows.start;
        let mut tally = ScanStats::default();
        while start < rows.end {
            let end = (start + BLOCK_ROWS).min(rows.end);
            let n = end - start;
            tally.rows_visited += n as u64;
            let block = self.coll.block(start, end);
            for (q, (b, kb)) in bounds.iter_mut().zip(kbs.iter()).enumerate() {
                *b = kb.threshold().min(cap_of(caps, q));
            }
            dist.eval_key_multi(flat_queries, block, dim, &bounds, &mut keys[..nq * n]);
            let mut block_abandoned = false;
            for (q, kb) in kbs.iter_mut().enumerate() {
                for (offset, &key) in keys[q * n..(q + 1) * n].iter().enumerate() {
                    // Capped pruning can abandon rows before the k-best
                    // is full; keep their partial-sum keys (> bound)
                    // out of the heap.
                    if key <= bounds[q] {
                        let idx = start + offset;
                        kb.push(perm.map_or(idx as u32, |p| p[idx]), key);
                    } else {
                        block_abandoned = true;
                    }
                }
            }
            tally.blocks_abandoned += block_abandoned as u64;
            start = end;
        }
        self.record_stats(tally);
    }

    /// Shared-metric f32 phase-1 over one contiguous index range of the
    /// mirror: per-query bounds inflated by `2·slack`, every row whose
    /// f32 key lands under its query's inflated bound recorded in that
    /// query's candidate list (`kbs` tracks f32 keys only to tighten the
    /// bounds as the pass advances).
    ///
    /// Why `2·slack` suffices (per query; `τ64` = the k-th smallest true
    /// f64 key, `τ32` = the k-th smallest f32 key, `Δ` = slack):
    /// every row obeys `|key32 − key64| ≤ Δ`, so a true top-k row has
    /// `key32 ≤ τ64 + Δ`, and the k rows realizing `τ64` witness
    /// `τ32 ≤ τ64 + Δ ⇒ τ64 ≥ τ32 − Δ`… combined: a true top-k row
    /// (ties included) always has `key32 ≤ τ32 + 2Δ`. The running
    /// threshold is the k-th best f32 key *pushed so far*, which can
    /// never undershoot `τ32`, so the per-block bound
    /// `threshold + 2Δ ≥ τ32 + 2Δ` keeps every such row: its monotone
    /// f32 prefix sums never exceed its final `key32 ≤ bound`, so the
    /// kernel cannot abandon it, and the `key32 ≤ bound` filter admits
    /// it into `cands` (with its f32 key, so [`filter_candidates`] can
    /// re-apply the same test against the *final* — tightest — threshold
    /// before the rescore pays any scattered f64 reads).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_range_shared_f32(
        &self,
        flat_q32: &[f32],
        dist: &dyn Distance,
        slack: f64,
        ks: &[usize],
        rows: std::ops::Range<usize>,
        kbs: &mut [KBest],
        cands: &mut [Vec<(u32, f32)>],
        caps: Option<&[f64]>,
    ) {
        let dim = self.coll.dim();
        let nq = kbs.len();
        let mut keys = vec![0.0f32; nq * BLOCK_ROWS];
        let mut bounds64 = vec![f64::INFINITY; nq];
        let mut bounds32 = vec![f32::INFINITY; nq];
        let mut start = rows.start;
        let mut tally = ScanStats::default();
        while start < rows.end {
            let end = (start + BLOCK_ROWS).min(rows.end);
            let n = end - start;
            tally.rows_visited += n as u64;
            let block = self
                .coll
                .block_f32(start, end)
                .expect("f32 path requires the mirror");
            for (q, ((b64, b32), (kb, &k))) in bounds64
                .iter_mut()
                .zip(bounds32.iter_mut())
                .zip(kbs.iter().zip(ks.iter()))
                .enumerate()
            {
                // k = 0 collects nothing (an empty result needs no
                // candidates; KBest's idle threshold would otherwise
                // admit every row).
                *b64 = if k == 0 {
                    f64::NEG_INFINITY
                } else {
                    kb.threshold().min(cap_of(caps, q)) + 2.0 * slack
                };
                *b32 = f32_bound_up(*b64);
            }
            dist.eval_key_multi_f32(flat_q32, block, dim, &bounds32, &mut keys[..nq * n]);
            let mut block_abandoned = false;
            for (q, (kb, cand)) in kbs.iter_mut().zip(cands.iter_mut()).enumerate() {
                for (offset, &key) in keys[q * n..(q + 1) * n].iter().enumerate() {
                    if (key as f64) <= bounds64[q] {
                        cand.push(((start + offset) as u32, key));
                        kb.push((start + offset) as u32, key as f64);
                    } else {
                        block_abandoned = true;
                    }
                }
            }
            tally.blocks_abandoned += block_abandoned as u64;
            start = end;
        }
        self.record_stats(tally);
    }

    /// Per-query-metric f32 phase-1: one shared mirror-block read, one
    /// f32 batch kernel call per (query, block), each query pruned by
    /// its own `2·slack`-inflated bound (same containment argument as
    /// [`Self::scan_range_shared_f32`], per query).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_range_per_query_f32(
        &self,
        q32s: &[Vec<f32>],
        dists: &[&dyn Distance],
        slacks: &[f64],
        ks: &[usize],
        rows: std::ops::Range<usize>,
        kbs: &mut [KBest],
        cands: &mut [Vec<(u32, f32)>],
        caps: Option<&[f64]>,
    ) {
        let dim = self.coll.dim();
        let mut keys = [0.0f32; BLOCK_ROWS];
        let mut start = rows.start;
        let mut tally = ScanStats::default();
        while start < rows.end {
            let end = (start + BLOCK_ROWS).min(rows.end);
            let n = end - start;
            tally.rows_visited += n as u64;
            let block = self
                .coll
                .block_f32(start, end)
                .expect("f32 path requires the mirror");
            let mut block_abandoned = false;
            for (q, ((q32, d), (kb, cand))) in q32s
                .iter()
                .zip(dists.iter())
                .zip(kbs.iter_mut().zip(cands.iter_mut()))
                .enumerate()
            {
                let bound64 = if ks[q] == 0 {
                    f64::NEG_INFINITY
                } else {
                    kb.threshold().min(cap_of(caps, q)) + 2.0 * slacks[q]
                };
                d.eval_key_batch_f32(q32, block, dim, f32_bound_up(bound64), &mut keys[..n]);
                for (offset, &key) in keys[..n].iter().enumerate() {
                    if (key as f64) <= bound64 {
                        cand.push(((start + offset) as u32, key));
                        kb.push((start + offset) as u32, key as f64);
                    } else {
                        block_abandoned = true;
                    }
                }
            }
            tally.blocks_abandoned += block_abandoned as u64;
            start = end;
        }
        self.record_stats(tally);
    }

    /// Per-query-metric blocked pass: one shared block read, one
    /// single-query batch kernel call per (query, block) on the hot
    /// block. `perm` as on [`Self::scan_range_shared`].
    pub(crate) fn scan_range_per_query(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        rows: std::ops::Range<usize>,
        kbs: &mut [KBest],
        caps: Option<&[f64]>,
        perm: Option<&[u32]>,
    ) {
        let dim = self.coll.dim();
        let mut keys = [0.0f64; BLOCK_ROWS];
        let mut start = rows.start;
        let mut tally = ScanStats::default();
        while start < rows.end {
            let end = (start + BLOCK_ROWS).min(rows.end);
            let n = end - start;
            tally.rows_visited += n as u64;
            let block = self.coll.block(start, end);
            let mut block_abandoned = false;
            for (qi, ((q, d), kb)) in queries
                .iter()
                .zip(dists.iter())
                .zip(kbs.iter_mut())
                .enumerate()
            {
                let bound = kb.threshold().min(cap_of(caps, qi));
                d.eval_key_batch(q, block, dim, bound, &mut keys[..n]);
                for (offset, &key) in keys[..n].iter().enumerate() {
                    if key <= bound {
                        let idx = start + offset;
                        kb.push(perm.map_or(idx as u32, |p| p[idx]), key);
                    } else {
                        block_abandoned = true;
                    }
                }
            }
            tally.blocks_abandoned += block_abandoned as u64;
            start = end;
        }
        self.record_stats(tally);
    }

    /// Parallel driver shared by both entry points: fan contiguous row
    /// chunks out to worker threads, each carrying a private k-best per
    /// query, then fold every thread's candidates through one final
    /// k-best per query by ascending `(key, index)` — deterministic
    /// regardless of thread count, chunk boundaries or completion order,
    /// and identical to what the single-threaded pass selects.
    fn parallel_merge(
        &self,
        ks: &[usize],
        scan_chunk: &(dyn Fn(std::ops::Range<usize>, &mut [KBest]) + Sync),
    ) -> Vec<KBest> {
        let len = self.coll.len();
        let threads = scan_threads(self.thread_budget, len.div_ceil(BLOCK_ROWS));
        if threads == 1 {
            let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
            scan_chunk(0..len, &mut kbs);
            return kbs;
        }
        let chunk = len.div_ceil(threads);
        let mut per_thread: Vec<Vec<Vec<(f64, u32)>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(len);
                    scope.spawn(move || {
                        let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                        scan_chunk(lo..hi, &mut kbs);
                        kbs.iter()
                            .map(|kb| {
                                let mut entries: Vec<(f64, u32)> = kb.entries().collect();
                                entries.sort_unstable_by(|a, b| {
                                    a.0.partial_cmp(&b.0)
                                        .expect("non-finite key")
                                        .then(a.1.cmp(&b.1))
                                });
                                entries
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                per_thread.push(h.join().expect("multi-scan worker panicked"));
            }
        });
        let mut merged: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
        for thread_entries in per_thread {
            for (kb, entries) in merged.iter_mut().zip(thread_entries) {
                for (key, index) in entries {
                    if key > kb.threshold() {
                        break; // sorted: the rest of this thread can't enter
                    }
                    kb.push(index, key);
                }
            }
        }
        merged
    }

    /// Parallel phase-1 driver for the f32 paths: fan contiguous row
    /// chunks out to worker threads, each collecting per-query candidate
    /// lists against its own (chunk-local, hence looser — still a
    /// superset) inflated bounds and filtering them against its final
    /// chunk-local thresholds, then concatenate per query in chunk
    /// order. The exact rescore runs after, so chunk boundaries and
    /// thread count cannot change the final answer.
    fn parallel_candidates(
        &self,
        ks: &[usize],
        slacks: &[f64],
        caps: Option<&[f64]>,
        scan_chunk: &F32ChunkScan<'_>,
    ) -> Vec<Vec<u32>> {
        let len = self.coll.len();
        let nq = ks.len();
        let threads = scan_threads(self.thread_budget, len.div_ceil(BLOCK_ROWS));
        if threads == 1 {
            let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
            let mut cands: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nq];
            scan_chunk(0..len, &mut kbs, &mut cands);
            return filter_candidates(&kbs, slacks, cands, caps, self.stats);
        }
        let chunk = len.div_ceil(threads);
        let mut merged: Vec<Vec<u32>> = vec![Vec::new(); nq];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(len);
                    scope.spawn(move || {
                        let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                        let mut cands: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nq];
                        scan_chunk(lo..hi, &mut kbs, &mut cands);
                        filter_candidates(&kbs, slacks, cands, caps, self.stats)
                    })
                })
                .collect();
            for h in handles {
                // Chunks are disjoint and joined in spawn order, so the
                // concatenation stays sorted by index per query.
                for (m, c) in merged
                    .iter_mut()
                    .zip(h.join().expect("multi-scan worker panicked"))
                {
                    m.extend(c);
                }
            }
        });
        merged
    }
}

/// Final candidate filter between the phases: re-apply the containment
/// test `key32 ≤ threshold + 2·slack` with each query's **final** phase-1
/// threshold. During the pass, candidates are admitted against whatever
/// (looser) threshold was current — the first block alone admits every
/// row — so most of the pool is stale by the end. The final threshold is
/// the k-th smallest f32 key pushed, which never undershoots the true
/// k-th smallest f32 key, so the argument on
/// [`MultiQueryScan::scan_range_shared_f32`] applies verbatim and the
/// filtered pool still contains the true f64 top-k — while the rescore
/// now gathers ~k scattered rows instead of hundreds.
pub(crate) fn filter_candidates(
    kbs: &[KBest],
    slacks: &[f64],
    cands: Vec<Vec<(u32, f32)>>,
    caps: Option<&[f64]>,
    stats: Option<&ScanStatsSink>,
) -> Vec<Vec<u32>> {
    let mut tally = ScanStats::default();
    let kept: Vec<Vec<u32>> = kbs
        .iter()
        .zip(slacks.iter())
        .zip(cands)
        .enumerate()
        .map(|(q, ((kb, &slack), cand))| {
            let bound = kb.threshold().min(cap_of(caps, q)) + 2.0 * slack;
            let pool = cand.len() as u64;
            let survivors: Vec<u32> = cand
                .into_iter()
                .filter(|&(_, key)| (key as f64) <= bound)
                .map(|(i, _)| i)
                .collect();
            tally.candidates_rescored += survivors.len() as u64;
            tally.candidates_filtered += pool - survivors.len() as u64;
            survivors
        })
        .collect();
    if let Some(sink) = stats {
        sink.record(&tally);
    }
    kept
}

/// Query `q`'s pruning cap: a caller-guaranteed upper bound on the
/// true global k-th key, or `+∞` when no caps were provided. Taking
/// `min(running threshold, cap)` everywhere a bound is formed can only
/// drop rows that cannot appear in the merged global top-k, which is
/// the entire soundness argument for cross-shard bound propagation.
#[inline]
pub(crate) fn cap_of(caps: Option<&[f64]>, q: usize) -> f64 {
    caps.map_or(f64::INFINITY, |c| c[q])
}

/// Concatenate query slices into the row-major layout the multi-query
/// kernels consume.
pub(crate) fn flatten(queries: &[&[f64]]) -> Vec<f64> {
    let mut flat = Vec::with_capacity(queries.len() * queries.first().map_or(0, |q| q.len()));
    for q in queries {
        flat.extend_from_slice(q);
    }
    flat
}

/// Same, rounded once to the f32 layout the mirror kernels consume.
pub(crate) fn flatten_f32(queries: &[&[f64]]) -> Vec<f32> {
    let mut flat = Vec::with_capacity(queries.len() * queries.first().map_or(0, |q| q.len()));
    for q in queries {
        flat.extend(q.iter().map(|&v| v as f32));
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::super::{KnnEngine, LinearScan};
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::distance::{Euclidean, WeightedEuclidean};

    fn pseudo_random_collection(n: usize, dim: usize) -> Collection {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut b = CollectionBuilder::new();
        for _ in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| next()).collect();
            b.push_unlabelled(&v).unwrap();
        }
        b.build()
    }

    fn sample_queries(nq: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..nq)
            .map(|q| {
                (0..dim)
                    .map(|i| ((q * 13 + i * 7) as f64 * 0.37).sin().abs())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn multi_matches_independent_scans_all_modes() {
        let c = pseudo_random_collection(900, 24);
        let queries = sample_queries(4, 24);
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let w = WeightedEuclidean::new((0..24).map(|i| 0.2 + (i % 5) as f64).collect()).unwrap();
        for mode in [ScanMode::Scalar, ScanMode::Batched, ScanMode::Parallel] {
            let multi = MultiQueryScan::with_mode(&c, mode).knn_multi(&refs, 7, &w);
            let single = LinearScan::with_mode(&c, mode);
            for (q, res) in refs.iter().zip(multi.iter()) {
                assert_eq!(res, &single.knn(q, 7, &w), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn per_query_metrics_match_independent_scans() {
        let c = pseudo_random_collection(700, 16);
        let queries = sample_queries(3, 16);
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let metrics: Vec<WeightedEuclidean> = (0..3)
            .map(|q| {
                WeightedEuclidean::new((0..16).map(|i| 0.3 + ((q + i) % 4) as f64).collect())
                    .unwrap()
            })
            .collect();
        let dists: Vec<&dyn Distance> = metrics.iter().map(|m| m as &dyn Distance).collect();
        for mode in [ScanMode::Batched, ScanMode::Parallel] {
            let multi = MultiQueryScan::with_mode(&c, mode).knn_per_query(&refs, &dists, 5);
            for ((q, d), res) in refs.iter().zip(metrics.iter()).zip(multi.iter()) {
                let expect = LinearScan::with_mode(&c, ScanMode::Batched).knn(q, 5, d);
                assert_eq!(res, &expect, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let c = pseudo_random_collection(50, 4);
        let scan = MultiQueryScan::new(&c);
        assert!(scan.knn_multi(&[], 3, &Euclidean).is_empty());
        let empty = CollectionBuilder::new().build();
        let scan = MultiQueryScan::new(&empty);
        let q: &[f64] = &[];
        let res = scan.knn_multi(&[q, q], 3, &Euclidean);
        assert_eq!(res, vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn k_zero_and_k_oversized() {
        let c = pseudo_random_collection(30, 6);
        let queries = sample_queries(2, 6);
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let scan = MultiQueryScan::with_mode(&c, ScanMode::Batched);
        for res in scan.knn_multi(&refs, 0, &Euclidean) {
            assert!(res.is_empty());
        }
        for res in scan.knn_multi(&refs, 100, &Euclidean) {
            assert_eq!(res.len(), 30);
            for w in res.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn per_query_k_matches_independent_scans() {
        let c = pseudo_random_collection(900, 24);
        let queries = sample_queries(3, 24);
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let ks = [1usize, 10, 50];
        let w = WeightedEuclidean::new((0..24).map(|i| 0.2 + (i % 5) as f64).collect()).unwrap();
        for mode in [ScanMode::Scalar, ScanMode::Batched, ScanMode::Parallel] {
            let multi = MultiQueryScan::with_mode(&c, mode).knn_multi_k(&refs, &ks, &w);
            let single = LinearScan::with_mode(&c, mode);
            for ((q, res), &k) in refs.iter().zip(multi.iter()).zip(ks.iter()) {
                assert_eq!(res.len(), k, "mode {mode:?}");
                assert_eq!(res, &single.knn(q, k, &w), "mode {mode:?} k={k}");
            }
        }
        // Per-query metrics with per-query k share the same pass.
        let metrics: Vec<WeightedEuclidean> = (0..3)
            .map(|q| {
                WeightedEuclidean::new((0..24).map(|i| 0.3 + ((q + i) % 4) as f64).collect())
                    .unwrap()
            })
            .collect();
        let dists: Vec<&dyn Distance> = metrics.iter().map(|m| m as &dyn Distance).collect();
        for mode in [ScanMode::Batched, ScanMode::Parallel] {
            let multi = MultiQueryScan::with_mode(&c, mode).knn_per_query_k(&refs, &dists, &ks);
            for (((q, d), res), &k) in refs
                .iter()
                .zip(metrics.iter())
                .zip(multi.iter())
                .zip(ks.iter())
            {
                let expect = LinearScan::with_mode(&c, ScanMode::Batched).knn(q, k, d);
                assert_eq!(res, &expect, "mode {mode:?} k={k}");
            }
        }
    }

    #[test]
    fn weighted_per_query_matches_generic_and_linear() {
        let c = pseudo_random_collection(900, 24);
        let queries = sample_queries(5, 24);
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let metrics: Vec<WeightedEuclidean> = (0..5)
            .map(|q| {
                WeightedEuclidean::new((0..24).map(|i| 0.3 + ((q + i) % 4) as f64).collect())
                    .unwrap()
            })
            .collect();
        let dists: Vec<&dyn Distance> = metrics.iter().map(|m| m as &dyn Distance).collect();
        let ks = [1usize, 10, 50, 7, 3];
        for mode in [ScanMode::Scalar, ScanMode::Batched, ScanMode::Parallel] {
            let scan = MultiQueryScan::with_mode(&c, mode);
            let specialized = scan.knn_weighted_per_query_k(&refs, &metrics, &ks);
            let generic = scan.knn_per_query_k(&refs, &dists, &ks);
            assert_eq!(specialized, generic, "mode {mode:?}");
            for ((q, m), (res, &k)) in refs
                .iter()
                .zip(metrics.iter())
                .zip(specialized.iter().zip(ks.iter()))
            {
                // Same-mode LinearScan: Scalar is the 1-ulp reference
                // baseline, the kernel modes are bit-identical to each
                // other.
                let expect = LinearScan::with_mode(&c, mode).knn(q, k, m);
                assert_eq!(res, &expect, "mode {mode:?} k={k}");
            }
        }
        // Empty inputs and empty collections behave like the generic
        // path.
        let scan = MultiQueryScan::new(&c);
        assert!(scan.knn_weighted_per_query_k(&[], &[], &[]).is_empty());
        let empty = CollectionBuilder::new().build();
        let scan = MultiQueryScan::new(&empty);
        let q: &[f64] = &[];
        let m = [WeightedEuclidean::uniform(0)];
        assert_eq!(
            scan.knn_weighted_per_query_k(&[q], &m[..1], &[3]),
            vec![Vec::new()]
        );
    }

    #[test]
    fn auto_mode_scales_with_query_count() {
        // A collection too small to go parallel for one query crosses the
        // cutoff once enough queries share the pass.
        let c = pseudo_random_collection(400, 16); // 6400 components/query
        let scan = MultiQueryScan::new(&c);
        assert_eq!(scan.effective_mode(1), ScanMode::Batched);
        assert_eq!(scan.effective_mode(16), ScanMode::Parallel);
    }

    #[test]
    fn thread_budget_is_respected_and_exact() {
        let c = pseudo_random_collection(2000, 12);
        let queries = sample_queries(5, 12);
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let unbudgeted = MultiQueryScan::with_mode(&c, ScanMode::Parallel);
        let budgeted = MultiQueryScan::with_mode(&c, ScanMode::Parallel).with_thread_budget(2);
        let one = MultiQueryScan::with_mode(&c, ScanMode::Parallel).with_thread_budget(1);
        let a = unbudgeted.knn_multi(&refs, 9, &Euclidean);
        let b = budgeted.knn_multi(&refs, 9, &Euclidean);
        let c2 = one.knn_multi(&refs, 9, &Euclidean);
        assert_eq!(a, b);
        assert_eq!(a, c2);
    }

    #[test]
    fn stats_count_per_query_evals() {
        let c = pseudo_random_collection(40, 4);
        let queries = sample_queries(3, 4);
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let (_, stats) = MultiQueryScan::new(&c).knn_multi_with_stats(&refs, 2, &Euclidean);
        assert_eq!(stats.distance_evals, 120);
        assert_eq!(stats.nodes_visited, 0);
    }
}
