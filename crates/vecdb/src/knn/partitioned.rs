//! Proof-based partition pruning: sub-linear scans that stay
//! bit-identical to the flat pass.
//!
//! A [`PartitionedScan`] runs the same selection the flat
//! [`MultiQueryScan`] runs — same kernels, same key spaces, same
//! `(key, index)` tie-breaks, same `F32Rescore` two-phase machinery,
//! same `caps` seeding — but walks the collection partition by
//! partition (the [`PartitionedCollection`] layout is
//! partition-contiguous, so each surviving partition is one contiguous
//! block scan) and **skips** any partition whose per-class key-space
//! lower bound ([`Distance::partition_lower_key`]) exceeds every
//! query's running selection bound.
//!
//! # Invariant: pruning is answer-transparent
//!
//! A partition is skipped only when, for **every** query, a sound
//! certificate proves no member row can enter that query's k-best:
//!
//! * f64 paths — skip for query `q` iff `lb > min(threshold_q, cap_q)`
//!   (strictly greater, so key ties at the bound survive). Every member
//!   key is ≥ `lb`, the running threshold never undershoots the final
//!   k-th key, and `cap_q` is caller-guaranteed sound — so a skipped
//!   member could never displace a result.
//! * f32 phase-1 — the running threshold `t` lives in f32-key space,
//!   while `lb` is exact. `t` never undershoots `τ32` (the true k-th
//!   f32 key), and every row obeys `|key32 − key64| ≤ Δ`
//!   (`Δ` = `f32_key_slack`), so `τ64 ≤ τ32 + Δ ≤ t + Δ`: skip iff
//!   `lb > min(t + Δ, cap_q)`. Skipped members have
//!   `key64 ≥ lb > τ64`, hence are not in the true top-k, and the
//!   surviving candidate pool keeps the same superset guarantee the
//!   flat f32 pass proves.
//! * Queries whose class reports no sound bound (`None`) never prune
//!   anything — they force the flat pass over every partition, per
//!   class and explicitly. `k = 0` queries need nothing and always
//!   "agree" to skip.
//!
//! Because the partitioned pass pushes **original** row indices during
//! selection (via the layout's permutation) and a k-best's content is
//! insertion-order-independent, visit order — and therefore the
//! ascending-lower-bound order used to tighten thresholds early — can
//! never change an answer. The bit-identity suite
//! (`crates/vecdb/tests/partitioned.rs`) pins all of this against the
//! flat scans.

use super::multi::{cap_of, filter_candidates, flatten, flatten_f32, KeyedResults};
use super::stats::{ScanStats, ScanStatsSink};
use super::{
    finish_entries, rescore_f64_keyed, scan_threads, KBest, MultiQueryScan, Neighbor, Precision,
    ScanMode, BLOCK_ROWS, PARALLEL_CUTOFF,
};
use crate::collection::PartitionedCollection;
use crate::distance::{Distance, WeightedEuclidean};

/// Chunk scanner of the f64 merge path: scan `rows`, folding hits into
/// the running k-bests under the optional per-query caps.
type MergeChunk<'f> = dyn Fn(std::ops::Range<usize>, &mut [KBest], Option<&[f64]>) + Sync + 'f;

/// Chunk scanner of the f32 phase-1 path: additionally collects the
/// per-query `(inner index, f32 key)` candidate pools for the rescore.
type CandidateChunk<'f> = dyn Fn(std::ops::Range<usize>, &mut [KBest], &mut [Vec<(u32, f32)>], Option<&[f64]>)
    + Sync
    + 'f;

/// Partition-pruning k-NN engine borrowing a [`PartitionedCollection`].
///
/// Configuration mirrors [`MultiQueryScan`]; results are bit-identical
/// to the flat scan over the source collection in every configuration
/// (see the module docs for the invariant). `ScanMode::Scalar` is the
/// reference baseline and never prunes.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedScan<'a> {
    part: &'a PartitionedCollection,
    mode: ScanMode,
    precision: Precision,
    thread_budget: Option<usize>,
    stats: Option<&'a ScanStatsSink>,
}

impl<'a> PartitionedScan<'a> {
    /// New engine over `part` with [`ScanMode::Auto`].
    pub fn new(part: &'a PartitionedCollection) -> Self {
        PartitionedScan {
            part,
            mode: ScanMode::Auto,
            precision: Precision::F64,
            thread_budget: None,
            stats: None,
        }
    }

    /// New engine with an explicit execution mode.
    pub fn with_mode(part: &'a PartitionedCollection, mode: ScanMode) -> Self {
        PartitionedScan {
            mode,
            ..Self::new(part)
        }
    }

    /// Select the scan precision (same degrade rules as
    /// [`MultiQueryScan::with_precision`]).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Cap the parallel path at `threads` worker threads (at least 1).
    pub fn with_thread_budget(mut self, threads: usize) -> Self {
        self.thread_budget = Some(threads.max(1));
        self
    }

    /// Flush this scan's work counters into `sink` — including the new
    /// [`ScanStats::partitions_pruned`], the sub-linearity witness.
    pub fn with_scan_stats(mut self, sink: &'a ScanStatsSink) -> Self {
        self.stats = Some(sink);
        self
    }

    /// The underlying partitioned collection.
    pub fn partitions(&self) -> &'a PartitionedCollection {
        self.part
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The inner (reordered) flat scan with this engine's precision,
    /// budget and stats sink: the partitioned pass drives its
    /// range-scan primitives directly, so every per-row code path is
    /// *the* flat code path.
    fn inner_scan(&self) -> MultiQueryScan<'a> {
        let mut scan = MultiQueryScan::with_mode(self.part.collection(), ScanMode::Batched)
            .with_precision(self.precision);
        if let Some(budget) = self.thread_budget {
            scan = scan.with_thread_budget(budget);
        }
        if let Some(sink) = self.stats {
            scan = scan.with_scan_stats(sink);
        }
        scan
    }

    fn record_stats(&self, tally: ScanStats) {
        if let Some(sink) = self.stats {
            sink.record(&tally);
        }
    }

    fn record_seeded_pass(&self, caps: Option<&[f64]>) {
        if self.stats.is_some() && caps.is_some_and(|c| c.iter().any(|v| v.is_finite())) {
            self.record_stats(ScanStats {
                seed_prunes: 1,
                ..Default::default()
            });
        }
    }

    /// Same Auto resolution as the flat scan (total work across the
    /// whole collection — pruning-dependent savings are unknowable
    /// up front).
    fn effective_mode(&self, nq: usize) -> ScanMode {
        match self.mode {
            ScanMode::Auto => {
                if self.part.len() * self.part.dim().max(1) * nq.max(1) >= PARALLEL_CUTOFF {
                    ScanMode::Parallel
                } else {
                    ScanMode::Batched
                }
            }
            m => m,
        }
    }

    /// Per-(partition, query) key-space lower bounds, row-major by
    /// partition (`lbs[p · nq + q]`). `None` ⇔ query `q`'s class
    /// certifies no bound and can never prune partition `p`.
    fn partition_lower_bounds(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
    ) -> Vec<Option<f64>> {
        let p_count = self.part.partition_count();
        let nq = queries.len();
        let mut lbs = Vec::with_capacity(p_count * nq);
        for p in 0..p_count {
            let centroid = self.part.centroid(p);
            let radius = self.part.radius(p);
            for (q, d) in queries.iter().zip(dists.iter()) {
                lbs.push(if self.part.rows(p).is_empty() {
                    None // empty partitions are skipped, not "pruned"
                } else {
                    d.partition_lower_key(q, centroid, radius)
                });
            }
        }
        lbs
    }

    /// Partition visit order: ascending by the min-over-queries lower
    /// bound (unboundable queries sort a partition first). Visiting
    /// likely-near partitions first tightens every threshold as early
    /// as possible, maximizing later prunes; by the module invariant
    /// the order itself can never change an answer.
    fn visit_order(&self, lbs: &[Option<f64>], nq: usize) -> Vec<usize> {
        let p_count = self.part.partition_count();
        let sort_key = |p: usize| {
            lbs[p * nq..(p + 1) * nq]
                .iter()
                .map(|lb| lb.unwrap_or(f64::NEG_INFINITY))
                .fold(f64::INFINITY, f64::min)
        };
        let mut order: Vec<usize> = (0..p_count).collect();
        order.sort_unstable_by(|&a, &b| {
            sort_key(a)
                .partial_cmp(&sort_key(b))
                .expect("lower bounds are never NaN")
                .then(a.cmp(&b))
        });
        order
    }

    /// Whether every query proves partition slice `lbs_p` skippable on
    /// the f64 path: `lb > min(threshold, cap)`, strictly (ties at the
    /// bound must survive); `k = 0` needs nothing; `None` never prunes.
    fn all_prune_f64(
        lbs_p: &[Option<f64>],
        ks: &[usize],
        kbs: &[KBest],
        caps: Option<&[f64]>,
    ) -> bool {
        lbs_p.iter().enumerate().all(|(q, lb)| {
            ks[q] == 0 || lb.is_some_and(|l| l > kbs[q].threshold().min(cap_of(caps, q)))
        })
    }

    /// f32-phase-1 variant: the running threshold is in f32-key space,
    /// so the sound comparison is `lb > min(t + Δ, cap)` (module docs).
    fn all_prune_f32(
        lbs_p: &[Option<f64>],
        ks: &[usize],
        kbs: &[KBest],
        slacks: &[f64],
        caps: Option<&[f64]>,
    ) -> bool {
        lbs_p.iter().enumerate().all(|(q, lb)| {
            ks[q] == 0
                || lb.is_some_and(|l| l > (kbs[q].threshold() + slacks[q]).min(cap_of(caps, q)))
        })
    }

    /// The `k` nearest neighbors of every query under one shared
    /// metric — flat-scan semantics ([`MultiQueryScan::knn_multi`]),
    /// partition-pruned execution.
    pub fn knn_multi(
        &self,
        queries: &[&[f64]],
        k: usize,
        dist: &dyn Distance,
    ) -> Vec<Vec<Neighbor>> {
        self.knn_multi_k(queries, &vec![k; queries.len()], dist)
    }

    /// Per-query result counts under one shared metric
    /// ([`MultiQueryScan::knn_multi_k`] semantics).
    pub fn knn_multi_k(
        &self,
        queries: &[&[f64]],
        ks: &[usize],
        dist: &dyn Distance,
    ) -> Vec<Vec<Neighbor>> {
        let keyed = self.knn_multi_k_keyed(queries, ks, dist, None);
        keyed
            .entries
            .into_iter()
            .map(|e| finish_entries(e, keyed.finished, dist))
            .collect()
    }

    /// Per-query metrics ([`MultiQueryScan::knn_per_query`] semantics).
    pub fn knn_per_query(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        self.knn_per_query_k(queries, dists, &vec![k; queries.len()])
    }

    /// Per-query metrics and result counts
    /// ([`MultiQueryScan::knn_per_query_k`] semantics).
    pub fn knn_per_query_k(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
    ) -> Vec<Vec<Neighbor>> {
        let keyed = self.knn_per_query_k_keyed(queries, dists, ks, None);
        keyed
            .entries
            .into_iter()
            .zip(dists.iter())
            .map(|(e, d)| finish_entries(e, keyed.finished, *d))
            .collect()
    }

    /// Per-query weighted-Euclidean metrics
    /// ([`MultiQueryScan::knn_weighted_per_query_k`] semantics). The
    /// partitioned pass lowers to the generic per-query path — the
    /// per-(query, row) key arithmetic is identical in every kernel
    /// shape, so results stay bit-identical to the flat weighted entry.
    pub fn knn_weighted_per_query_k(
        &self,
        queries: &[&[f64]],
        metrics: &[WeightedEuclidean],
        ks: &[usize],
    ) -> Vec<Vec<Neighbor>> {
        let refs: Vec<&WeightedEuclidean> = metrics.iter().collect();
        let keyed = self.knn_weighted_per_query_k_keyed(queries, &refs, ks, None);
        keyed
            .entries
            .into_iter()
            .zip(metrics.iter())
            .map(|(e, m)| finish_entries(e, keyed.finished, m))
            .collect()
    }

    /// Selection-space shared-metric pass with pruning seeds (`caps` as
    /// on [`MultiQueryScan::knn_multi_k_keyed`]) — the sharded scatter
    /// stage's entry, so delivered partials seed partition bounds too.
    pub(crate) fn knn_multi_k_keyed(
        &self,
        queries: &[&[f64]],
        ks: &[usize],
        dist: &dyn Distance,
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() || self.part.is_empty() {
            return KeyedResults {
                entries: vec![Vec::new(); queries.len()],
                finished: true,
            };
        }
        let dim = self.part.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimensionality mismatch");
        }
        self.record_seeded_pass(caps);
        let mode = self.effective_mode(queries.len());
        if mode == ScanMode::Scalar {
            return self.scalar_reference(queries, ks, &vec![dist; queries.len()], caps);
        }
        let dists = vec![dist; queries.len()];
        let lbs = self.partition_lower_bounds(queries, &dists);
        let order = self.visit_order(&lbs, queries.len());
        let inner = self.inner_scan();
        if let Some(slack) = inner.f32_slack(dist, queries) {
            let flat32 = flatten_f32(queries);
            let slacks = vec![slack; ks.len()];
            let cands = self.pruned_candidates(
                &lbs,
                &order,
                ks,
                &slacks,
                caps,
                mode,
                &|range, kbs, cands, caps| {
                    inner.scan_range_shared_f32(&flat32, dist, slack, ks, range, kbs, cands, caps)
                },
            );
            return self.rescore(queries, &dists, ks, &cands);
        }
        let flat = flatten(queries);
        let kbs = self.pruned_merge(&lbs, &order, ks, caps, mode, &|range, kbs, caps| {
            inner.scan_range_shared(&flat, dist, range, kbs, caps, Some(self.part.perm()))
        });
        KeyedResults {
            entries: kbs.into_iter().map(KBest::into_sorted_entries).collect(),
            finished: false,
        }
    }

    /// Selection-space per-query-metric pass with pruning seeds
    /// ([`MultiQueryScan::knn_per_query_k_keyed`] semantics).
    pub(crate) fn knn_per_query_k_keyed(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        assert_eq!(
            queries.len(),
            dists.len(),
            "one distance function per query"
        );
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() || self.part.is_empty() {
            return KeyedResults {
                entries: vec![Vec::new(); queries.len()],
                finished: true,
            };
        }
        let dim = self.part.dim();
        for q in queries {
            assert_eq!(q.len(), dim, "query dimensionality mismatch");
        }
        self.record_seeded_pass(caps);
        let mode = self.effective_mode(queries.len());
        if mode == ScanMode::Scalar {
            return self.scalar_reference(queries, ks, dists, caps);
        }
        let lbs = self.partition_lower_bounds(queries, dists);
        let order = self.visit_order(&lbs, queries.len());
        let inner = self.inner_scan();
        // All-or-nothing f32 engagement, exactly like the flat scan.
        let slacks: Option<Vec<f64>> = dists.iter().map(|d| inner.f32_slack(*d, queries)).collect();
        if let Some(slacks) = slacks {
            let q32s: Vec<Vec<f32>> = queries
                .iter()
                .map(|q| q.iter().map(|&v| v as f32).collect())
                .collect();
            let cands = self.pruned_candidates(
                &lbs,
                &order,
                ks,
                &slacks,
                caps,
                mode,
                &|range, kbs, cands, caps| {
                    inner.scan_range_per_query_f32(
                        &q32s, dists, &slacks, ks, range, kbs, cands, caps,
                    )
                },
            );
            return self.rescore(queries, dists, ks, &cands);
        }
        let kbs = self.pruned_merge(&lbs, &order, ks, caps, mode, &|range, kbs, caps| {
            inner.scan_range_per_query(queries, dists, range, kbs, caps, Some(self.part.perm()))
        });
        KeyedResults {
            entries: kbs.into_iter().map(KBest::into_sorted_entries).collect(),
            finished: false,
        }
    }

    /// Selection-space weighted per-query pass
    /// ([`MultiQueryScan::knn_weighted_per_query_k_keyed`] semantics,
    /// lowered to the generic per-query path — bit-identical).
    pub(crate) fn knn_weighted_per_query_k_keyed(
        &self,
        queries: &[&[f64]],
        metrics: &[&WeightedEuclidean],
        ks: &[usize],
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        let dists: Vec<&dyn Distance> = metrics.iter().map(|m| *m as &dyn Distance).collect();
        self.knn_per_query_k_keyed(queries, &dists, ks, caps)
    }

    /// The Scalar reference pass: a flat, pruning-free loop pushing
    /// true distances under **original** indices (`finished = true`),
    /// exactly matching the flat scan's Scalar baseline — the anchor
    /// every pruned configuration is compared against.
    fn scalar_reference(
        &self,
        queries: &[&[f64]],
        ks: &[usize],
        dists: &[&dyn Distance],
        caps: Option<&[f64]>,
    ) -> KeyedResults {
        let coll = self.part.collection();
        let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
        for i in 0..coll.len() {
            let row = coll.vector(i);
            let orig = self.part.original_index(i);
            for (qi, ((q, d), kb)) in queries
                .iter()
                .zip(dists.iter())
                .zip(kbs.iter_mut())
                .enumerate()
            {
                let dist = d.eval(q, row);
                if dist <= cap_of(caps, qi) {
                    kb.push(orig, dist);
                }
            }
        }
        self.record_stats(ScanStats {
            rows_visited: coll.len() as u64,
            ..Default::default()
        });
        KeyedResults {
            entries: kbs.into_iter().map(KBest::into_sorted_entries).collect(),
            finished: true,
        }
    }

    /// f64 driver: walk partitions in `order`, skip proven-empty ones,
    /// scan survivors through `scan_chunk` (which pushes original
    /// indices), fanning large partitions out over threads in Parallel
    /// mode. Returns the running k-bests (original indices, key space).
    fn pruned_merge(
        &self,
        lbs: &[Option<f64>],
        order: &[usize],
        ks: &[usize],
        caps: Option<&[f64]>,
        mode: ScanMode,
        scan_chunk: &MergeChunk<'_>,
    ) -> Vec<KBest> {
        let nq = ks.len();
        let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
        let mut tally = ScanStats::default();
        for &p in order {
            let rows = self.part.rows(p);
            if rows.is_empty() {
                continue;
            }
            if Self::all_prune_f64(&lbs[p * nq..(p + 1) * nq], ks, &kbs, caps) {
                tally.partitions_pruned += 1;
                continue;
            }
            if mode == ScanMode::Parallel {
                self.parallel_partition_merge(ks, caps, &mut kbs, rows, scan_chunk);
            } else {
                scan_chunk(rows, &mut kbs, caps);
            }
        }
        self.record_stats(tally);
        kbs
    }

    /// Fan one surviving partition's rows out over worker threads.
    /// Workers get fresh k-bests seeded by a snapshot cap
    /// `min(running threshold, cap)` — a sound upper bound on each
    /// query's final key at this point of the pass — and their sorted
    /// entries merge back into the running k-bests by ascending
    /// `(key, index)`: deterministic, and identical to what the
    /// sequential partition walk selects.
    fn parallel_partition_merge(
        &self,
        ks: &[usize],
        caps: Option<&[f64]>,
        kbs: &mut [KBest],
        rows: std::ops::Range<usize>,
        scan_chunk: &MergeChunk<'_>,
    ) {
        let len = rows.len();
        let threads = scan_threads(self.thread_budget, len.div_ceil(BLOCK_ROWS));
        if threads == 1 {
            scan_chunk(rows, kbs, caps);
            return;
        }
        let snapshot: Vec<f64> = kbs
            .iter()
            .enumerate()
            .map(|(q, kb)| kb.threshold().min(cap_of(caps, q)))
            .collect();
        let chunk = len.div_ceil(threads);
        let mut per_thread: Vec<Vec<Vec<(f64, u32)>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = rows.start + t * chunk;
                    let hi = (lo + chunk).min(rows.end);
                    let snapshot = &snapshot;
                    scope.spawn(move || {
                        let mut wkbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                        scan_chunk(lo..hi, &mut wkbs, Some(snapshot));
                        wkbs.into_iter()
                            .map(KBest::into_sorted_entries)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                per_thread.push(h.join().expect("partitioned-scan worker panicked"));
            }
        });
        for thread_entries in per_thread {
            for (kb, entries) in kbs.iter_mut().zip(thread_entries) {
                for (key, index) in entries {
                    if key > kb.threshold() {
                        break; // sorted: the rest of this thread can't enter
                    }
                    kb.push(index, key);
                }
            }
        }
    }

    /// f32 phase-1 driver: walk partitions in `order` under the
    /// f32-space skip rule, collect candidate pools (inner-row indices
    /// — contiguous rescore gathers), then apply the final
    /// [`filter_candidates`] pass. The pool keeps the flat pass's
    /// superset guarantee, so the rescore pins exact answers.
    #[allow(clippy::too_many_arguments)]
    fn pruned_candidates(
        &self,
        lbs: &[Option<f64>],
        order: &[usize],
        ks: &[usize],
        slacks: &[f64],
        caps: Option<&[f64]>,
        mode: ScanMode,
        scan_chunk: &CandidateChunk<'_>,
    ) -> Vec<Vec<u32>> {
        let nq = ks.len();
        let mut kbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
        let mut cands: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nq];
        let mut tally = ScanStats::default();
        for &p in order {
            let rows = self.part.rows(p);
            if rows.is_empty() {
                continue;
            }
            if Self::all_prune_f32(&lbs[p * nq..(p + 1) * nq], ks, &kbs, slacks, caps) {
                tally.partitions_pruned += 1;
                continue;
            }
            if mode == ScanMode::Parallel {
                self.parallel_partition_candidates(
                    ks, slacks, caps, &mut kbs, &mut cands, rows, scan_chunk,
                );
            } else {
                scan_chunk(rows, &mut kbs, &mut cands, caps);
            }
        }
        self.record_stats(tally);
        filter_candidates(&kbs, slacks, cands, caps, self.stats)
    }

    /// Parallel fan-out for one surviving partition of the f32 phase-1.
    /// Workers see the snapshot cap `min(t + Δ, cap)` (sound on the
    /// true k-th f64 key — module docs), collect chunk-local candidate
    /// pools, and merge back in spawn order: pools concatenate (the
    /// rescore is order-independent) and worker k-best entries fold
    /// into the running f32 k-bests to keep later bounds tight.
    #[allow(clippy::too_many_arguments)]
    fn parallel_partition_candidates(
        &self,
        ks: &[usize],
        slacks: &[f64],
        caps: Option<&[f64]>,
        kbs: &mut [KBest],
        cands: &mut [Vec<(u32, f32)>],
        rows: std::ops::Range<usize>,
        scan_chunk: &CandidateChunk<'_>,
    ) {
        let len = rows.len();
        let nq = ks.len();
        let threads = scan_threads(self.thread_budget, len.div_ceil(BLOCK_ROWS));
        if threads == 1 {
            scan_chunk(rows, kbs, cands, caps);
            return;
        }
        let snapshot: Vec<f64> = kbs
            .iter()
            .enumerate()
            .map(|(q, kb)| (kb.threshold() + slacks[q]).min(cap_of(caps, q)))
            .collect();
        let chunk = len.div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = rows.start + t * chunk;
                    let hi = (lo + chunk).min(rows.end);
                    let snapshot = &snapshot;
                    scope.spawn(move || {
                        let mut wkbs: Vec<KBest> = ks.iter().map(|&k| KBest::new(k)).collect();
                        let mut wcands: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nq];
                        scan_chunk(lo..hi, &mut wkbs, &mut wcands, Some(snapshot));
                        let entries: Vec<Vec<(f64, u32)>> =
                            wkbs.into_iter().map(KBest::into_sorted_entries).collect();
                        (entries, wcands)
                    })
                })
                .collect();
            for h in handles {
                let (entries, wcands) = h.join().expect("partitioned-scan worker panicked");
                for ((kb, cand), (thread_entries, thread_cands)) in kbs
                    .iter_mut()
                    .zip(cands.iter_mut())
                    .zip(entries.into_iter().zip(wcands))
                {
                    cand.extend(thread_cands);
                    for (key, index) in thread_entries {
                        if key > kb.threshold() {
                            break;
                        }
                        kb.push(index, key);
                    }
                }
            }
        });
    }

    /// Phase 2: exact f64 rescore of the surviving candidates — gather
    /// by inner-row index, push under the original index (the
    /// permutation), identical to the flat rescore's key bits.
    fn rescore(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
        cands: &[Vec<u32>],
    ) -> KeyedResults {
        KeyedResults {
            entries: queries
                .iter()
                .zip(dists.iter().zip(ks.iter()))
                .zip(cands.iter())
                .map(|((q, (d, &k)), c)| {
                    rescore_f64_keyed(self.part.collection(), q, *d, c, k, Some(self.part.perm()))
                        .into_sorted_entries()
                })
                .collect(),
            finished: false,
        }
    }
}
