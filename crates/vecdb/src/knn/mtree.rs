//! M-tree: the paging metric access method of Ciaccia, Patella & Zezula
//! (VLDB '97) — the index the paper cites for its query-processing step.
//!
//! Structure: every node holds up to `max_entries` entries. Inner entries
//! are `(routing object, covering radius, distance to parent router,
//! child)`; leaf entries are `(object, distance to parent router)`. The
//! covering-radius invariant — every object below an entry is within its
//! radius of the routing object — yields the classic `mindist` pruning
//! bound, and `distance to parent` gives a second, cheaper prefilter via
//! the triangle inequality.
//!
//! Splits promote two routing objects with the **mM_RAD** policy (the
//! pair minimizing the larger of the two covering radii under
//! generalized-hyperplane assignment), the best-performing policy in the
//! original paper.
//!
//! The tree is built under the Euclidean metric; re-weighted feedback
//! queries stay exact through the distortion lower bound
//! (`d ≥ lo · d₂`, see the module docs of [`crate::knn`]).

use super::{f32_bound_up, lower_factor, KBest, KnnEngine, Neighbor, SearchStats};
use crate::collection::Collection;
use crate::distance::{Distance, Euclidean};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// M-tree tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct MTreeConfig {
    /// Maximum entries per node (≥ 2 required; paper-era page sizes map to
    /// small double-digit fan-outs for 32-d vectors).
    pub max_entries: usize,
}

impl Default for MTreeConfig {
    fn default() -> Self {
        MTreeConfig { max_entries: 16 }
    }
}

#[derive(Debug, Clone)]
struct LeafEntry {
    oid: u32,
    /// d₂(object, router of this leaf); 0 when the leaf is the root.
    dist_to_parent: f64,
}

#[derive(Debug, Clone)]
struct InnerEntry {
    /// Routing object (a collection index).
    router: u32,
    /// Covering radius: max d₂(router, x) over all x in the subtree.
    radius: f64,
    /// d₂(router, router of this node's parent); 0 at the root.
    dist_to_parent: f64,
    child: u32,
}

#[derive(Debug, Clone)]
enum MNode {
    Leaf(Vec<LeafEntry>),
    Inner(Vec<InnerEntry>),
}

/// M-tree engine borrowing a collection.
#[derive(Debug, Clone)]
pub struct MTree<'a> {
    coll: &'a Collection,
    nodes: Vec<MNode>,
    root: u32,
    cfg: MTreeConfig,
}

impl<'a> MTree<'a> {
    /// Build by inserting every collection object (deterministic order).
    pub fn build(coll: &'a Collection, cfg: MTreeConfig) -> Self {
        assert!(cfg.max_entries >= 2, "M-tree needs max_entries >= 2");
        let mut tree = MTree {
            coll,
            nodes: vec![MNode::Leaf(Vec::new())],
            root: 0,
            cfg,
        };
        for oid in 0..coll.len() as u32 {
            tree.insert(oid);
        }
        tree
    }

    /// Build with the default configuration.
    pub fn with_defaults(coll: &'a Collection) -> Self {
        Self::build(coll, MTreeConfig::default())
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (1 = root is a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                MNode::Leaf(_) => return h,
                MNode::Inner(entries) => {
                    id = entries[0].child;
                    h += 1;
                }
            }
        }
    }

    #[inline]
    fn d2(&self, a: u32, b: u32) -> f64 {
        Euclidean.eval(self.coll.vector(a as usize), self.coll.vector(b as usize))
    }

    fn insert(&mut self, oid: u32) {
        // Descend to the best leaf, tracking the path for splits and the
        // running distance to each chosen router for dist_to_parent.
        let mut path: Vec<(u32, usize)> = Vec::new(); // (node, entry idx)
        let mut cur = self.root;
        let mut dist_to_router = 0.0; // d₂(oid, router of `cur`); 0 at root
        loop {
            match &self.nodes[cur as usize] {
                MNode::Leaf(_) => break,
                MNode::Inner(entries) => {
                    // Choose: entry needing no radius enlargement with min
                    // distance; else min enlargement.
                    let mut best: Option<(usize, f64, f64)> = None; // (idx, d, enlarge)
                    for (i, e) in entries.iter().enumerate() {
                        let d = self.d2(oid, e.router);
                        let enlarge = (d - e.radius).max(0.0);
                        let better = match best {
                            None => true,
                            Some((_, bd, be)) => {
                                if (enlarge == 0.0) != (be == 0.0) {
                                    enlarge == 0.0
                                } else if enlarge == 0.0 {
                                    d < bd
                                } else {
                                    enlarge < be
                                }
                            }
                        };
                        if better {
                            best = Some((i, d, enlarge));
                        }
                    }
                    let (idx, d, _) = best.expect("inner node is never empty");
                    let MNode::Inner(entries) = &mut self.nodes[cur as usize] else {
                        unreachable!()
                    };
                    if d > entries[idx].radius {
                        entries[idx].radius = d;
                    }
                    path.push((cur, idx));
                    dist_to_router = d;
                    cur = entries[idx].child;
                }
            }
        }
        let MNode::Leaf(entries) = &mut self.nodes[cur as usize] else {
            unreachable!()
        };
        entries.push(LeafEntry {
            oid,
            dist_to_parent: dist_to_router,
        });
        if entries.len() > self.cfg.max_entries {
            self.split(cur, path);
        }
    }

    /// The objects a node's entries are anchored at (leaf objects or inner
    /// routers), used for promotion.
    fn anchor_oids(&self, node: u32) -> Vec<u32> {
        match &self.nodes[node as usize] {
            MNode::Leaf(es) => es.iter().map(|e| e.oid).collect(),
            MNode::Inner(es) => es.iter().map(|e| e.router).collect(),
        }
    }

    /// mM_RAD promotion: pick the anchor pair minimizing the larger
    /// covering radius after hyperplane partitioning. Returns
    /// (router1, router2, assignment) with `assignment[i] == false` for
    /// partition 1.
    fn promote(&self, anchors: &[u32]) -> (u32, u32, Vec<bool>) {
        debug_assert!(anchors.len() >= 2);
        let n = anchors.len();
        // Pairwise distances among anchors (n ≤ max_entries + 1, small).
        let mut dmat = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.d2(anchors[i], anchors[j]);
                dmat[i * n + j] = d;
                dmat[j * n + i] = d;
            }
        }
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                // Assign every anchor to the closer of i, j; track radii.
                let mut r1 = 0.0_f64;
                let mut r2 = 0.0_f64;
                for k in 0..n {
                    let di = dmat[k * n + i];
                    let dj = dmat[k * n + j];
                    if di <= dj {
                        r1 = r1.max(di);
                    } else {
                        r2 = r2.max(dj);
                    }
                }
                let worst = r1.max(r2);
                if best.is_none_or(|(b, _, _)| worst < b) {
                    best = Some((worst, i, j));
                }
            }
        }
        let (_, i, j) = best.expect("at least one pair");
        let mut assignment: Vec<bool> = (0..n).map(|k| dmat[k * n + i] > dmat[k * n + j]).collect();
        // Degenerate guard: with duplicate anchors every distance ties and
        // one partition comes out empty, which would create an empty node.
        // Rebalance by alternating — correctness only needs both non-empty
        // (the covering radii are recomputed from the actual assignment).
        if assignment.iter().all(|&a| !a) || assignment.iter().all(|&a| a) {
            for (k, a) in assignment.iter_mut().enumerate() {
                *a = k % 2 == 1;
            }
        }
        (anchors[i], anchors[j], assignment)
    }

    fn split(&mut self, node: u32, mut path: Vec<(u32, usize)>) {
        let anchors = self.anchor_oids(node);
        let (r1, r2, assignment) = self.promote(&anchors);
        // Partition entries; compute fresh dist_to_parent and radii.
        let new_node_id = self.nodes.len() as u32;
        let (radius1, radius2) = match self.nodes[node as usize].clone() {
            MNode::Leaf(entries) => {
                let mut p1 = Vec::new();
                let mut p2 = Vec::new();
                let mut rad1 = 0.0_f64;
                let mut rad2 = 0.0_f64;
                for (e, &to_two) in entries.iter().zip(assignment.iter()) {
                    if to_two {
                        let d = self.d2(e.oid, r2);
                        rad2 = rad2.max(d);
                        p2.push(LeafEntry {
                            oid: e.oid,
                            dist_to_parent: d,
                        });
                    } else {
                        let d = self.d2(e.oid, r1);
                        rad1 = rad1.max(d);
                        p1.push(LeafEntry {
                            oid: e.oid,
                            dist_to_parent: d,
                        });
                    }
                }
                self.nodes[node as usize] = MNode::Leaf(p1);
                self.nodes.push(MNode::Leaf(p2));
                (rad1, rad2)
            }
            MNode::Inner(entries) => {
                let mut p1 = Vec::new();
                let mut p2 = Vec::new();
                let mut rad1 = 0.0_f64;
                let mut rad2 = 0.0_f64;
                for (e, &to_two) in entries.iter().zip(assignment.iter()) {
                    if to_two {
                        let d = self.d2(e.router, r2);
                        rad2 = rad2.max(d + e.radius);
                        p2.push(InnerEntry {
                            dist_to_parent: d,
                            ..e.clone()
                        });
                    } else {
                        let d = self.d2(e.router, r1);
                        rad1 = rad1.max(d + e.radius);
                        p1.push(InnerEntry {
                            dist_to_parent: d,
                            ..e.clone()
                        });
                    }
                }
                self.nodes[node as usize] = MNode::Inner(p1);
                self.nodes.push(MNode::Inner(p2));
                (rad1, rad2)
            }
        };

        match path.pop() {
            None => {
                // Node was the root: grow a new root above it.
                let new_root = self.nodes.len() as u32;
                self.nodes.push(MNode::Inner(vec![
                    InnerEntry {
                        router: r1,
                        radius: radius1,
                        dist_to_parent: 0.0,
                        child: node,
                    },
                    InnerEntry {
                        router: r2,
                        radius: radius2,
                        dist_to_parent: 0.0,
                        child: new_node_id,
                    },
                ]));
                self.root = new_root;
            }
            Some((parent, entry_idx)) => {
                // Parent router (for dist_to_parent of the two new entries):
                // it is the router of the entry pointing at `parent`, i.e.
                // the next element up the path — or the root (no router).
                let parent_router = path.last().map(|&(gp, gi)| {
                    let MNode::Inner(es) = &self.nodes[gp as usize] else {
                        unreachable!()
                    };
                    es[gi].router
                });
                let dtp = |r: u32| parent_router.map_or(0.0, |pr| self.d2(r, pr));
                let e1 = InnerEntry {
                    router: r1,
                    radius: radius1,
                    dist_to_parent: dtp(r1),
                    child: node,
                };
                let e2 = InnerEntry {
                    router: r2,
                    radius: radius2,
                    dist_to_parent: dtp(r2),
                    child: new_node_id,
                };
                let MNode::Inner(entries) = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                entries[entry_idx] = e1;
                entries.push(e2);
                if entries.len() > self.cfg.max_entries {
                    self.split(parent, path);
                }
            }
        }
    }

    /// Best-first k-NN under `dist`.
    ///
    /// `kb` holds surrogate keys ([`Distance::eval_key`]): leaf scans are
    /// `sqrt`-free, and leaves with several surviving entries gather their
    /// vectors into a contiguous scratch block and evaluate them through
    /// one batch-kernel call (single virtual dispatch, early abandonment
    /// against the running threshold). When the collection carries an f32
    /// mirror and the class certifies a rounding bound
    /// ([`Distance::f32_key_slack`]), the gathered block is the **f32
    /// mirror** rows and the batch runs through
    /// [`Distance::eval_key_batch_f32`] against the slack-inflated
    /// threshold — half the gathered bytes — with the few survivors
    /// rescored exactly in f64 before insertion, so answers stay
    /// bit-identical to the pure f64 leaf path (same guarantee as the
    /// flat scan's two-phase mode: any row with `key64 ≤ τ` has
    /// `key32 ≤ τ + Δ` and therefore survives phase 1). Pruning bounds
    /// stay in true-distance (Euclidean) space and compare against
    /// `finish_key(kb.threshold())` — one root per node, not per
    /// candidate.
    fn knn_inner(
        &self,
        query: &[f64],
        k: usize,
        dist: &dyn Distance,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut kb = KBest::new(k);
        let mut stats = SearchStats::default();
        if k == 0 || self.coll.is_empty() {
            return (kb.into_sorted(), stats);
        }
        let dim = self.coll.dim();
        // Scratch for gathered leaf vectors + their ids + result keys.
        let mut gather: Vec<f64> = Vec::with_capacity(self.cfg.max_entries * dim);
        let mut gather_ids: Vec<u32> = Vec::with_capacity(self.cfg.max_entries);
        let mut keys: Vec<f64> = vec![0.0; self.cfg.max_entries + 1];
        // f32 mirror leaf path: query rounded once, plus the certified
        // key-space slack (None ⇔ no mirror, no f32 kernel, or an
        // unbounded/overflowing slack — leaves then gather f64).
        let f32_leaf: Option<(Vec<f32>, f64)> = self.coll.max_abs().and_then(|m_coll| {
            let m = query.iter().fold(m_coll, |m, &v| m.max(v.abs()));
            let slack = dist.f32_key_slack(dim, m)?;
            slack
                .is_finite()
                .then(|| (query.iter().map(|&v| v as f32).collect(), slack))
        });
        let mut gather32: Vec<f32> = Vec::new();
        let mut keys32: Vec<f32> = Vec::new();
        if f32_leaf.is_some() {
            gather32.reserve(self.cfg.max_entries * dim);
            keys32.resize(self.cfg.max_entries + 1, 0.0);
        }
        let lo = lower_factor(dist);
        // Priority queue of (Euclidean mindist bound, node, d₂(q, router)).
        #[derive(PartialEq)]
        struct Item {
            bound: f64,
            node: u32,
            d2_router: f64,
        }
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.bound
                    .partial_cmp(&other.bound)
                    .expect("non-finite bound")
                    .then(self.node.cmp(&other.node))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut queue: BinaryHeap<Reverse<Item>> = BinaryHeap::new();
        queue.push(Reverse(Item {
            bound: 0.0,
            node: self.root,
            d2_router: f64::NAN, // root has no router
        }));
        while let Some(Reverse(item)) = queue.pop() {
            let tau = dist.finish_key(kb.threshold());
            if lo > 0.0 && lo * item.bound > tau {
                continue; // everything left is at least this far
            }
            stats.nodes_visited += 1;
            match &self.nodes[item.node as usize] {
                MNode::Leaf(entries) => {
                    // Triangle prefilter on the Euclidean level:
                    // d₂(q,o) ≥ |d₂(q, router) − d₂(o, router)|; survivors
                    // are gathered into one contiguous block.
                    gather_ids.clear();
                    if let Some((q32, slack)) = &f32_leaf {
                        // Mirror path: gather f32 rows, filter against the
                        // slack-inflated bound, rescore survivors exactly.
                        gather32.clear();
                        for e in entries {
                            if lo > 0.0 && item.d2_router.is_finite() {
                                let lb = (item.d2_router - e.dist_to_parent).abs();
                                if lo * lb > tau {
                                    continue;
                                }
                            }
                            let row = e.oid as usize;
                            gather32.extend_from_slice(
                                self.coll
                                    .block_f32(row, row + 1)
                                    .expect("f32 leaf path requires the mirror"),
                            );
                            gather_ids.push(e.oid);
                        }
                        let n = gather_ids.len();
                        let bound = kb.threshold();
                        let bound32 = f32_bound_up(bound + slack);
                        dist.eval_key_batch_f32(q32, &gather32, dim, bound32, &mut keys32[..n]);
                        stats.distance_evals += n as u64;
                        for (&oid, &key32) in gather_ids.iter().zip(keys32[..n].iter()) {
                            if key32 <= bound32 {
                                // Exact f64 rescore: insertion uses the
                                // same keys the pure f64 path would.
                                let key = dist.eval_key(query, self.coll.vector(oid as usize));
                                stats.distance_evals += 1;
                                if key <= bound {
                                    kb.push(oid, key);
                                }
                            }
                        }
                    } else {
                        gather.clear();
                        for e in entries {
                            if lo > 0.0 && item.d2_router.is_finite() {
                                let lb = (item.d2_router - e.dist_to_parent).abs();
                                if lo * lb > tau {
                                    continue;
                                }
                            }
                            gather.extend_from_slice(self.coll.vector(e.oid as usize));
                            gather_ids.push(e.oid);
                        }
                        let n = gather_ids.len();
                        dist.eval_key_batch(query, &gather, dim, kb.threshold(), &mut keys[..n]);
                        stats.distance_evals += n as u64;
                        let bound = kb.threshold();
                        for (&oid, &key) in gather_ids.iter().zip(keys[..n].iter()) {
                            if key <= bound {
                                kb.push(oid, key);
                            }
                        }
                    }
                }
                MNode::Inner(entries) => {
                    // `tau` from the node pop stays valid: inner entries
                    // never push into `kb`, so the threshold can't move.
                    for e in entries {
                        // Prefilter before computing d₂(q, e.router).
                        if lo > 0.0 && item.d2_router.is_finite() {
                            let lb =
                                ((item.d2_router - e.dist_to_parent).abs() - e.radius).max(0.0);
                            if lo * lb > tau {
                                continue;
                            }
                        }
                        let d2r = Euclidean.eval(query, self.coll.vector(e.router as usize));
                        let bound = (d2r - e.radius).max(0.0);
                        if lo > 0.0 && lo * bound > tau {
                            continue;
                        }
                        queue.push(Reverse(Item {
                            bound,
                            node: e.child,
                            d2_router: d2r,
                        }));
                    }
                }
            }
        }
        (kb.into_sorted_with(|key| dist.finish_key(key)), stats)
    }

    /// Structural invariants: covering radii really cover, dist_to_parent
    /// fields are exact, every object appears exactly once.
    pub fn verify_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.coll.len()];
        self.verify_node(self.root, None, &mut seen)?;
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("object {missing} missing from tree"));
        }
        Ok(())
    }

    fn verify_node(&self, node: u32, router: Option<u32>, seen: &mut [bool]) -> Result<(), String> {
        match &self.nodes[node as usize] {
            MNode::Leaf(entries) => {
                for e in entries {
                    if std::mem::replace(&mut seen[e.oid as usize], true) {
                        return Err(format!("object {} appears twice", e.oid));
                    }
                    if let Some(r) = router {
                        let d = self.d2(e.oid, r);
                        if (d - e.dist_to_parent).abs() > 1e-9 {
                            return Err(format!(
                                "leaf dtp stale for {}: {d} vs {}",
                                e.oid, e.dist_to_parent
                            ));
                        }
                    }
                }
                Ok(())
            }
            MNode::Inner(entries) => {
                if entries.is_empty() {
                    return Err(format!("empty inner node {node}"));
                }
                for e in entries {
                    if let Some(r) = router {
                        let d = self.d2(e.router, r);
                        if (d - e.dist_to_parent).abs() > 1e-9 {
                            return Err(format!("inner dtp stale for router {}", e.router));
                        }
                    }
                    // Covering radius: every object below within e.radius.
                    let mut stack = vec![e.child];
                    while let Some(id) = stack.pop() {
                        match &self.nodes[id as usize] {
                            MNode::Leaf(ls) => {
                                for le in ls {
                                    let d = self.d2(le.oid, e.router);
                                    if d > e.radius + 1e-9 {
                                        return Err(format!(
                                            "radius violated: object {} at {d} > {} from router {}",
                                            le.oid, e.radius, e.router
                                        ));
                                    }
                                }
                            }
                            MNode::Inner(is) => {
                                for ie in is {
                                    stack.push(ie.child);
                                }
                            }
                        }
                    }
                    self.verify_node(e.child, Some(e.router), seen)?;
                }
                Ok(())
            }
        }
    }
}

impl KnnEngine for MTree<'_> {
    fn knn(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor> {
        self.knn_inner(query, k, dist).0
    }

    fn knn_with_stats(
        &self,
        query: &[f64],
        k: usize,
        dist: &dyn Distance,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.knn_inner(query, k, dist)
    }

    fn range(&self, query: &[f64], radius: f64, dist: &dyn Distance) -> Vec<Neighbor> {
        let lo = lower_factor(dist);
        // Key-space inclusion (d ≤ r ⇔ key ≤ key_of_dist(r)): the same
        // test the scan and VP-tree use, so all engines agree exactly.
        let key_bound = dist.key_of_dist(radius);
        let mut out = Vec::new();
        let mut stack: Vec<(u32, f64)> = vec![(self.root, f64::NAN)];
        while let Some((node, d2_router)) = stack.pop() {
            match &self.nodes[node as usize] {
                MNode::Leaf(entries) => {
                    for e in entries {
                        if lo > 0.0 && d2_router.is_finite() {
                            let lb = (d2_router - e.dist_to_parent).abs();
                            if lo * lb > radius {
                                continue;
                            }
                        }
                        let key = dist.eval_key(query, self.coll.vector(e.oid as usize));
                        if key <= key_bound {
                            out.push(Neighbor {
                                index: e.oid,
                                dist: dist.finish_key(key),
                            });
                        }
                    }
                }
                MNode::Inner(entries) => {
                    for e in entries {
                        let d2r = Euclidean.eval(query, self.coll.vector(e.router as usize));
                        let bound = (d2r - e.radius).max(0.0);
                        if lo > 0.0 && lo * bound > radius {
                            continue;
                        }
                        stack.push((e.child, d2r));
                    }
                }
            }
        }
        out.sort_unstable_by(Neighbor::total_cmp);
        out
    }

    fn name(&self) -> &str {
        "m-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::distance::WeightedEuclidean;
    use crate::knn::LinearScan;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_collection(n: usize, dim: usize, seed: u64) -> Collection {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CollectionBuilder::new();
        for _ in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
            b.push_unlabelled(&v).unwrap();
        }
        b.build()
    }

    /// The mirrored leaf path (f32 gather + slack filter + exact
    /// rescore) answers bit-identically to the flat f64 oracle — and to
    /// the same tree without a mirror.
    #[test]
    fn mirrored_leaves_bit_identical() {
        let mut c = random_collection(400, 6, 91);
        let plain = c.clone();
        c.ensure_f32_mirror();
        let mirrored = MTree::with_defaults(&c);
        let bare = MTree::with_defaults(&plain);
        let scan = LinearScan::new(&plain);
        let w = WeightedEuclidean::new(vec![3.0, 0.1, 1.0, 8.0, 0.5, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let q: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            for k in [1, 7, 25] {
                let m_e = mirrored.knn(&q, k, &Euclidean);
                assert_eq!(m_e, scan.knn(&q, k, &Euclidean));
                assert_eq!(m_e, bare.knn(&q, k, &Euclidean));
                let m_w = mirrored.knn(&q, k, &w);
                assert_eq!(m_w, scan.knn(&q, k, &w));
                assert_eq!(m_w, bare.knn(&q, k, &w));
            }
        }
    }

    /// The mirror halves the gathered leaf bytes but must not change
    /// which nodes the best-first descent visits (the pruning bounds are
    /// all f64): same nodes, phase-1 evals plus a few rescores.
    #[test]
    fn mirrored_leaves_visit_same_nodes() {
        let mut c = random_collection(600, 5, 93);
        let plain = c.clone();
        c.ensure_f32_mirror();
        let mirrored = MTree::with_defaults(&c);
        let bare = MTree::with_defaults(&plain);
        let q = [0.4, 0.6, 0.5, 0.3, 0.7];
        let (rm, sm) = mirrored.knn_with_stats(&q, 5, &Euclidean);
        let (rb, sb) = bare.knn_with_stats(&q, 5, &Euclidean);
        assert_eq!(rm, rb);
        assert_eq!(sm.nodes_visited, sb.nodes_visited);
        assert!(sm.distance_evals >= sb.distance_evals);
    }

    #[test]
    fn invariants_after_build() {
        for n in [1, 2, 17, 100, 500] {
            let c = random_collection(n, 5, n as u64);
            let t = MTree::with_defaults(&c);
            t.verify_invariants()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn grows_in_height() {
        let c = random_collection(600, 4, 9);
        let t = MTree::build(&c, MTreeConfig { max_entries: 8 });
        assert!(t.height() >= 3, "height {}", t.height());
        t.verify_invariants().unwrap();
    }

    #[test]
    fn knn_agrees_with_scan_euclidean() {
        let c = random_collection(400, 6, 21);
        let t = MTree::with_defaults(&c);
        let scan = LinearScan::new(&c);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let q: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            let a = t.knn(&q, 10, &Euclidean);
            let b = scan.knn(&q, 10, &Euclidean);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn knn_agrees_with_scan_weighted() {
        let c = random_collection(300, 5, 33);
        let t = MTree::with_defaults(&c);
        let scan = LinearScan::new(&c);
        let w = WeightedEuclidean::new(vec![3.0, 0.1, 1.0, 8.0, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..25 {
            let q: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..1.0)).collect();
            let a = t.knn(&q, 7, &w);
            let b = scan.knn(&q, 7, &w);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pruning_beats_exhaustive() {
        let c = random_collection(3000, 4, 55);
        let t = MTree::with_defaults(&c);
        let (_, stats) = t.knn_with_stats(&[0.5, 0.5, 0.5, 0.5], 5, &Euclidean);
        assert!(
            stats.distance_evals < 3000,
            "no pruning: {} evals",
            stats.distance_evals
        );
    }

    #[test]
    fn range_agrees_with_scan() {
        let c = random_collection(400, 4, 77);
        let t = MTree::with_defaults(&c);
        let scan = LinearScan::new(&c);
        let q = [0.4, 0.6, 0.5, 0.5];
        for r in [0.05, 0.2, 0.5] {
            assert_eq!(t.range(&q, r, &Euclidean), scan.range(&q, r, &Euclidean));
        }
        let w = WeightedEuclidean::new(vec![2.0, 1.0, 0.5, 4.0]).unwrap();
        assert_eq!(t.range(&q, 0.4, &w), scan.range(&q, 0.4, &w));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = CollectionBuilder::new().build();
        let t = MTree::with_defaults(&empty);
        assert!(t.knn(&[], 5, &Euclidean).is_empty());

        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[2.0, 2.0]).unwrap();
        let one = b.build();
        let t1 = MTree::with_defaults(&one);
        let r = t1.knn(&[0.0, 0.0], 5, &Euclidean);
        assert_eq!(r.len(), 1);
        assert!((r[0].dist - (8.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn duplicates_all_found() {
        let mut b = CollectionBuilder::new();
        for _ in 0..40 {
            b.push_unlabelled(&[1.0, 2.0]).unwrap();
        }
        let c = b.build();
        let t = MTree::build(&c, MTreeConfig { max_entries: 4 });
        t.verify_invariants().unwrap();
        let r = t.knn(&[1.0, 2.0], 40, &Euclidean);
        assert_eq!(r.len(), 40);
    }
}
