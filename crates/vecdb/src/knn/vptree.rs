//! Vantage-point tree over the Euclidean metric.
//!
//! Classic VP-tree: each node picks a vantage point, computes the median
//! Euclidean distance of its subset to it, and splits into an inside ball
//! and an outside shell. Queries under any distance `d` with a Euclidean
//! distortion lower bound `lo` prune a branch when `lo · B > τ`, where `B`
//! is the branch's Euclidean lower bound and `τ` the current pruning
//! threshold — exact for re-weighted feedback queries.
//!
//! Unlike the [`MTree`](super::MTree) — whose leaves gather multi-row
//! blocks and therefore route through the f32 mirror when one is present
//! — the VP-tree evaluates exactly one pivot per visited node, so there
//! is no batch for a mirror to halve; it stays a pure-f64 reference
//! engine (`Precision` does not apply), kept for the engine-comparison
//! benches and as the simplest tree oracle in the test suite.

use super::{lower_factor, KBest, KnnEngine, Neighbor, SearchStats};
use crate::collection::Collection;
use crate::distance::{Distance, Euclidean};

#[derive(Debug, Clone)]
struct VpNode {
    /// Vantage point (collection index).
    pivot: u32,
    /// Median Euclidean distance from `pivot` to the node's subset.
    radius: f64,
    /// Inside subtree (points with d₂ ≤ radius), `u32::MAX` = none.
    inside: u32,
    /// Outside subtree, `u32::MAX` = none.
    outside: u32,
}

const NIL: u32 = u32::MAX;

/// VP-tree engine borrowing a collection.
#[derive(Debug, Clone)]
pub struct VpTree<'a> {
    coll: &'a Collection,
    nodes: Vec<VpNode>,
    root: u32,
}

impl<'a> VpTree<'a> {
    /// Build over `coll` (O(n log n) expected distance computations).
    ///
    /// Vantage points are chosen deterministically (first element of each
    /// subset) so builds are reproducible.
    pub fn build(coll: &'a Collection) -> Self {
        let mut nodes = Vec::with_capacity(coll.len());
        let mut items: Vec<u32> = (0..coll.len() as u32).collect();
        let root = Self::build_rec(coll, &mut items, &mut nodes);
        VpTree { coll, nodes, root }
    }

    fn build_rec(coll: &Collection, items: &mut [u32], nodes: &mut Vec<VpNode>) -> u32 {
        if items.is_empty() {
            return NIL;
        }
        let pivot = items[0];
        let rest = &mut items[1..];
        if rest.is_empty() {
            let id = nodes.len() as u32;
            nodes.push(VpNode {
                pivot,
                radius: 0.0,
                inside: NIL,
                outside: NIL,
            });
            return id;
        }
        let e = Euclidean;
        let pv = coll.vector(pivot as usize).to_vec();
        // Median split by distance to the vantage point.
        let mid = rest.len() / 2;
        rest.select_nth_unstable_by(mid, |&a, &b| {
            let da = e.eval(&pv, coll.vector(a as usize));
            let db = e.eval(&pv, coll.vector(b as usize));
            da.partial_cmp(&db)
                .expect("non-finite distance")
                .then(a.cmp(&b))
        });
        let radius = e.eval(&pv, coll.vector(rest[mid] as usize));
        let id = nodes.len() as u32;
        nodes.push(VpNode {
            pivot,
            radius,
            inside: NIL,
            outside: NIL,
        });
        // `mid` goes inside (d ≤ radius by construction).
        let (ins, outs) = rest.split_at_mut(mid + 1);
        let inside = Self::build_rec(coll, ins, nodes);
        let outside = Self::build_rec(coll, outs, nodes);
        nodes[id as usize].inside = inside;
        nodes[id as usize].outside = outside;
        id
    }

    /// Number of tree nodes (== collection size).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Best-first descent. `kb` holds surrogate *keys*
    /// ([`Distance::eval_key`]) — the per-candidate `sqrt` disappears and
    /// pruning compares Euclidean bounds against
    /// `finish_key(kb.threshold())`, one root per visited node instead of
    /// one per candidate.
    fn search(
        &self,
        node: u32,
        query: &[f64],
        dist: &dyn Distance,
        lo: f64,
        kb: &mut KBest,
        stats: &mut SearchStats,
    ) {
        if node == NIL {
            return;
        }
        let n = &self.nodes[node as usize];
        stats.nodes_visited += 1;
        let pv = self.coll.vector(n.pivot as usize);
        let key = dist.eval_key(query, pv);
        stats.distance_evals += 1;
        kb.push(n.pivot, key);
        if n.inside == NIL && n.outside == NIL {
            return;
        }
        let d2 = Euclidean.eval(query, pv);
        // Euclidean lower bounds for each side.
        let inside_bound = (d2 - n.radius).max(0.0);
        let outside_bound = (n.radius - d2).max(0.0);
        // Visit the nearer side first for a tight threshold early.
        let sides = if d2 <= n.radius {
            [(n.inside, inside_bound), (n.outside, outside_bound)]
        } else {
            [(n.outside, outside_bound), (n.inside, inside_bound)]
        };
        for (child, bound) in sides {
            if child == NIL {
                continue;
            }
            // Re-read the threshold per side: the first child's visit
            // tightens it for the second.
            if lo > 0.0 && lo * bound > dist.finish_key(kb.threshold()) {
                continue; // certified: nothing in there can beat the k-th
            }
            self.search(child, query, dist, lo, kb, stats);
        }
    }

    fn search_range(
        &self,
        node: u32,
        query: &[f64],
        radius: f64,
        dist: &dyn Distance,
        lo: f64,
        out: &mut Vec<Neighbor>,
    ) {
        if node == NIL {
            return;
        }
        let n = &self.nodes[node as usize];
        let pv = self.coll.vector(n.pivot as usize);
        // Key-space inclusion test: d ≤ r ⇔ key ≤ key_of_dist(r); the
        // root is paid only for reported neighbors.
        let key = dist.eval_key(query, pv);
        if key <= dist.key_of_dist(radius) {
            out.push(Neighbor {
                index: n.pivot,
                dist: dist.finish_key(key),
            });
        }
        if n.inside == NIL && n.outside == NIL {
            return;
        }
        let d2 = Euclidean.eval(query, pv);
        let inside_bound = (d2 - n.radius).max(0.0);
        let outside_bound = (n.radius - d2).max(0.0);
        if !(lo > 0.0 && lo * inside_bound > radius) {
            self.search_range(n.inside, query, radius, dist, lo, out);
        }
        if !(lo > 0.0 && lo * outside_bound > radius) {
            self.search_range(n.outside, query, radius, dist, lo, out);
        }
    }
}

impl KnnEngine for VpTree<'_> {
    fn knn(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor> {
        self.knn_with_stats(query, k, dist).0
    }

    fn knn_with_stats(
        &self,
        query: &[f64],
        k: usize,
        dist: &dyn Distance,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut kb = KBest::new(k);
        let mut stats = SearchStats::default();
        if k > 0 {
            let lo = lower_factor(dist);
            self.search(self.root, query, dist, lo, &mut kb, &mut stats);
        }
        (kb.into_sorted_with(|key| dist.finish_key(key)), stats)
    }

    fn range(&self, query: &[f64], radius: f64, dist: &dyn Distance) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let lo = lower_factor(dist);
        self.search_range(self.root, query, radius, dist, lo, &mut out);
        out.sort_unstable_by(Neighbor::total_cmp);
        out
    }

    fn name(&self) -> &str {
        "vp-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionBuilder;
    use crate::distance::WeightedEuclidean;
    use crate::knn::LinearScan;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_collection(n: usize, dim: usize, seed: u64) -> Collection {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CollectionBuilder::new();
        for _ in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
            b.push_unlabelled(&v).unwrap();
        }
        b.build()
    }

    #[test]
    fn agrees_with_scan_euclidean() {
        let c = random_collection(300, 8, 42);
        let tree = VpTree::build(&c);
        let scan = LinearScan::new(&c);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let q: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..1.0)).collect();
            let a = tree.knn(&q, 10, &Euclidean);
            let b = scan.knn(&q, 10, &Euclidean);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn agrees_with_scan_weighted() {
        let c = random_collection(200, 6, 7);
        let tree = VpTree::build(&c);
        let scan = LinearScan::new(&c);
        let w = WeightedEuclidean::new(vec![5.0, 0.2, 1.0, 3.0, 0.5, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let q: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            let a = tree.knn(&q, 5, &w);
            let b = scan.knn(&q, 5, &w);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pruning_actually_prunes() {
        let c = random_collection(2000, 4, 11);
        let tree = VpTree::build(&c);
        let (_, stats) = tree.knn_with_stats(&[0.5, 0.5, 0.5, 0.5], 5, &Euclidean);
        assert!(
            stats.distance_evals < 2000,
            "no pruning happened: {} evals",
            stats.distance_evals
        );
    }

    #[test]
    fn range_agrees_with_scan() {
        let c = random_collection(300, 4, 3);
        let tree = VpTree::build(&c);
        let scan = LinearScan::new(&c);
        let q = [0.5, 0.5, 0.5, 0.5];
        let a = tree.range(&q, 0.3, &Euclidean);
        let b = scan.range(&q, 0.3, &Euclidean);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_and_tiny_collections() {
        let empty = CollectionBuilder::new().build();
        let t = VpTree::build(&empty);
        assert!(t.knn(&[], 3, &Euclidean).is_empty());

        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[1.0]).unwrap();
        let one = b.build();
        let t1 = VpTree::build(&one);
        let r = t1.knn(&[0.0], 3, &Euclidean);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].index, 0);
    }

    #[test]
    fn duplicate_points_handled() {
        let mut b = CollectionBuilder::new();
        for _ in 0..50 {
            b.push_unlabelled(&[1.0, 1.0]).unwrap();
        }
        let c = b.build();
        let tree = VpTree::build(&c);
        let r = tree.knn(&[1.0, 1.0], 10, &Euclidean);
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|n| n.dist == 0.0));
    }
}
