//! Scan-path counters: where the rows actually went during a pass.
//!
//! The latency side of observability (queue waits, span timings) lives
//! in the serving tier; this module answers the *work* side — how many
//! rows a pass streamed, how often early abandonment actually bit, how
//! much the f32 phase-1 filter saved the rescore, and whether
//! cross-shard bound seeding engaged. A [`ScanStatsSink`] is a set of
//! relaxed atomic counters a caller attaches to a scan
//! ([`MultiQueryScan::with_scan_stats`](super::MultiQueryScan::with_scan_stats),
//! [`ShardedScan::with_scan_stats`](super::ShardedScan::with_scan_stats));
//! the scan accumulates plain local tallies during the pass and flushes
//! them with a handful of `fetch_add`s at the end, so the per-row hot
//! loops pay nothing and the per-pass cost is a few uncontended atomic
//! adds. **Instrumentation never changes an answer**: the counters only
//! observe decisions the pass already made.

use std::sync::atomic::{AtomicU64, Ordering};

/// One pass's (or one sink's cumulative) scan-path tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows streamed from the collection (per pass, not per query — the
    /// bytes-moved view the multi-query amortization is about).
    pub rows_visited: u64,
    /// Row blocks in which at least one query's bound dropped at least
    /// one row — blocks where early abandonment actually bit.
    pub blocks_abandoned: u64,
    /// Phase-1 candidates the f32 filter discarded before the rescore
    /// paid any scattered f64 reads.
    pub candidates_filtered: u64,
    /// Phase-1 candidates that survived to the exact f64 rescore.
    pub candidates_rescored: u64,
    /// Passes whose selection bound was seeded by a finite
    /// cross-request / cross-shard cap instead of starting at `+∞`.
    pub seed_prunes: u64,
    /// Partitions skipped outright by a partitioned pass because every
    /// query's sound lower bound exceeded its running selection bound
    /// (the sub-linear win; rows inside never count in `rows_visited`).
    pub partitions_pruned: u64,
}

impl ScanStats {
    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == ScanStats::default()
    }
}

/// Lock-free accumulator for [`ScanStats`], shared across passes and
/// threads: the parallel scan's workers and `S` concurrent shard
/// dispatchers all flush into one sink with relaxed `fetch_add`s.
#[derive(Debug, Default)]
pub struct ScanStatsSink {
    rows_visited: AtomicU64,
    blocks_abandoned: AtomicU64,
    candidates_filtered: AtomicU64,
    candidates_rescored: AtomicU64,
    seed_prunes: AtomicU64,
    partitions_pruned: AtomicU64,
}

impl ScanStatsSink {
    /// New sink with every counter at zero.
    pub fn new() -> Self {
        ScanStatsSink::default()
    }

    /// Fold one pass's tallies into the cumulative counters (relaxed;
    /// counters are monotonic and independent).
    pub fn record(&self, tally: &ScanStats) {
        if tally.rows_visited > 0 {
            self.rows_visited
                .fetch_add(tally.rows_visited, Ordering::Relaxed);
        }
        if tally.blocks_abandoned > 0 {
            self.blocks_abandoned
                .fetch_add(tally.blocks_abandoned, Ordering::Relaxed);
        }
        if tally.candidates_filtered > 0 {
            self.candidates_filtered
                .fetch_add(tally.candidates_filtered, Ordering::Relaxed);
        }
        if tally.candidates_rescored > 0 {
            self.candidates_rescored
                .fetch_add(tally.candidates_rescored, Ordering::Relaxed);
        }
        if tally.seed_prunes > 0 {
            self.seed_prunes
                .fetch_add(tally.seed_prunes, Ordering::Relaxed);
        }
        if tally.partitions_pruned > 0 {
            self.partitions_pruned
                .fetch_add(tally.partitions_pruned, Ordering::Relaxed);
        }
    }

    /// Current cumulative counters.
    pub fn snapshot(&self) -> ScanStats {
        ScanStats {
            rows_visited: self.rows_visited.load(Ordering::Relaxed),
            blocks_abandoned: self.blocks_abandoned.load(Ordering::Relaxed),
            candidates_filtered: self.candidates_filtered.load(Ordering::Relaxed),
            candidates_rescored: self.candidates_rescored.load(Ordering::Relaxed),
            seed_prunes: self.seed_prunes.load(Ordering::Relaxed),
            partitions_pruned: self.partitions_pruned.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_snapshot_reads() {
        let sink = ScanStatsSink::new();
        assert!(sink.snapshot().is_empty());
        sink.record(&ScanStats {
            rows_visited: 100,
            blocks_abandoned: 2,
            candidates_filtered: 30,
            candidates_rescored: 10,
            seed_prunes: 1,
            partitions_pruned: 4,
        });
        sink.record(&ScanStats {
            rows_visited: 50,
            ..Default::default()
        });
        let s = sink.snapshot();
        assert_eq!(s.rows_visited, 150);
        assert_eq!(s.blocks_abandoned, 2);
        assert_eq!(s.candidates_filtered, 30);
        assert_eq!(s.candidates_rescored, 10);
        assert_eq!(s.seed_prunes, 1);
        assert_eq!(s.partitions_pruned, 4);
        assert!(!s.is_empty());
    }
}
