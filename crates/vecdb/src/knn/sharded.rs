//! Scatter/gather scanning over a [`ShardedCollection`]: every query
//! runs against every shard, and the per-shard k-bests merge — still in
//! key space — into the exact answer the unsharded scan would return.
//!
//! A single [`MultiQueryScan`] pass is bounded by one core's streaming
//! bandwidth once its parallel path saturates, and a serving stack built
//! on one dispatcher inherits that bound. Sharding breaks it: each shard
//! is its own contiguous collection (own f64 buffer, own f32 mirror),
//! so `S` passes stream `S` disjoint buffers from `S` cores with no
//! shared write state at all. The scatter stage fans a coalesced query
//! batch out across shards — either through [`ShardedScan`]'s own
//! scoped-thread workers (the one-shot entry points) or through external
//! per-shard schedulers (the `fbp-server` shard dispatchers), which call
//! [`ShardedScan::scan_shard`]-family methods directly and gather
//! [`ShardPartial`]s themselves.
//!
//! # Why the merged answer is bit-identical to the unsharded scan
//!
//! * A row's surrogate key depends only on `(query, row)` — never on
//!   where block or shard boundaries fall, which rows precede it, or
//!   which threads scanned it (early-abandon bounds only ever *drop*
//!   rows that cannot enter a k-best; the f32 phase-1 collects a
//!   guaranteed superset and the f64 rescore recomputes exact keys).
//! * Each shard therefore reports its exact local k-best **in key
//!   space** ([`ShardPartial`]), with indices already offset to the
//!   global row numbering.
//! * The gather folds those partials through one [`KBest`] per query by
//!   ascending `(key, index)` — the same deterministic order the
//!   parallel scan's per-thread merge uses — and only the final winners
//!   pay [`Distance::finish_key`]. Selection thus happens in the same
//!   space, over the same key bits, with the same tie-break as one flat
//!   pass.
//!
//! The consistency suite (`crates/vecdb/tests/sharded.rs`) pins this
//! across all four distance classes, both precisions, and shard counts
//! up to one row per shard.

use super::multi::KeyedResults;
use super::stats::ScanStatsSink;
use super::{finish_entries, KBest, KnnEngine, LinearScan, MultiQueryScan, Neighbor};
use super::{PartitionedScan, Precision, ScanMode, PARALLEL_CUTOFF};
use crate::collection::{PartitionedCollection, ShardedCollection};
use crate::distance::{Distance, WeightedEuclidean};
use crate::VecdbError;
use std::sync::atomic::{AtomicU64, Ordering};

/// One scatter worker's shard assignment: `(shard index, result slot)`
/// pairs it fills in round-robin order.
type WorkerSlots<'s> = Vec<(usize, &'s mut Option<Vec<ShardPartial>>)>;

/// One atomic early-abandon seed per query, shared by the one-shot
/// scatter workers (f64 bits in an `AtomicU64`, monotonically tightened
/// via compare-exchange — the same cell discipline as the server's
/// per-gather seed).
struct SeedSet {
    seeds: Vec<AtomicU64>,
}

impl SeedSet {
    fn new(n: usize) -> Self {
        SeedSet {
            seeds: (0..n)
                .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
                .collect(),
        }
    }

    /// Current per-query caps (`+∞` until a shard delivers `k` rows).
    fn snapshot(&self) -> Vec<f64> {
        self.seeds
            .iter()
            .map(|s| f64::from_bits(s.load(Ordering::Relaxed)))
            .collect()
    }

    /// Tighten query `q`'s seed to `bound` if it improves it.
    fn offer(&self, q: usize, bound: f64) {
        let cell = &self.seeds[q];
        let mut cur = cell.load(Ordering::Relaxed);
        while bound < f64::from_bits(cur) {
            match cell.compare_exchange_weak(
                cur,
                bound.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// One query's k-best over one shard, still in selection space: `(key,
/// global index)` entries ascending by `(key, index)`, plus whether the
/// keys are already finished distances (a Scalar-mode pass). Opaque by
/// design — produce it with a [`ShardedScan`] scatter call, consume it
/// with [`merge_partials`]; everything in between (a network hop, a
/// per-shard batching queue) may reorder or regroup partials freely
/// without affecting the merged answer.
#[derive(Debug, Clone)]
pub struct ShardPartial {
    entries: Vec<(f64, u32)>,
    finished: bool,
}

impl ShardPartial {
    /// Reconstruct a partial from its raw parts — the inverse of
    /// [`Self::entries`]/[`Self::is_finished`], for transporting
    /// partials across process boundaries (the router tier decodes
    /// them off the wire). Entries must ascend by `(key, index)` and
    /// hold finite keys; both are validated because wire input is
    /// untrusted — a forged partial that violated the ordering would
    /// silently corrupt [`merge_partials`]' early-break merge.
    pub fn from_entries(entries: Vec<(f64, u32)>, finished: bool) -> crate::Result<Self> {
        for pair in entries.windows(2) {
            if (pair[1].0, pair[1].1) <= (pair[0].0, pair[0].1) {
                return Err(VecdbError::BadParameters(
                    "partial entries must strictly ascend by (key, index)".into(),
                ));
            }
        }
        if entries.iter().any(|&(key, _)| key.is_nan()) {
            return Err(VecdbError::BadParameters(
                "partial entries must hold non-NaN keys".into(),
            ));
        }
        Ok(ShardPartial { entries, finished })
    }

    /// The `(key, global index)` entries, ascending by `(key, index)`.
    pub fn entries(&self) -> &[(f64, u32)] {
        &self.entries
    }

    /// Whether the keys are already finished distances (a Scalar-mode
    /// pass) rather than surrogate selection keys.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// This shard's `k`-th best value, when the partial holds at least
    /// `k` entries — a **sound pruning seed** for other shards: the
    /// k-th best within any subset of rows can only be ≥ the global
    /// k-th best, so another shard's pass may take `min(running
    /// threshold, bound_key)` as its early-abandon bound without ever
    /// dropping a row of the merged global top-k. `None` when the
    /// shard produced fewer than `k` entries (small or empty shard) —
    /// then it bounds nothing.
    ///
    /// The value lives in the partial's selection space (surrogate
    /// keys, or distances for Scalar passes); only feed it back into
    /// scans configured identically, as the sharded serving layer does.
    pub fn bound_key(&self, k: usize) -> Option<f64> {
        (k > 0 && self.entries.len() >= k).then(|| self.entries[k - 1].0)
    }
}

/// Merge one query's per-shard partials into its final neighbor list:
/// fold every entry through one k-best by ascending `(key, index)` —
/// shards cover disjoint rows, so this reproduces exactly the selection
/// one flat pass over the concatenated rows would make — then finish the
/// winners with `dist` ([`Distance::finish_key`], or the identity for
/// Scalar-mode partials). The partials may arrive in any shard order;
/// the result does not depend on it.
///
/// # Panics
///
/// Panics when partials mix Scalar and kernel-mode passes (their values
/// live in different spaces; produce all partials from [`ShardedScan`]s
/// configured identically).
pub fn merge_partials<'p>(
    partials: impl IntoIterator<Item = &'p ShardPartial>,
    k: usize,
    dist: &dyn Distance,
) -> Vec<Neighbor> {
    let mut kb = KBest::new(k);
    let mut finished: Option<bool> = None;
    for part in partials {
        // Empty partials (empty shards, k = 0) carry no values, so they
        // are compatible with either space.
        if part.entries.is_empty() {
            continue;
        }
        match finished {
            None => finished = Some(part.finished),
            Some(f) => assert_eq!(
                f, part.finished,
                "cannot merge Scalar and kernel-mode partials"
            ),
        }
        for &(key, index) in &part.entries {
            if key > kb.threshold() {
                break; // entries ascend: the rest of this shard can't enter
            }
            kb.push(index, key);
        }
    }
    finish_entries(kb.into_sorted_entries(), finished.unwrap_or(true), dist)
}

/// Fold several partials covering disjoint row sets into one partial
/// covering their union, **without** finishing the keys: the same
/// k-best fold as [`merge_partials`], but the result stays in selection
/// space so it can keep riding a hierarchical gather (a shard server
/// that is itself sharded internally folds its sub-shard partials into
/// the one partial it reports upstream).
///
/// # Panics
///
/// Panics when partials mix Scalar and kernel-mode passes, exactly like
/// [`merge_partials`].
pub fn combine_partials<'p>(
    partials: impl IntoIterator<Item = &'p ShardPartial>,
    k: usize,
) -> ShardPartial {
    let mut kb = KBest::new(k);
    let mut finished: Option<bool> = None;
    for part in partials {
        if part.entries.is_empty() {
            continue;
        }
        match finished {
            None => finished = Some(part.finished),
            Some(f) => assert_eq!(
                f, part.finished,
                "cannot combine Scalar and kernel-mode partials"
            ),
        }
        for &(key, index) in &part.entries {
            if key > kb.threshold() {
                break;
            }
            kb.push(index, key);
        }
    }
    ShardPartial {
        entries: kb.into_sorted_entries(),
        finished: finished.unwrap_or(true),
    }
}

/// What a gather does when some shards failed to deliver a partial —
/// the serving tier's documented partial-failure contract (see
/// `ARCHITECTURE.md`, "router tier").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Any missing shard fails the whole gather with a typed
    /// [`GatherError`] — never a silently narrowed answer.
    Strict,
    /// Merge whatever survived, as long as at least `min_shards`
    /// partials arrived; the answer is then exactly the flat scan over
    /// the surviving shards' rows, labelled degraded with the missing
    /// shard list. Below the floor the gather fails like `Strict`.
    Degraded {
        /// Minimum surviving shards for a degraded answer.
        min_shards: usize,
    },
}

/// A gather refused by the [`FailurePolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherError {
    /// Shard slots that delivered no partial.
    pub missing_shards: Vec<u32>,
    /// Shard slots that did deliver.
    pub survivors: usize,
    /// Surviving-shard floor the policy demanded.
    pub required: usize,
}

impl std::fmt::Display for GatherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gather refused: shards {:?} unavailable ({} survivors, {} required)",
            self.missing_shards, self.survivors, self.required
        )
    }
}

impl std::error::Error for GatherError {}

/// A policy-approved gather over the shards that answered.
#[derive(Debug, Clone)]
pub struct DegradedGather {
    /// Merged neighbors — the exact flat-scan answer over the surviving
    /// shards' rows.
    pub neighbors: Vec<Neighbor>,
    /// Shard slots missing from the merge (empty ⇒ the answer is the
    /// full, undegraded gather).
    pub missing_shards: Vec<u32>,
}

impl DegradedGather {
    /// Whether any shard was missing from the merge.
    pub fn is_degraded(&self) -> bool {
        !self.missing_shards.is_empty()
    }
}

/// [`merge_partials`] under a [`FailurePolicy`]: `partials[i]` is shard
/// `i`'s delivery (`None` ⇒ that shard timed out, errored, or was
/// dropped). The policy decides between a merged (possibly degraded)
/// answer and a typed refusal — the two documented outcomes of a
/// partial failure; there is no third, silent one.
///
/// When every partial is present this is exactly [`merge_partials`]
/// (and `missing_shards` is empty); when a subset survives, the merged
/// neighbors equal the flat scan over the surviving shards' rows,
/// because shards cover disjoint rows and the k-best fold never looks
/// at rows it was not given.
pub fn merge_partials_policy(
    partials: &[Option<ShardPartial>],
    k: usize,
    dist: &dyn Distance,
    policy: FailurePolicy,
) -> std::result::Result<DegradedGather, GatherError> {
    let missing_shards: Vec<u32> = partials
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_none())
        .map(|(i, _)| i as u32)
        .collect();
    let survivors = partials.len() - missing_shards.len();
    let required = match policy {
        FailurePolicy::Strict => partials.len(),
        FailurePolicy::Degraded { min_shards } => min_shards.min(partials.len()),
    };
    if survivors < required {
        return Err(GatherError {
            missing_shards,
            survivors,
            required,
        });
    }
    Ok(DegradedGather {
        neighbors: merge_partials(partials.iter().flatten(), k, dist),
        missing_shards,
    })
}

/// Scatter/gather k-NN engine borrowing a [`ShardedCollection`].
///
/// Configuration mirrors [`MultiQueryScan`] (mode, precision, thread
/// budget) and is applied **identically to every shard**: `Auto`
/// resolves once, from the total work across all shards, so a sharded
/// scan and its unsharded twin always run the same kernels. The thread
/// budget is the *total* across shards — the scatter stage runs
/// `min(shards, budget)` shard workers and hands each per-shard pass an
/// even share, so sharding never oversubscribes the host.
#[derive(Debug, Clone, Copy)]
pub struct ShardedScan<'a> {
    coll: &'a ShardedCollection,
    parts: Option<&'a [PartitionedCollection]>,
    mode: ScanMode,
    precision: Precision,
    thread_budget: Option<usize>,
    stats: Option<&'a ScanStatsSink>,
}

impl<'a> ShardedScan<'a> {
    /// New engine over `coll` with [`ScanMode::Auto`].
    pub fn new(coll: &'a ShardedCollection) -> Self {
        ShardedScan {
            coll,
            parts: None,
            mode: ScanMode::Auto,
            precision: Precision::F64,
            thread_budget: None,
            stats: None,
        }
    }

    /// New engine with an explicit execution mode.
    pub fn with_mode(coll: &'a ShardedCollection, mode: ScanMode) -> Self {
        ShardedScan {
            mode,
            ..Self::new(coll)
        }
    }

    /// Attach per-shard partition layouts
    /// ([`ShardedCollection::build_partitions`]): every shard pass then
    /// runs through a [`PartitionedScan`] instead of the flat
    /// [`MultiQueryScan`], pruning partitions against the same caps the
    /// cross-shard seeding delivers — so a partial delivered by one
    /// shard tightens the partition bounds of every later shard pass.
    /// Answers stay bit-identical to the unpartitioned scatter/gather
    /// (partition pruning is answer-transparent; the bit-identity suite
    /// pins the composition). `parts[i]` must be built from shard `i`.
    ///
    /// # Panics
    ///
    /// Panics when `parts.len()` differs from the shard count or a
    /// layout's row count disagrees with its shard.
    pub fn with_partitions(mut self, parts: &'a [PartitionedCollection]) -> Self {
        assert_eq!(
            parts.len(),
            self.coll.shard_count(),
            "one partition layout per shard"
        );
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(
                p.len(),
                self.coll.shard(i).len(),
                "partition layout row count must match its shard"
            );
        }
        self.parts = Some(parts);
        self
    }

    /// Select the scan precision ([`Precision::F32Rescore`] degrades to
    /// the f64 path per shard when a shard has no mirror — results are
    /// identical either way, only bandwidth differs).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Cap the **total** worker threads across all shards (at least 1).
    pub fn with_thread_budget(mut self, threads: usize) -> Self {
        self.thread_budget = Some(threads.max(1));
        self
    }

    /// Flush every shard pass's work counters into `sink` (see
    /// [`ScanStats`](super::ScanStats)): the sink is lock-free, so all
    /// shard workers share it without serializing, and attaching it
    /// never changes an answer.
    pub fn with_scan_stats(mut self, sink: &'a ScanStatsSink) -> Self {
        self.stats = Some(sink);
        self
    }

    /// The underlying sharded collection.
    pub fn collection(&self) -> &'a ShardedCollection {
        self.coll
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The concrete mode every shard pass runs at: `Auto` resolves from
    /// the **total** work across shards (`len × dim × nq`, the same
    /// formula [`MultiQueryScan`] applies to a flat collection), so the
    /// answer — and the kernels producing it — match the unsharded scan
    /// regardless of how thinly the rows are sharded.
    fn effective_mode(&self, nq: usize) -> ScanMode {
        match self.mode {
            ScanMode::Auto => {
                if self.coll.len() * self.coll.dim().max(1) * nq.max(1) >= PARALLEL_CUTOFF {
                    ScanMode::Parallel
                } else {
                    ScanMode::Batched
                }
            }
            m => m,
        }
    }

    /// The per-shard scan for shard `i`, carrying this engine's resolved
    /// mode/precision and an even share of the thread budget.
    fn shard_scan(&self, shard: usize, mode: ScanMode) -> MultiQueryScan<'a> {
        let scan = MultiQueryScan::with_mode(self.coll.shard(shard), mode)
            .with_precision(self.precision)
            .with_thread_budget(self.per_shard_budget());
        match self.stats {
            Some(sink) => scan.with_scan_stats(sink),
            None => scan,
        }
    }

    /// The partition-pruning per-shard scan for shard `shard`, when a
    /// layout is attached — same resolved mode/precision/budget/stats
    /// as the flat per-shard scan it replaces.
    fn shard_part_scan(
        &self,
        part: &'a PartitionedCollection,
        mode: ScanMode,
    ) -> PartitionedScan<'a> {
        let scan = PartitionedScan::with_mode(part, mode)
            .with_precision(self.precision)
            .with_thread_budget(self.per_shard_budget());
        match self.stats {
            Some(sink) => scan.with_scan_stats(sink),
            None => scan,
        }
    }

    /// Total worker budget (explicit, or the machine's parallelism).
    fn total_budget(&self) -> usize {
        self.thread_budget
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// Even per-shard share of the total budget (at least 1): `S` shard
    /// passes at `budget / S` threads each keep the host at ~`budget`
    /// total, exactly like the eval sweeps' per-configuration shares.
    fn per_shard_budget(&self) -> usize {
        (self.total_budget() / self.coll.shard_count()).max(1)
    }

    /// Offset a shard's keyed results to global row indices.
    fn globalize(&self, shard: usize, keyed: KeyedResults) -> Vec<ShardPartial> {
        let offset = self.coll.offset(shard) as u32;
        keyed
            .entries
            .into_iter()
            .map(|entries| ShardPartial {
                entries: entries
                    .into_iter()
                    .map(|(key, index)| (key, index + offset))
                    .collect(),
                finished: keyed.finished,
            })
            .collect()
    }

    /// Scatter stage, shared-metric form: run shard `shard`'s pass for
    /// every query and return one keyed partial per query (global
    /// indices). External per-shard schedulers (the server's shard
    /// dispatchers) call this from their own threads and gather the
    /// partials with [`merge_partials`]; results are independent of how
    /// requests were grouped into shard passes.
    /// `caps` (per query, optional) are cross-shard pruning seeds —
    /// typically other shards' [`ShardPartial::bound_key`] values. Each
    /// must be a sound upper bound on that query's global k-th value;
    /// passing `None` (or `+∞` entries) is always correct, a sound cap
    /// only makes the pass cheaper, never different.
    pub fn scan_shard_multi(
        &self,
        shard: usize,
        queries: &[&[f64]],
        ks: &[usize],
        dist: &dyn Distance,
        caps: Option<&[f64]>,
    ) -> Vec<ShardPartial> {
        let mode = self.effective_mode(queries.len());
        let keyed = match self.parts {
            Some(parts) => self
                .shard_part_scan(&parts[shard], mode)
                .knn_multi_k_keyed(queries, ks, dist, caps),
            None => self
                .shard_scan(shard, mode)
                .knn_multi_k_keyed(queries, ks, dist, caps),
        };
        self.globalize(shard, keyed)
    }

    /// Scatter stage, per-query-metric form (`dists[i]` for
    /// `queries[i]`).
    pub fn scan_shard_per_query(
        &self,
        shard: usize,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
        caps: Option<&[f64]>,
    ) -> Vec<ShardPartial> {
        let mode = self.effective_mode(queries.len());
        let keyed = match self.parts {
            Some(parts) => self
                .shard_part_scan(&parts[shard], mode)
                .knn_per_query_k_keyed(queries, dists, ks, caps),
            None => self
                .shard_scan(shard, mode)
                .knn_per_query_k_keyed(queries, dists, ks, caps),
        };
        self.globalize(shard, keyed)
    }

    /// Scatter stage, per-query **weighted-Euclidean** form — the
    /// serving shape after sessions' learned weights diverge, riding the
    /// register-blocked per-query-weight multi kernels per shard.
    pub fn scan_shard_weighted(
        &self,
        shard: usize,
        queries: &[&[f64]],
        metrics: &[WeightedEuclidean],
        ks: &[usize],
        caps: Option<&[f64]>,
    ) -> Vec<ShardPartial> {
        let refs: Vec<&WeightedEuclidean> = metrics.iter().collect();
        self.scan_shard_weighted_refs(shard, queries, &refs, ks, caps)
    }

    /// [`Self::scan_shard_weighted`] taking the metrics by reference —
    /// for schedulers that built each request's metric **once** at
    /// admission and share it across all `S` shard passes (the server
    /// dispatchers), instead of cloning `S` owned copies per request.
    pub fn scan_shard_weighted_refs(
        &self,
        shard: usize,
        queries: &[&[f64]],
        metrics: &[&WeightedEuclidean],
        ks: &[usize],
        caps: Option<&[f64]>,
    ) -> Vec<ShardPartial> {
        let mode = self.effective_mode(queries.len());
        let keyed = match self.parts {
            Some(parts) => self
                .shard_part_scan(&parts[shard], mode)
                .knn_weighted_per_query_k_keyed(queries, metrics, ks, caps),
            None => self
                .shard_scan(shard, mode)
                .knn_weighted_per_query_k_keyed(queries, metrics, ks, caps),
        };
        self.globalize(shard, keyed)
    }

    /// Run `scan_shard` for every shard with **cross-shard bound
    /// seeding**, like the server dispatcher path: workers share one
    /// atomic seed cell per query, snapshot the seeds into early-abandon
    /// caps before each shard pass, and offer every delivered partial's
    /// [`ShardPartial::bound_key`] back. A seed is the k-th best of a
    /// row subset, hence a sound upper bound on the global k-th — caps
    /// only make passes cheaper, never different (the consistency suite
    /// pins the one-shot answers bit-identical to the flat scan).
    fn scatter_seeded(
        &self,
        ks: &[usize],
        scan_shard: &(dyn Fn(usize, &[f64]) -> Vec<ShardPartial> + Sync),
    ) -> Vec<Vec<ShardPartial>> {
        let seeds = SeedSet::new(ks.len());
        self.scatter(&|shard| {
            let caps = seeds.snapshot();
            let parts = scan_shard(shard, &caps);
            for (q, part) in parts.iter().enumerate() {
                if let Some(bound) = part.bound_key(ks[q]) {
                    seeds.offer(q, bound);
                }
            }
            parts
        })
    }

    /// Run `scan_shard` for every shard — `min(shards, budget)` scoped
    /// worker threads, round-robin shard assignment — and return the
    /// partials indexed `[shard][query]`.
    fn scatter(
        &self,
        scan_shard: &(dyn Fn(usize) -> Vec<ShardPartial> + Sync),
    ) -> Vec<Vec<ShardPartial>> {
        let s = self.coll.shard_count();
        let workers = self.total_budget().min(s);
        if workers <= 1 || s == 1 {
            return (0..s).map(scan_shard).collect();
        }
        let mut parts: Vec<Option<Vec<ShardPartial>>> = vec![None; s];
        std::thread::scope(|scope| {
            let mut worker_slots: Vec<WorkerSlots<'_>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, slot) in parts.iter_mut().enumerate() {
                worker_slots[i % workers].push((i, slot));
            }
            for slots in worker_slots {
                scope.spawn(move || {
                    for (i, slot) in slots {
                        *slot = Some(scan_shard(i));
                    }
                });
            }
        });
        parts
            .into_iter()
            .map(|p| p.expect("worker filled its shards"))
            .collect()
    }

    /// Gather stage shared by the one-shot entry points.
    fn gather<'d>(
        &self,
        parts: Vec<Vec<ShardPartial>>,
        ks: &[usize],
        dist_of: impl Fn(usize) -> &'d dyn Distance,
    ) -> Vec<Vec<Neighbor>> {
        ks.iter()
            .enumerate()
            .map(|(q, &k)| merge_partials(parts.iter().map(|shard| &shard[q]), k, dist_of(q)))
            .collect()
    }

    /// The `k` nearest neighbors of every query under one shared
    /// `dist`: scatter across shards, merge in key space — results
    /// bit-identical to [`MultiQueryScan::knn_multi`] over the unsharded
    /// collection, and therefore to per-query
    /// [`LinearScan`](super::LinearScan)s.
    pub fn knn_multi(
        &self,
        queries: &[&[f64]],
        k: usize,
        dist: &dyn Distance,
    ) -> Vec<Vec<Neighbor>> {
        self.knn_multi_k(queries, &vec![k; queries.len()], dist)
    }

    /// Like [`Self::knn_multi`] with a per-query result count.
    pub fn knn_multi_k(
        &self,
        queries: &[&[f64]],
        ks: &[usize],
        dist: &dyn Distance,
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() {
            return Vec::new();
        }
        let parts = self.scatter_seeded(ks, &|shard, caps| {
            self.scan_shard_multi(shard, queries, ks, dist, Some(caps))
        });
        self.gather(parts, ks, |_| dist)
    }

    /// The `k` nearest neighbors of every query under its own distance
    /// function, scattered across shards.
    pub fn knn_per_query_k(
        &self,
        queries: &[&[f64]],
        dists: &[&dyn Distance],
        ks: &[usize],
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len(), dists.len(), "one distance per query");
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() {
            return Vec::new();
        }
        let parts = self.scatter_seeded(ks, &|shard, caps| {
            self.scan_shard_per_query(shard, queries, dists, ks, Some(caps))
        });
        self.gather(parts, ks, |q| dists[q])
    }

    /// Per-query weighted-Euclidean metrics, scattered across shards.
    pub fn knn_weighted_per_query_k(
        &self,
        queries: &[&[f64]],
        metrics: &[WeightedEuclidean],
        ks: &[usize],
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len(), metrics.len(), "one metric per query");
        assert_eq!(queries.len(), ks.len(), "one k per query");
        if queries.is_empty() {
            return Vec::new();
        }
        let refs: Vec<&WeightedEuclidean> = metrics.iter().collect();
        let parts = self.scatter_seeded(ks, &|shard, caps| {
            self.scan_shard_weighted_refs(shard, queries, &refs, ks, Some(caps))
        });
        self.gather(parts, ks, |q| &metrics[q])
    }

    /// All neighbors within `radius` (inclusive), scattered across
    /// shards: each shard answers its own range query exactly (shards
    /// cover disjoint rows, so membership is a per-row question), the
    /// results concatenate with global indices and sort by the canonical
    /// ascending `(dist, index)` — identical to
    /// [`LinearScan::range`](super::KnnEngine::range) over the unsharded
    /// collection in the same mode.
    pub fn range(&self, query: &[f64], radius: f64, dist: &dyn Distance) -> Vec<Neighbor> {
        let parts = self.scatter(&|shard| {
            let offset = self.coll.offset(shard) as u32;
            let scan = LinearScan::with_mode(self.coll.shard(shard), self.mode)
                .with_precision(self.precision)
                .with_thread_budget(self.per_shard_budget());
            vec![ShardPartial {
                entries: scan
                    .range(query, radius, dist)
                    .into_iter()
                    .map(|n| (n.dist, n.index + offset))
                    .collect(),
                finished: true,
            }]
        });
        let mut out: Vec<Neighbor> = parts
            .into_iter()
            .flat_map(|mut shard| shard.swap_remove(0).entries)
            .map(|(dist, index)| Neighbor { index, dist })
            .collect();
        out.sort_unstable_by(Neighbor::total_cmp);
        out
    }
}
