//! k-nearest-neighbor engines.
//!
//! The paper's query-processing step "typically exploits index structures
//! for high-dimensional data, such as X-trees and M-trees" (§2). Three
//! interchangeable engines are provided:
//!
//! * [`LinearScan`] — exhaustive, works with any distance, the correctness
//!   baseline;
//! * [`VpTree`] — vantage-point tree built under Euclidean;
//! * [`MTree`] — the M-tree of Ciaccia/Patella/Zezula (the paper's cited
//!   access method), also built under Euclidean.
//!
//! The feedback loop re-weights the metric *between* iterations, which
//! would invalidate a naively built index. The metric trees stay exact by
//! pruning with a **distortion bound**: for any query distance `d` with
//! `lo·d₂(a,b) ≤ d(a,b)` ([`crate::Distance::euclidean_distortion`]), a
//! subtree whose Euclidean lower bound `B` satisfies `lo·B > τ` cannot
//! contain a result within `τ`. Distances without a bound degrade to
//! `lo = 0`, disabling pruning but never correctness.

mod mtree;
mod multi;
mod partitioned;
mod scan;
mod sharded;
mod stats;
mod vptree;

pub use mtree::{MTree, MTreeConfig};
pub use multi::MultiQueryScan;
pub use partitioned::PartitionedScan;
pub use scan::{LinearScan, ScanMode};
pub use sharded::{
    combine_partials, merge_partials, merge_partials_policy, DegradedGather, FailurePolicy,
    GatherError, ShardPartial, ShardedScan,
};
pub use stats::{ScanStats, ScanStatsSink};
pub use vptree::VpTree;

use crate::collection::Collection;
use crate::distance::Distance;

/// Numeric precision of the scan engines' candidate filtering.
///
/// The stored keys and returned distances are **always** f64 — this knob
/// only selects what the bulk of the scan streams:
///
/// * [`Precision::F64`] — every candidate's key comes straight from the
///   f64 buffer (the classic single-phase scan).
/// * [`Precision::F32Rescore`] — two phases. Phase 1 streams the
///   collection's f32 mirror (half the bytes; the scans are
///   memory-bandwidth-bound at low query counts) through the f32 kernels,
///   early-abandoning against the running k-best threshold inflated by
///   `2 × Distance::f32_key_slack` — enough to guarantee the surviving
///   candidates contain the true f64 top-k. Phase 2 rescores the
///   survivors from the f64 buffer with the exact kernels, so the
///   returned indices *and* distances are identical to an [`Precision::F64`]
///   scan. Requires the collection's mirror
///   ([`Collection::ensure_f32_mirror`]) and a distance class with an f32
///   kernel; otherwise — and in `ScanMode::Scalar`, the reference
///   baseline — the scan silently runs the f64 path, so requesting
///   `F32Rescore` is always safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Single-phase pure-f64 scan.
    #[default]
    F64,
    /// f32-mirror phase-1 filter + exact f64 rescore (identical results).
    F32Rescore,
}

/// Round a key-space bound up into f32 so phase-1 early abandonment can
/// never drop a row sitting exactly on the f64 bound. (`±∞` pass
/// through; `NEG_INFINITY` is the "collect nothing" bound used for
/// `k = 0` requests.)
pub(crate) fn f32_bound_up(bound: f64) -> f32 {
    if bound.is_infinite() {
        return if bound > 0.0 {
            f32::INFINITY
        } else {
            f32::NEG_INFINITY
        };
    }
    let b = bound as f32; // round-to-nearest
    if (b as f64) < bound {
        b.next_up()
    } else {
        b
    }
}

/// Phase 2 of the f32-rescore scan: exact f64 keys for the surviving
/// candidate indices, k smallest by `(key, index)`. Candidates are
/// gathered block-wise into a contiguous scratch buffer and evaluated by
/// the same [`Distance::eval_key_batch`] kernel the pure-f64 scan uses,
/// so as long as the candidate set contains the true top-k (the phase-1
/// guarantee) the result is identical to a full f64 scan — same indices,
/// same key bits, same distances.
/// The result stays one step short of finishing: the exact f64 k-best
/// still in **key space**, so callers (the multi-query scan's public
/// wrappers, the sharded scan's scatter stage) can merge several
/// partial k-bests by `(key, index)` before paying the `finish_key`
/// root.
/// `perm` (when given) maps each candidate index before the push while
/// the gather still reads `coll` by the *candidate* index — the
/// partitioned scan's contract: candidates speak the reordered inner
/// collection's rows (contiguous gathers), results speak the source
/// collection's rows (original-index tie-breaks).
pub(crate) fn rescore_f64_keyed(
    coll: &Collection,
    query: &[f64],
    dist: &dyn Distance,
    cands: &[u32],
    k: usize,
    perm: Option<&[u32]>,
) -> KBest {
    let dim = coll.dim();
    let mut kb = KBest::new(k);
    if dim == 0 {
        return kb;
    }
    // Right-sized gather buffer: candidate pools are usually ~k rows, so
    // allocating (and page-touching) a full block's worth per call would
    // cost more than the gather itself. Filled by appending (pure
    // memcpy) rather than zero-init + overwrite — the sharded scatter
    // path runs one rescore per shard per query, so per-call buffer
    // zeroing would multiply with the shard count for no benefit.
    let chunk_rows = cands.len().clamp(1, BLOCK_ROWS);
    let mut rows: Vec<f64> = Vec::with_capacity(chunk_rows * dim);
    let mut keys = [0.0f64; BLOCK_ROWS];
    for chunk in cands.chunks(chunk_rows) {
        let n = chunk.len();
        rows.clear();
        for &i in chunk {
            rows.extend_from_slice(coll.vector(i as usize));
        }
        dist.eval_key_batch(query, &rows[..n * dim], dim, kb.threshold(), &mut keys[..n]);
        for (&i, &key) in chunk.iter().zip(keys.iter()) {
            kb.push(perm.map_or(i, |p| p[i as usize]), key);
        }
    }
    kb
}

/// Turn one query's keyed k-best entries into the public result form:
/// map each stored value through `finish_key` (unless the pass already
/// stored true distances — the Scalar reference), then order by the
/// canonical ascending `(dist, index)`. The re-sort matters only when
/// two distinct keys round to the same finished distance; selection
/// already happened in key space.
pub(crate) fn finish_entries(
    entries: Vec<(f64, u32)>,
    finished: bool,
    dist: &dyn Distance,
) -> Vec<Neighbor> {
    let mut v: Vec<Neighbor> = entries
        .into_iter()
        .map(|(value, index)| Neighbor {
            index,
            dist: if finished {
                value
            } else {
                dist.finish_key(value)
            },
        })
        .collect();
    v.sort_unstable_by(Neighbor::total_cmp);
    v
}

/// Rows evaluated per batched kernel invocation (shared by
/// [`LinearScan`] and [`MultiQueryScan`]). Large enough to amortize the
/// virtual call, small enough that a block's keys stay in L1 and the
/// k-best thresholds refresh frequently for early abandonment.
pub(crate) const BLOCK_ROWS: usize = 256;

/// `len × dim` (× queries, for the multi-query scan) threshold above
/// which [`ScanMode::Auto`] goes parallel; below it, thread spawn/join
/// overhead outweighs the win.
pub(crate) const PARALLEL_CUTOFF: usize = 64 * 1024;

/// Worker-thread count for a parallel scan: the caller's explicit budget
/// when one was set (the nested-parallelism case — e.g. `fbp-eval`
/// sweeps that already run one scan per configuration thread), otherwise
/// the machine's available parallelism; always capped by the number of
/// block-sized work items and at least 1.
pub(crate) fn scan_threads(budget: Option<usize>, work_items: usize) -> usize {
    budget
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(work_items)
        .max(1)
}

/// One query answer: collection index + distance under the query metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index into the collection.
    pub index: u32,
    /// Distance to the query under the query's distance function.
    pub dist: f64,
}

impl Neighbor {
    /// The canonical result order: ascending `(dist, index)`. Distances
    /// are finite by construction, so this is a total order.
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("non-finite distance")
            .then(self.index.cmp(&other.index))
    }
}

/// Statistics of one engine call (for the efficiency experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Distance evaluations under the query metric.
    pub distance_evals: u64,
    /// Tree nodes visited (0 for scans).
    pub nodes_visited: u64,
}

/// A k-NN engine over a fixed collection.
pub trait KnnEngine {
    /// The `k` nearest neighbors of `query` under `dist`, sorted by
    /// ascending `(dist, index)`. Returns fewer than `k` when the
    /// collection is smaller.
    fn knn(&self, query: &[f64], k: usize, dist: &dyn Distance) -> Vec<Neighbor>;

    /// Like [`Self::knn`] but also reports work counters.
    fn knn_with_stats(
        &self,
        query: &[f64],
        k: usize,
        dist: &dyn Distance,
    ) -> (Vec<Neighbor>, SearchStats);

    /// All neighbors within `radius` (inclusive), sorted ascending.
    fn range(&self, query: &[f64], radius: f64, dist: &dyn Distance) -> Vec<Neighbor>;

    /// Engine name for reports.
    fn name(&self) -> &str;
}

/// Bounded max-heap keeping the `k` smallest values seen.
///
/// Engines feed it surrogate *keys* ([`Distance::eval_key`]) rather than
/// true distances: keys are a strictly increasing function of the
/// distance, so the k-best by key is the k-best by distance, and only
/// the final winners pay the `finish_key` root (see
/// [`Self::into_sorted_with`]).
pub(crate) struct KBest {
    k: usize,
    heap: std::collections::BinaryHeap<HeapEntry>,
}

#[derive(PartialEq)]
pub(crate) struct HeapEntry {
    dist: f64,
    index: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by distance, ties broken by index so results are
        // deterministic; distances are finite by construction.
        self.dist
            .partial_cmp(&other.dist)
            .expect("non-finite distance")
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl KBest {
    pub(crate) fn new(k: usize) -> Self {
        KBest {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Current pruning threshold — the k-th best value pushed so far (in
    /// whatever space the caller pushes: keys or distances), or ∞ while
    /// the heap is not full.
    #[inline]
    pub(crate) fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |e| e.dist)
        }
    }

    /// Offer a candidate.
    #[inline]
    pub(crate) fn push(&mut self, index: u32, dist: f64) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { dist, index });
        } else if let Some(top) = self.heap.peek() {
            if dist < top.dist || (dist == top.dist && index < top.index) {
                self.heap.pop();
                self.heap.push(HeapEntry { dist, index });
            }
        }
    }

    /// Extract results sorted ascending by `(dist, index)`.
    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        self.into_sorted_with(|key| key)
    }

    /// Extract results sorted ascending, mapping each stored value
    /// through `finish` (e.g. [`Distance::finish_key`] to turn surrogate
    /// keys back into true distances — the only place the `sqrt` is
    /// paid). `finish` must be increasing so the sort order carries over.
    pub(crate) fn into_sorted_with(self, finish: impl Fn(f64) -> f64) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self
            .heap
            .into_iter()
            .map(|e| Neighbor {
                index: e.index,
                dist: finish(e.dist),
            })
            .collect();
        v.sort_unstable_by(Neighbor::total_cmp);
        v
    }

    /// Iterate the raw `(value, index)` entries (unsorted heap order).
    pub(crate) fn entries(&self) -> impl Iterator<Item = (f64, u32)> + '_ {
        self.heap.iter().map(|e| (e.dist, e.index))
    }

    /// Consume into `(value, index)` entries sorted ascending by
    /// `(value, index)` — the merge-ready keyed form the sharded scan
    /// folds across shards before finishing.
    pub(crate) fn into_sorted_entries(self) -> Vec<(f64, u32)> {
        let mut v: Vec<(f64, u32)> = self.heap.into_iter().map(|e| (e.dist, e.index)).collect();
        v.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("non-finite key")
                .then(a.1.cmp(&b.1))
        });
        v
    }
}

/// Lower distortion factor of a query metric vs Euclidean (0 ⇒ no pruning).
#[inline]
pub(crate) fn lower_factor(dist: &dyn Distance) -> f64 {
    dist.euclidean_distortion()
        .map_or(0.0, |(lo, _)| lo.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kbest_keeps_smallest() {
        let mut kb = KBest::new(3);
        assert_eq!(kb.threshold(), f64::INFINITY);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            kb.push(i as u32, *d);
        }
        assert_eq!(kb.threshold(), 3.0);
        let out = kb.into_sorted();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].dist, 1.0);
        assert_eq!(out[2].dist, 3.0);
    }

    #[test]
    fn kbest_tie_break_is_deterministic() {
        let mut kb = KBest::new(2);
        kb.push(5, 1.0);
        kb.push(3, 1.0);
        kb.push(1, 1.0);
        let out = kb.into_sorted();
        assert_eq!(out.iter().map(|n| n.index).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn kbest_zero_k() {
        let mut kb = KBest::new(0);
        kb.push(0, 1.0);
        assert!(kb.into_sorted().is_empty());
    }
}
