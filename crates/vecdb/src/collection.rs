//! Flat storage of labelled feature vectors.
//!
//! Vectors live in one contiguous row-major buffer (`len × dim`), so a
//! k-NN scan touches memory sequentially; labels are category ids used by
//! the evaluation harness as its relevance oracle (paper §5: "any image in
//! the same category was considered a good match").
//!
//! # Precision model: optional f32 mirror
//!
//! The authoritative store is always f64 — every key pushed into a
//! k-best and every distance returned to a caller comes from the f64
//! buffer. A collection may additionally carry an **f32 mirror**
//! ([`Collection::ensure_f32_mirror`], or
//! [`CollectionBuilder::with_f32_mirror`]): the same vectors, same
//! row-major block layout, rounded once to f32. Scans configured with
//! `Precision::F32Rescore` stream the mirror (half the bytes of the f64
//! buffer — the scans are bandwidth-bound at low query counts) as a
//! phase-1 filter, then rescore the surviving candidates from the f64
//! buffer, so results stay identical to a pure f64 scan. The mirror also
//! records the largest component magnitude ([`Collection::max_abs`]),
//! which the scan feeds into each distance class's rounding bound
//! (`Distance::f32_key_slack`).

use crate::{Result, VecdbError};

/// Category identifier (index into the collection's category name table).
pub type CategoryId = u32;

/// Sentinel category for unlabelled ("noise") objects.
pub const NO_CATEGORY: CategoryId = u32::MAX;

/// An immutable collection of labelled feature vectors.
#[derive(Debug, Clone)]
pub struct Collection {
    dim: usize,
    data: Vec<f64>,
    labels: Vec<CategoryId>,
    category_names: Vec<String>,
    /// Member indices per registered category, precomputed at build time
    /// so `category_size`/`category_members` are O(1) (the evaluation
    /// harness calls them per query).
    members_by_category: Vec<Vec<usize>>,
    /// Optional f32 mirror of `data` (same layout) plus the largest
    /// component magnitude of the f64 data, for the f32-rescore scans.
    mirror: Option<MirrorF32>,
}

/// The f32 mirror: half-width copy of the vector buffer plus the
/// magnitude bound its rounding analysis needs.
#[derive(Debug, Clone)]
struct MirrorF32 {
    data: Vec<f32>,
    max_abs: f64,
}

impl MirrorF32 {
    fn build(data: &[f64]) -> Self {
        MirrorF32 {
            data: data.iter().map(|&v| v as f32).collect(),
            max_abs: data.iter().fold(0.0f64, |m, &v| m.max(v.abs())),
        }
    }
}

impl Collection {
    /// Dimensionality of every vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Borrow vector `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow the contiguous row-major block of vectors
    /// `start..end` (`(end − start) × dim` values) — the unit the batched
    /// distance kernels consume ([`crate::Distance::eval_key_batch`]).
    #[inline]
    pub fn block(&self, start: usize, end: usize) -> &[f64] {
        &self.data[start * self.dim..end * self.dim]
    }

    /// Category of vector `i` ([`NO_CATEGORY`] when unlabelled).
    #[inline]
    pub fn label(&self, i: usize) -> CategoryId {
        self.labels[i]
    }

    /// Name of a category id.
    pub fn category_name(&self, c: CategoryId) -> Option<&str> {
        self.category_names.get(c as usize).map(|s| s.as_str())
    }

    /// All category names, indexed by id.
    pub fn category_names(&self) -> &[String] {
        &self.category_names
    }

    /// Number of distinct registered categories.
    pub fn category_count(&self) -> usize {
        self.category_names.len()
    }

    /// Number of members of a category (the evaluation's recall
    /// denominator). O(1): counts are precomputed at build time.
    /// Unregistered ids (including [`NO_CATEGORY`]) report 0.
    pub fn category_size(&self, c: CategoryId) -> usize {
        self.members_by_category.get(c as usize).map_or(0, Vec::len)
    }

    /// Indices of all members of a category, ascending. O(1): the member
    /// lists are precomputed at build time. Unregistered ids (including
    /// [`NO_CATEGORY`]) report an empty slice.
    pub fn category_members(&self, c: CategoryId) -> &[usize] {
        self.members_by_category
            .get(c as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Iterate `(index, vector, label)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64], CategoryId)> + '_ {
        (0..self.len()).map(move |i| (i, self.vector(i), self.labels[i]))
    }

    /// Build the f32 mirror if it is not already present (one rounding
    /// pass over the data; idempotent). Scans with `Precision::F32Rescore`
    /// use the mirror when present and silently run in pure f64 when not,
    /// so enabling it is always safe.
    pub fn ensure_f32_mirror(&mut self) {
        if self.mirror.is_none() {
            self.mirror = Some(MirrorF32::build(&self.data));
        }
    }

    /// Drop the f32 mirror (frees `len × dim × 4` bytes; scans fall back
    /// to pure f64).
    pub fn drop_f32_mirror(&mut self) {
        self.mirror = None;
    }

    /// True when the f32 mirror is present.
    pub fn has_f32_mirror(&self) -> bool {
        self.mirror.is_some()
    }

    /// Borrow the f32 mirror's contiguous row-major block of vectors
    /// `start..end` — the phase-1 unit of the f32-rescore scan
    /// ([`crate::Distance::eval_key_batch_f32`]). `None` when no mirror
    /// has been built.
    #[inline]
    pub fn block_f32(&self, start: usize, end: usize) -> Option<&[f32]> {
        self.mirror
            .as_ref()
            .map(|m| &m.data[start * self.dim..end * self.dim])
    }

    /// Largest `|component|` over the stored f64 vectors (recorded when
    /// the mirror is built; `None` without a mirror). Scans take the max
    /// of this and the query's own magnitude as the `max_abs` argument of
    /// [`crate::Distance::f32_key_slack`].
    pub fn max_abs(&self) -> Option<f64> {
        self.mirror.as_ref().map(|m| m.max_abs)
    }

    /// Heap bytes of the vector payloads: the f64 buffer plus the f32
    /// mirror (when present). This is the number the scan-bandwidth math
    /// in the benches divides by — labels, category tables and container
    /// overheads are excluded deliberately (the scans never touch them).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>() + self.mirror_bytes()
    }

    /// Heap bytes of the f32 mirror alone (0 without a mirror).
    pub fn mirror_bytes(&self) -> usize {
        self.mirror
            .as_ref()
            .map_or(0, |m| m.data.len() * std::mem::size_of::<f32>())
    }
}

impl Collection {
    /// Copy rows `start..end` out into a standalone [`Collection`]: same
    /// dim, same category-name table, labels preserved, member lists
    /// rebuilt against the **local** row numbering, and the f32 mirror
    /// re-derived from the sliced rows when the source carries one
    /// (f64→f32 rounding is deterministic per value, so the slice's
    /// mirror bits equal the corresponding source-mirror bits; its
    /// `max_abs` is recomputed over the slice alone, which can only
    /// tighten the rounding bound the f32-rescore scans derive from it).
    /// This is the shard-construction primitive of
    /// [`ShardedCollection::split`].
    pub fn slice_rows(&self, start: usize, end: usize) -> Collection {
        assert!(start <= end && end <= self.len(), "row range out of bounds");
        let data = self.data[start * self.dim..end * self.dim].to_vec();
        let labels = self.labels[start..end].to_vec();
        let mut members_by_category = vec![Vec::new(); self.category_names.len()];
        for (i, &label) in labels.iter().enumerate() {
            if label != NO_CATEGORY {
                members_by_category[label as usize].push(i);
            }
        }
        let mirror = self.mirror.is_some().then(|| MirrorF32::build(&data));
        Collection {
            dim: self.dim,
            data,
            labels,
            category_names: self.category_names.clone(),
            members_by_category,
            mirror,
        }
    }
}

/// A [`Collection`] partitioned into `S` contiguous row shards.
///
/// Shard `i` owns the global rows `offset(i)..offset(i + 1)` as its own
/// standalone `Collection` — its own contiguous f64 buffer and (when the
/// source collection carried one) its own f32 mirror — so `S` scan
/// passes can stream `S` disjoint buffers from `S` cores at once. The
/// scatter/gather scan ([`ShardedScan`](crate::knn::ShardedScan)) runs
/// every query against every shard and merges the per-shard k-bests in
/// key space with the deterministic `(key, index)` order, which pins the
/// merged answer bit-identical to the unsharded scan: per-row keys do
/// not depend on where block or shard boundaries fall, and selection
/// happens in the same key space either way.
///
/// Row splits are balanced (`shard i = rows ⌊i·len/S⌋..⌊(i+1)·len/S⌋`),
/// so `S > len` simply leaves the tail shards empty — a legal,
/// zero-work degenerate every consumer must tolerate.
#[derive(Debug, Clone)]
pub struct ShardedCollection {
    shards: Vec<Collection>,
    /// Global start row per shard plus the total length (`S + 1`
    /// entries, ascending): shard `i` covers `offsets[i]..offsets[i+1]`.
    offsets: Vec<usize>,
    dim: usize,
}

impl ShardedCollection {
    /// Partition `coll` into `shard_count` contiguous row shards
    /// (`shard_count` is clamped to at least 1). Each shard copies its
    /// rows once; the source collection is left untouched.
    pub fn split(coll: &Collection, shard_count: usize) -> Self {
        let s = shard_count.max(1);
        let len = coll.len();
        let mut shards = Vec::with_capacity(s);
        let mut offsets = Vec::with_capacity(s + 1);
        for i in 0..s {
            let start = i * len / s;
            let end = (i + 1) * len / s;
            offsets.push(start);
            shards.push(coll.slice_rows(start, end));
        }
        offsets.push(len);
        ShardedCollection {
            shards,
            offsets,
            dim: coll.dim(),
        }
    }

    /// Number of shards (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i`'s collection.
    pub fn shard(&self, i: usize) -> &Collection {
        &self.shards[i]
    }

    /// All shards in global row order.
    pub fn shards(&self) -> &[Collection] {
        &self.shards
    }

    /// Global row index of shard `i`'s first row (shard `i` covers
    /// `offset(i)..offset(i + 1)`; `offset(shard_count())` is the total
    /// length). A shard-local result index plus this offset is the
    /// global index the unsharded scan would report.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total number of vectors across all shards.
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of every vector (coherent across shards).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when every shard carries its f32 mirror (the precondition
    /// for a fully mirrored `F32Rescore` pass; shards without a mirror
    /// degrade to the f64 path individually, results identical).
    pub fn has_f32_mirror(&self) -> bool {
        self.shards.iter().all(Collection::has_f32_mirror)
    }

    /// Build every shard's f32 mirror (idempotent per shard).
    pub fn ensure_f32_mirror(&mut self) {
        for shard in &mut self.shards {
            shard.ensure_f32_mirror();
        }
    }

    /// Heap bytes of all shards' vector payloads (f64 buffers plus f32
    /// mirrors), same accounting as [`Collection::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(Collection::memory_bytes).sum()
    }

    /// Build one [`PartitionedCollection`] per shard with the same
    /// config (each shard's partitioning is local — its pruning bounds
    /// and permutation speak shard-local row indices, which is exactly
    /// what [`ShardedScan`](crate::knn::ShardedScan) globalizes).
    pub fn build_partitions(&self, cfg: &PartitionConfig) -> Vec<PartitionedCollection> {
        self.shards
            .iter()
            .map(|s| PartitionedCollection::build(s, cfg))
            .collect()
    }
}

impl Collection {
    /// Copy rows out in an arbitrary order (`order[new] = old`) into a
    /// standalone [`Collection`] — the partition-layout primitive.
    /// Same guarantees as [`Self::slice_rows`]: labels preserved, member
    /// lists rebuilt against the new numbering, f32 mirror re-derived
    /// when the source carries one (per-value rounding is deterministic,
    /// so each permuted mirror row is bit-identical to its source row).
    fn permute_rows(&self, order: &[u32]) -> Collection {
        let mut data = Vec::with_capacity(order.len() * self.dim);
        let mut labels = Vec::with_capacity(order.len());
        for &old in order {
            data.extend_from_slice(self.vector(old as usize));
            labels.push(self.labels[old as usize]);
        }
        let mut members_by_category = vec![Vec::new(); self.category_names.len()];
        for (i, &label) in labels.iter().enumerate() {
            if label != NO_CATEGORY {
                members_by_category[label as usize].push(i);
            }
        }
        let mirror = self.mirror.is_some().then(|| MirrorF32::build(&data));
        Collection {
            dim: self.dim,
            data,
            labels,
            category_names: self.category_names.clone(),
            members_by_category,
            mirror,
        }
    }
}

/// Configuration of the **partition-pruning layer** — the opt-in that
/// turns a flat collection into a [`PartitionedCollection`] for
/// [`PartitionedScan`](crate::knn::PartitionedScan).
///
/// # Normative behavior
///
/// * **Answer transparency.** Partitioning never changes an answer.
///   Every scan over the partitioned collection returns indices and
///   distances bit-identical to the flat scan over the source
///   collection, for every distance class, precision, scan mode and
///   `k` — pruning only skips partitions *proven* (by each class's
///   [`partition_lower_key`](crate::Distance::partition_lower_key)
///   certificate) unable to contain a top-`k` row. Classes that cannot
///   certify a sound lower bound are scanned flat, per class and
///   explicitly — a query under such a class simply never prunes.
/// * **Determinism.** The build is a pure function of the source
///   collection and this config: seeding is deterministic (`seed`
///   drives a splitmix64 stream), Lloyd iterations resolve assignment
///   ties to the lowest partition id, and empty clusters keep their
///   previous centroid. Two builds from identical inputs produce
///   identical layouts.
/// * **Degenerate shapes are legal.** `partitions` may exceed the row
///   count (surplus partitions come out empty), partitions may hold a
///   single row, and an empty collection partitions into `partitions`
///   empty partitions. Consumers must tolerate all of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Target partition count (clamped to ≥ 1). More partitions prune
    /// finer but pay more per-pass bound evaluations (`Q × partitions`
    /// centroid distances); √len is a reasonable default scale.
    pub partitions: usize,
    /// Lloyd refinement iterations over the (sampled) training rows.
    pub lloyd_iters: usize,
    /// Training-sample ceiling: Lloyd runs on an evenly strided sample
    /// of at most this many rows, then one full assignment pass places
    /// every row. Keeps build cost `O(sample × partitions × dim)` per
    /// iteration instead of `O(len × …)`.
    pub max_sample: usize,
    /// Seed of the deterministic centroid initialization.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            partitions: 64,
            lloyd_iters: 6,
            max_sample: 32_768,
            seed: 0xF33D_BA55,
        }
    }
}

impl PartitionConfig {
    /// Config with a given partition count and the default build knobs.
    pub fn with_partitions(partitions: usize) -> Self {
        PartitionConfig {
            partitions,
            ..Default::default()
        }
    }
}

/// A [`Collection`] clustered into partitions for proof-based pruning.
///
/// Layout: the rows live in an inner [`Collection`] reordered
/// **partition-contiguous** (partition `p` occupies rows
/// `rows(p)`, within a partition rows keep ascending original order),
/// so a surviving partition is one contiguous block scan for the
/// existing batch kernels. Alongside the rows: per-partition Euclidean
/// centroids and covering radii (`max` member distance, inflated by a
/// one-ulp-scale factor against build rounding) from which each
/// distance class derives its own key-space pruning certificate at
/// query time, and the permutation `perm[new] = original` the scan
/// applies when pushing results — answers always speak the source
/// collection's row numbering.
#[derive(Debug, Clone)]
pub struct PartitionedCollection {
    inner: Collection,
    /// Partition `p` covers inner rows `offsets[p]..offsets[p+1]`
    /// (`P + 1` entries, ascending, last = len).
    offsets: Vec<usize>,
    /// Row-major `P × dim` Euclidean centroids.
    centroids: Vec<f64>,
    /// Covering Euclidean radius per partition (0 for empty ones).
    radii: Vec<f64>,
    /// `perm[new_row] = original_row` of the source collection.
    perm: Vec<u32>,
}

/// splitmix64 step: the deterministic seed stream of the partition
/// build (no RNG dependency; same generator the test helpers use).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Block size of the build's assignment passes (mirrors the scan's
/// [`BLOCK_ROWS`](crate::knn) without creating a cross-module constant
/// dependency).
const PART_BLOCK: usize = 256;

impl PartitionedCollection {
    /// Cluster `coll` per `cfg` (deterministic; see [`PartitionConfig`]
    /// for the normative guarantees). The source collection is copied,
    /// not mutated.
    pub fn build(coll: &Collection, cfg: &PartitionConfig) -> Self {
        let p = cfg.partitions.max(1);
        let n = coll.len();
        let dim = coll.dim();
        if n == 0 || dim == 0 {
            // Degenerate: everything (possibly nothing) in partition 0.
            // With dim 0 every distance — including query→centroid — is
            // 0, so a 0 radius stays sound.
            let mut offsets = vec![n; p + 1];
            offsets[0] = 0;
            return PartitionedCollection {
                inner: coll.clone(),
                offsets,
                centroids: vec![0.0; p * dim],
                radii: vec![0.0; p],
                perm: (0..n as u32).collect(),
            };
        }

        // Deterministic initialization: p distinct rows when possible
        // (sparse Fisher–Yates over the row range), duplicated rows —
        // hence empty partitions — when p > n.
        let mut state = cfg.seed;
        let mut swapped: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut centroids = Vec::with_capacity(p * dim);
        for j in 0..p {
            let row = if j < n {
                let r = j + (splitmix64(&mut state) as usize) % (n - j);
                let picked = *swapped.get(&r).unwrap_or(&r);
                let jth = *swapped.get(&j).unwrap_or(&j);
                swapped.insert(r, jth);
                picked
            } else {
                j % n
            };
            centroids.extend_from_slice(coll.vector(row));
        }

        // Lloyd refinement on an evenly strided training sample.
        let sample_n = n.min(cfg.max_sample.max(1));
        let sample: Vec<f64> = if sample_n == n {
            coll.block(0, n).to_vec()
        } else {
            let mut s = Vec::with_capacity(sample_n * dim);
            for i in 0..sample_n {
                s.extend_from_slice(coll.vector(i * n / sample_n));
            }
            s
        };
        let mut keys = vec![0.0f64; p * PART_BLOCK];
        let bounds = vec![f64::INFINITY; p];
        for _ in 0..cfg.lloyd_iters {
            let mut sums = vec![0.0f64; p * dim];
            let mut counts = vec![0usize; p];
            let mut start = 0;
            while start < sample_n {
                let end = (start + PART_BLOCK).min(sample_n);
                let rows = end - start;
                crate::distance::kernels::l2_sq_multi_block(
                    &centroids,
                    &sample[start * dim..end * dim],
                    dim,
                    &bounds,
                    &mut keys[..p * rows],
                );
                for r in 0..rows {
                    let mut best = 0usize;
                    let mut best_key = keys[r];
                    for q in 1..p {
                        let key = keys[q * rows + r];
                        if key < best_key {
                            best = q;
                            best_key = key;
                        }
                    }
                    counts[best] += 1;
                    let row = &sample[(start + r) * dim..(start + r + 1) * dim];
                    for (acc, &v) in sums[best * dim..(best + 1) * dim].iter_mut().zip(row) {
                        *acc += v;
                    }
                }
                start = end;
            }
            for q in 0..p {
                if counts[q] > 0 {
                    let inv = 1.0 / counts[q] as f64;
                    for (c, s) in centroids[q * dim..(q + 1) * dim]
                        .iter_mut()
                        .zip(&sums[q * dim..(q + 1) * dim])
                    {
                        *c = s * inv;
                    }
                } // empty cluster: keep the previous centroid.
            }
        }

        // One full assignment pass against the final centroids,
        // recording each row's partition and its (squared) distance to
        // the winning centroid — the radius source. Row-parallel when
        // the collection is large; per-row results are independent, so
        // threading never changes the outcome.
        let mut assign = vec![0u32; n];
        let mut win_sq = vec![0.0f64; n];
        let work_blocks = n.div_ceil(PART_BLOCK);
        let threads = if n * dim * p >= (1 << 22) {
            crate::knn::scan_threads(None, work_blocks)
        } else {
            1
        };
        let assign_range =
            |rows_range: std::ops::Range<usize>, assign_out: &mut [u32], win_out: &mut [f64]| {
                let mut keys = vec![0.0f64; p * PART_BLOCK];
                let bounds = vec![f64::INFINITY; p];
                let base = rows_range.start;
                let mut start = rows_range.start;
                while start < rows_range.end {
                    let end = (start + PART_BLOCK).min(rows_range.end);
                    let rows = end - start;
                    crate::distance::kernels::l2_sq_multi_block(
                        &centroids,
                        coll.block(start, end),
                        dim,
                        &bounds,
                        &mut keys[..p * rows],
                    );
                    for r in 0..rows {
                        let mut best = 0usize;
                        let mut best_key = keys[r];
                        for q in 1..p {
                            let key = keys[q * rows + r];
                            if key < best_key {
                                best = q;
                                best_key = key;
                            }
                        }
                        assign_out[start - base + r] = best as u32;
                        win_out[start - base + r] = best_key;
                    }
                    start = end;
                }
            };
        if threads <= 1 {
            assign_range(0..n, &mut assign, &mut win_sq);
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                let mut assign_rest = assign.as_mut_slice();
                let mut win_rest = win_sq.as_mut_slice();
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    let (a, ar) = assign_rest.split_at_mut(end - start);
                    let (w, wr) = win_rest.split_at_mut(end - start);
                    assign_rest = ar;
                    win_rest = wr;
                    let assign_range = &assign_range;
                    scope.spawn(move || assign_range(start..end, a, w));
                    start = end;
                }
            });
        }

        // Group rows partition-contiguous (ascending original index
        // within each partition), derive offsets, the permutation and
        // the covering radii. The radius is inflated by a one-ulp-scale
        // factor so kernel rounding in the build can never understate
        // the cover (the query-time bound adds its own margin on top).
        let mut counts = vec![0usize; p];
        for &a in &assign {
            counts[a as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(p + 1);
        let mut acc = 0usize;
        for &c in &counts {
            offsets.push(acc);
            acc += c;
        }
        offsets.push(acc);
        debug_assert_eq!(acc, n);
        let mut next = offsets[..p].to_vec();
        let mut perm = vec![0u32; n];
        let mut radii_sq = vec![0.0f64; p];
        for (i, &a) in assign.iter().enumerate() {
            let q = a as usize;
            perm[next[q]] = i as u32;
            next[q] += 1;
            radii_sq[q] = radii_sq[q].max(win_sq[i]);
        }
        let radii = radii_sq
            .iter()
            .map(|&sq| sq.sqrt() * (1.0 + 1e-12))
            .collect();
        PartitionedCollection {
            inner: coll.permute_rows(&perm),
            offsets,
            centroids,
            radii,
            perm,
        }
    }

    /// The reordered inner collection (partition-contiguous rows). Row
    /// `i` here is row [`Self::original_index`]`(i)` of the source.
    pub fn collection(&self) -> &Collection {
        &self.inner
    }

    /// Number of partitions (≥ 1; some may be empty).
    pub fn partition_count(&self) -> usize {
        self.radii.len()
    }

    /// Inner row range of partition `p`.
    pub fn rows(&self, p: usize) -> std::ops::Range<usize> {
        self.offsets[p]..self.offsets[p + 1]
    }

    /// Euclidean centroid of partition `p`.
    pub fn centroid(&self, p: usize) -> &[f64] {
        let dim = self.inner.dim();
        &self.centroids[p * dim..(p + 1) * dim]
    }

    /// Covering Euclidean radius of partition `p`: every member row
    /// lies within this distance of the centroid (inflated against
    /// build rounding; 0 for empty partitions).
    pub fn radius(&self, p: usize) -> f64 {
        self.radii[p]
    }

    /// Source-collection row index of inner row `new`.
    #[inline]
    pub fn original_index(&self, new: usize) -> u32 {
        self.perm[new]
    }

    /// The full `new → original` permutation.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Number of rows (same as the source collection's).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Dimensionality of every vector.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Build the inner collection's f32 mirror (idempotent) so
    /// `Precision::F32Rescore` scans stream half the bytes here too.
    pub fn ensure_f32_mirror(&mut self) {
        self.inner.ensure_f32_mirror();
    }

    /// True when the inner collection carries its f32 mirror.
    pub fn has_f32_mirror(&self) -> bool {
        self.inner.has_f32_mirror()
    }

    /// Heap bytes: inner payloads plus the partition metadata
    /// (centroids, radii, offsets, permutation).
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
            + self.centroids.len() * std::mem::size_of::<f64>()
            + self.radii.len() * std::mem::size_of::<f64>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.perm.len() * std::mem::size_of::<u32>()
    }
}

/// Builder for [`Collection`].
#[derive(Debug, Default)]
pub struct CollectionBuilder {
    dim: Option<usize>,
    data: Vec<f64>,
    labels: Vec<CategoryId>,
    category_names: Vec<String>,
    build_mirror: bool,
}

impl CollectionBuilder {
    /// Fresh builder; the dimensionality is fixed by the first vector
    /// (or up front via [`Self::with_dim`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the dimensionality before any vector is pushed. An empty
    /// build then carries this `dim` instead of silently reporting 0 —
    /// callers that defer their first `push` (streaming ingest, staged
    /// loads) get a coherent collection/mirror either way. Pushes are
    /// validated against it exactly like against an inferred dim.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }

    /// Build the f32 mirror as part of [`Self::build`] (equivalent to
    /// calling [`Collection::ensure_f32_mirror`] afterwards).
    pub fn with_f32_mirror(mut self) -> Self {
        self.build_mirror = true;
        self
    }

    /// Register a category name, returning its id. Registering the same
    /// name again returns the existing id.
    pub fn category(&mut self, name: &str) -> CategoryId {
        if let Some(pos) = self.category_names.iter().position(|n| n == name) {
            return pos as CategoryId;
        }
        self.category_names.push(name.to_string());
        (self.category_names.len() - 1) as CategoryId
    }

    /// Append a labelled vector.
    pub fn push(&mut self, vector: &[f64], label: CategoryId) -> Result<usize> {
        match self.dim {
            None => self.dim = Some(vector.len()),
            Some(d) if d != vector.len() => {
                return Err(VecdbError::DimMismatch {
                    expected: d,
                    got: vector.len(),
                })
            }
            _ => {}
        }
        if label != NO_CATEGORY && label as usize >= self.category_names.len() {
            return Err(VecdbError::BadParameters(format!(
                "label {label} not registered"
            )));
        }
        self.data.extend_from_slice(vector);
        self.labels.push(label);
        Ok(self.labels.len() - 1)
    }

    /// Append an unlabelled (noise) vector.
    pub fn push_unlabelled(&mut self, vector: &[f64]) -> Result<usize> {
        self.push(vector, NO_CATEGORY)
    }

    /// Finish building.
    ///
    /// The dimensionality is whatever was fixed first — [`Self::with_dim`]
    /// or the first push — and is asserted coherent with the stored data
    /// (`data.len() == len × dim`), so an empty collection built after
    /// `with_dim(d)` reports `dim() == d` rather than a silent 0, and the
    /// mirror is built against the same dim.
    pub fn build(self) -> Collection {
        let dim = self.dim.unwrap_or(0);
        assert_eq!(
            self.data.len(),
            self.labels.len() * dim,
            "vector buffer incoherent with len × dim"
        );
        let mut members_by_category = vec![Vec::new(); self.category_names.len()];
        for (i, &label) in self.labels.iter().enumerate() {
            if label != NO_CATEGORY {
                members_by_category[label as usize].push(i);
            }
        }
        let mirror = self.build_mirror.then(|| MirrorF32::build(&self.data));
        Collection {
            dim,
            data: self.data,
            labels: self.labels,
            category_names: self.category_names,
            members_by_category,
            mirror,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut b = CollectionBuilder::new();
        let birds = b.category("Bird");
        let fish = b.category("Fish");
        assert_eq!(b.category("Bird"), birds, "re-registration is idempotent");
        b.push(&[1.0, 2.0], birds).unwrap();
        b.push(&[3.0, 4.0], fish).unwrap();
        b.push_unlabelled(&[5.0, 6.0]).unwrap();
        let c = b.build();
        assert_eq!(c.len(), 3);
        assert_eq!(c.dim(), 2);
        assert_eq!(c.vector(1), &[3.0, 4.0]);
        assert_eq!(c.label(0), birds);
        assert_eq!(c.label(2), NO_CATEGORY);
        assert_eq!(c.category_name(fish), Some("Fish"));
        assert_eq!(c.category_name(99), None);
        assert_eq!(c.category_count(), 2);
    }

    #[test]
    fn category_sizes_and_members() {
        let mut b = CollectionBuilder::new();
        let cat = b.category("X");
        b.push(&[0.0], cat).unwrap();
        b.push_unlabelled(&[1.0]).unwrap();
        b.push(&[2.0], cat).unwrap();
        let c = b.build();
        assert_eq!(c.category_size(cat), 2);
        assert_eq!(c.category_members(cat), vec![0, 2]);
        assert_eq!(c.category_size(7), 0);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[1.0, 2.0]).unwrap();
        assert!(matches!(
            b.push_unlabelled(&[1.0]),
            Err(VecdbError::DimMismatch { .. })
        ));
    }

    #[test]
    fn unregistered_label_rejected() {
        let mut b = CollectionBuilder::new();
        assert!(b.push(&[1.0], 0).is_err());
    }

    #[test]
    fn empty_collection() {
        let c = CollectionBuilder::new().build();
        assert!(c.is_empty());
        assert_eq!(c.dim(), 0);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn preset_dim_survives_empty_build_and_validates_pushes() {
        // The deferred-first-push case: dim is coherent without any data.
        let c = CollectionBuilder::new().with_dim(7).build();
        assert!(c.is_empty());
        assert_eq!(c.dim(), 7);
        // Pushes are checked against the preset dim like an inferred one.
        let mut b = CollectionBuilder::new().with_dim(2);
        assert!(matches!(
            b.push_unlabelled(&[1.0, 2.0, 3.0]),
            Err(VecdbError::DimMismatch {
                expected: 2,
                got: 3
            })
        ));
        b.push_unlabelled(&[1.0, 2.0]).unwrap();
        assert_eq!(b.build().dim(), 2);
    }

    #[test]
    fn mirror_rounds_data_and_reports_max_abs() {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[0.1, -3.5]).unwrap();
        b.push_unlabelled(&[2.0, 0.25]).unwrap();
        let mut c = b.build();
        assert!(!c.has_f32_mirror());
        assert_eq!(c.block_f32(0, 2), None);
        assert_eq!(c.max_abs(), None);
        assert_eq!(c.mirror_bytes(), 0);
        c.ensure_f32_mirror();
        assert!(c.has_f32_mirror());
        assert_eq!(c.max_abs(), Some(3.5));
        assert_eq!(c.block_f32(0, 2).unwrap(), &[0.1f32, -3.5, 2.0, 0.25][..]);
        assert_eq!(c.block_f32(1, 2).unwrap(), &[2.0f32, 0.25][..]);
        // Idempotent.
        c.ensure_f32_mirror();
        assert_eq!(c.mirror_bytes(), 4 * 4);
        c.drop_f32_mirror();
        assert!(!c.has_f32_mirror());
    }

    #[test]
    fn builder_mirror_matches_ensure() {
        let mut b = CollectionBuilder::new().with_f32_mirror();
        b.push_unlabelled(&[1.0, 2.0]).unwrap();
        let c = b.build();
        assert!(c.has_f32_mirror());
        assert_eq!(c.max_abs(), Some(2.0));
        // Empty build with a preset dim still gets a coherent (empty)
        // mirror instead of a dim-0 mismatch.
        let c = CollectionBuilder::new()
            .with_dim(3)
            .with_f32_mirror()
            .build();
        assert!(c.has_f32_mirror());
        assert_eq!(c.dim(), 3);
        assert_eq!(c.block_f32(0, 0).unwrap(), &[] as &[f32]);
    }

    #[test]
    fn slice_rows_preserves_rows_labels_and_mirror() {
        let mut b = CollectionBuilder::new().with_f32_mirror();
        let cat = b.category("X");
        for i in 0..10 {
            if i % 3 == 0 {
                b.push(&[i as f64, -(i as f64)], cat).unwrap();
            } else {
                b.push_unlabelled(&[i as f64, -(i as f64)]).unwrap();
            }
        }
        let c = b.build();
        let s = c.slice_rows(3, 7);
        assert_eq!(s.len(), 4);
        assert_eq!(s.dim(), 2);
        for i in 0..4 {
            assert_eq!(s.vector(i), c.vector(3 + i));
            assert_eq!(s.label(i), c.label(3 + i));
        }
        // Member lists are local: global rows 3 and 6 → local 0 and 3.
        assert_eq!(s.category_members(cat), &[0, 3]);
        // The mirror is carried over bit-for-bit (deterministic rounding)
        // with a slice-local max_abs.
        assert!(s.has_f32_mirror());
        assert_eq!(s.block_f32(0, 4).unwrap(), c.block_f32(3, 7).unwrap());
        assert_eq!(s.max_abs(), Some(6.0));
        // No-mirror sources slice without one.
        let mut plain = CollectionBuilder::new();
        plain.push_unlabelled(&[1.0]).unwrap();
        assert!(!plain.build().slice_rows(0, 1).has_f32_mirror());
        // Empty slices are legal.
        assert_eq!(c.slice_rows(5, 5).len(), 0);
    }

    #[test]
    fn sharded_split_covers_rows_contiguously() {
        let mut b = CollectionBuilder::new();
        for i in 0..10 {
            b.push_unlabelled(&[i as f64]).unwrap();
        }
        let c = b.build();
        for s in [1, 2, 3, 7, 10, 25] {
            let sc = ShardedCollection::split(&c, s);
            assert_eq!(sc.shard_count(), s);
            assert_eq!(sc.len(), 10);
            assert_eq!(sc.dim(), 1);
            assert!(!sc.is_empty());
            // Offsets tile the row space; every global row round-trips.
            for i in 0..s {
                let (lo, hi) = (sc.offset(i), sc.offset(i + 1));
                assert_eq!(sc.shard(i).len(), hi - lo, "shards={s} shard {i}");
                for local in 0..(hi - lo) {
                    assert_eq!(sc.shard(i).vector(local), c.vector(lo + local));
                }
            }
            assert_eq!(sc.offset(s), 10);
            // S > len leaves (only) tail shards empty.
            if s > 10 {
                assert!(sc.shards().iter().any(Collection::is_empty));
            }
        }
        // Degenerate: 0 clamps to 1 shard.
        assert_eq!(ShardedCollection::split(&c, 0).shard_count(), 1);
    }

    #[test]
    fn sharded_mirror_and_memory_accounting() {
        let mut b = CollectionBuilder::new();
        for i in 0..6 {
            b.push_unlabelled(&[i as f64, 0.5]).unwrap();
        }
        let c = b.build();
        let mut sc = ShardedCollection::split(&c, 4);
        assert!(!sc.has_f32_mirror());
        assert_eq!(sc.memory_bytes(), c.memory_bytes());
        sc.ensure_f32_mirror();
        assert!(sc.has_f32_mirror());
        assert_eq!(sc.memory_bytes(), 6 * 2 * 8 + 6 * 2 * 4);
        // Splitting a mirrored source mirrors every shard up front.
        let mut mc = c.clone();
        mc.ensure_f32_mirror();
        assert!(ShardedCollection::split(&mc, 3).has_f32_mirror());
        // An empty collection still splits into S (empty) shards.
        let empty = ShardedCollection::split(&CollectionBuilder::new().build(), 3);
        assert_eq!(empty.shard_count(), 3);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn memory_bytes_accounts_data_and_mirror() {
        let mut b = CollectionBuilder::new();
        for i in 0..10 {
            b.push_unlabelled(&[i as f64; 4]).unwrap();
        }
        let mut c = b.build();
        assert_eq!(c.memory_bytes(), 10 * 4 * 8);
        c.ensure_f32_mirror();
        assert_eq!(c.mirror_bytes(), 10 * 4 * 4);
        assert_eq!(c.memory_bytes(), 10 * 4 * 8 + 10 * 4 * 4);
    }
}
