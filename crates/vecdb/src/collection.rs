//! Flat storage of labelled feature vectors.
//!
//! Vectors live in one contiguous row-major buffer (`len × dim`), so a
//! k-NN scan touches memory sequentially; labels are category ids used by
//! the evaluation harness as its relevance oracle (paper §5: "any image in
//! the same category was considered a good match").

use crate::{Result, VecdbError};

/// Category identifier (index into the collection's category name table).
pub type CategoryId = u32;

/// Sentinel category for unlabelled ("noise") objects.
pub const NO_CATEGORY: CategoryId = u32::MAX;

/// An immutable collection of labelled feature vectors.
#[derive(Debug, Clone)]
pub struct Collection {
    dim: usize,
    data: Vec<f64>,
    labels: Vec<CategoryId>,
    category_names: Vec<String>,
    /// Member indices per registered category, precomputed at build time
    /// so `category_size`/`category_members` are O(1) (the evaluation
    /// harness calls them per query).
    members_by_category: Vec<Vec<usize>>,
}

impl Collection {
    /// Dimensionality of every vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Borrow vector `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow the contiguous row-major block of vectors
    /// `start..end` (`(end − start) × dim` values) — the unit the batched
    /// distance kernels consume ([`crate::Distance::eval_key_batch`]).
    #[inline]
    pub fn block(&self, start: usize, end: usize) -> &[f64] {
        &self.data[start * self.dim..end * self.dim]
    }

    /// Category of vector `i` ([`NO_CATEGORY`] when unlabelled).
    #[inline]
    pub fn label(&self, i: usize) -> CategoryId {
        self.labels[i]
    }

    /// Name of a category id.
    pub fn category_name(&self, c: CategoryId) -> Option<&str> {
        self.category_names.get(c as usize).map(|s| s.as_str())
    }

    /// All category names, indexed by id.
    pub fn category_names(&self) -> &[String] {
        &self.category_names
    }

    /// Number of distinct registered categories.
    pub fn category_count(&self) -> usize {
        self.category_names.len()
    }

    /// Number of members of a category (the evaluation's recall
    /// denominator). O(1): counts are precomputed at build time.
    /// Unregistered ids (including [`NO_CATEGORY`]) report 0.
    pub fn category_size(&self, c: CategoryId) -> usize {
        self.members_by_category.get(c as usize).map_or(0, Vec::len)
    }

    /// Indices of all members of a category, ascending. O(1): the member
    /// lists are precomputed at build time. Unregistered ids (including
    /// [`NO_CATEGORY`]) report an empty slice.
    pub fn category_members(&self, c: CategoryId) -> &[usize] {
        self.members_by_category
            .get(c as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Iterate `(index, vector, label)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64], CategoryId)> + '_ {
        (0..self.len()).map(move |i| (i, self.vector(i), self.labels[i]))
    }
}

/// Builder for [`Collection`].
#[derive(Debug, Default)]
pub struct CollectionBuilder {
    dim: Option<usize>,
    data: Vec<f64>,
    labels: Vec<CategoryId>,
    category_names: Vec<String>,
}

impl CollectionBuilder {
    /// Fresh builder; the dimensionality is fixed by the first vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a category name, returning its id. Registering the same
    /// name again returns the existing id.
    pub fn category(&mut self, name: &str) -> CategoryId {
        if let Some(pos) = self.category_names.iter().position(|n| n == name) {
            return pos as CategoryId;
        }
        self.category_names.push(name.to_string());
        (self.category_names.len() - 1) as CategoryId
    }

    /// Append a labelled vector.
    pub fn push(&mut self, vector: &[f64], label: CategoryId) -> Result<usize> {
        match self.dim {
            None => self.dim = Some(vector.len()),
            Some(d) if d != vector.len() => {
                return Err(VecdbError::DimMismatch {
                    expected: d,
                    got: vector.len(),
                })
            }
            _ => {}
        }
        if label != NO_CATEGORY && label as usize >= self.category_names.len() {
            return Err(VecdbError::BadParameters(format!(
                "label {label} not registered"
            )));
        }
        self.data.extend_from_slice(vector);
        self.labels.push(label);
        Ok(self.labels.len() - 1)
    }

    /// Append an unlabelled (noise) vector.
    pub fn push_unlabelled(&mut self, vector: &[f64]) -> Result<usize> {
        self.push(vector, NO_CATEGORY)
    }

    /// Finish building.
    pub fn build(self) -> Collection {
        let mut members_by_category = vec![Vec::new(); self.category_names.len()];
        for (i, &label) in self.labels.iter().enumerate() {
            if label != NO_CATEGORY {
                members_by_category[label as usize].push(i);
            }
        }
        Collection {
            dim: self.dim.unwrap_or(0),
            data: self.data,
            labels: self.labels,
            category_names: self.category_names,
            members_by_category,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut b = CollectionBuilder::new();
        let birds = b.category("Bird");
        let fish = b.category("Fish");
        assert_eq!(b.category("Bird"), birds, "re-registration is idempotent");
        b.push(&[1.0, 2.0], birds).unwrap();
        b.push(&[3.0, 4.0], fish).unwrap();
        b.push_unlabelled(&[5.0, 6.0]).unwrap();
        let c = b.build();
        assert_eq!(c.len(), 3);
        assert_eq!(c.dim(), 2);
        assert_eq!(c.vector(1), &[3.0, 4.0]);
        assert_eq!(c.label(0), birds);
        assert_eq!(c.label(2), NO_CATEGORY);
        assert_eq!(c.category_name(fish), Some("Fish"));
        assert_eq!(c.category_name(99), None);
        assert_eq!(c.category_count(), 2);
    }

    #[test]
    fn category_sizes_and_members() {
        let mut b = CollectionBuilder::new();
        let cat = b.category("X");
        b.push(&[0.0], cat).unwrap();
        b.push_unlabelled(&[1.0]).unwrap();
        b.push(&[2.0], cat).unwrap();
        let c = b.build();
        assert_eq!(c.category_size(cat), 2);
        assert_eq!(c.category_members(cat), vec![0, 2]);
        assert_eq!(c.category_size(7), 0);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[1.0, 2.0]).unwrap();
        assert!(matches!(
            b.push_unlabelled(&[1.0]),
            Err(VecdbError::DimMismatch { .. })
        ));
    }

    #[test]
    fn unregistered_label_rejected() {
        let mut b = CollectionBuilder::new();
        assert!(b.push(&[1.0], 0).is_err());
    }

    #[test]
    fn empty_collection() {
        let c = CollectionBuilder::new().build();
        assert!(c.is_empty());
        assert_eq!(c.dim(), 0);
        assert_eq!(c.iter().count(), 0);
    }
}
