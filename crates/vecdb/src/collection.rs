//! Flat storage of labelled feature vectors.
//!
//! Vectors live in one contiguous row-major buffer (`len × dim`), so a
//! k-NN scan touches memory sequentially; labels are category ids used by
//! the evaluation harness as its relevance oracle (paper §5: "any image in
//! the same category was considered a good match").
//!
//! # Precision model: optional f32 mirror
//!
//! The authoritative store is always f64 — every key pushed into a
//! k-best and every distance returned to a caller comes from the f64
//! buffer. A collection may additionally carry an **f32 mirror**
//! ([`Collection::ensure_f32_mirror`], or
//! [`CollectionBuilder::with_f32_mirror`]): the same vectors, same
//! row-major block layout, rounded once to f32. Scans configured with
//! `Precision::F32Rescore` stream the mirror (half the bytes of the f64
//! buffer — the scans are bandwidth-bound at low query counts) as a
//! phase-1 filter, then rescore the surviving candidates from the f64
//! buffer, so results stay identical to a pure f64 scan. The mirror also
//! records the largest component magnitude ([`Collection::max_abs`]),
//! which the scan feeds into each distance class's rounding bound
//! (`Distance::f32_key_slack`).

use crate::{Result, VecdbError};

/// Category identifier (index into the collection's category name table).
pub type CategoryId = u32;

/// Sentinel category for unlabelled ("noise") objects.
pub const NO_CATEGORY: CategoryId = u32::MAX;

/// An immutable collection of labelled feature vectors.
#[derive(Debug, Clone)]
pub struct Collection {
    dim: usize,
    data: Vec<f64>,
    labels: Vec<CategoryId>,
    category_names: Vec<String>,
    /// Member indices per registered category, precomputed at build time
    /// so `category_size`/`category_members` are O(1) (the evaluation
    /// harness calls them per query).
    members_by_category: Vec<Vec<usize>>,
    /// Optional f32 mirror of `data` (same layout) plus the largest
    /// component magnitude of the f64 data, for the f32-rescore scans.
    mirror: Option<MirrorF32>,
}

/// The f32 mirror: half-width copy of the vector buffer plus the
/// magnitude bound its rounding analysis needs.
#[derive(Debug, Clone)]
struct MirrorF32 {
    data: Vec<f32>,
    max_abs: f64,
}

impl MirrorF32 {
    fn build(data: &[f64]) -> Self {
        MirrorF32 {
            data: data.iter().map(|&v| v as f32).collect(),
            max_abs: data.iter().fold(0.0f64, |m, &v| m.max(v.abs())),
        }
    }
}

impl Collection {
    /// Dimensionality of every vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Borrow vector `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow the contiguous row-major block of vectors
    /// `start..end` (`(end − start) × dim` values) — the unit the batched
    /// distance kernels consume ([`crate::Distance::eval_key_batch`]).
    #[inline]
    pub fn block(&self, start: usize, end: usize) -> &[f64] {
        &self.data[start * self.dim..end * self.dim]
    }

    /// Category of vector `i` ([`NO_CATEGORY`] when unlabelled).
    #[inline]
    pub fn label(&self, i: usize) -> CategoryId {
        self.labels[i]
    }

    /// Name of a category id.
    pub fn category_name(&self, c: CategoryId) -> Option<&str> {
        self.category_names.get(c as usize).map(|s| s.as_str())
    }

    /// All category names, indexed by id.
    pub fn category_names(&self) -> &[String] {
        &self.category_names
    }

    /// Number of distinct registered categories.
    pub fn category_count(&self) -> usize {
        self.category_names.len()
    }

    /// Number of members of a category (the evaluation's recall
    /// denominator). O(1): counts are precomputed at build time.
    /// Unregistered ids (including [`NO_CATEGORY`]) report 0.
    pub fn category_size(&self, c: CategoryId) -> usize {
        self.members_by_category.get(c as usize).map_or(0, Vec::len)
    }

    /// Indices of all members of a category, ascending. O(1): the member
    /// lists are precomputed at build time. Unregistered ids (including
    /// [`NO_CATEGORY`]) report an empty slice.
    pub fn category_members(&self, c: CategoryId) -> &[usize] {
        self.members_by_category
            .get(c as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Iterate `(index, vector, label)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64], CategoryId)> + '_ {
        (0..self.len()).map(move |i| (i, self.vector(i), self.labels[i]))
    }

    /// Build the f32 mirror if it is not already present (one rounding
    /// pass over the data; idempotent). Scans with `Precision::F32Rescore`
    /// use the mirror when present and silently run in pure f64 when not,
    /// so enabling it is always safe.
    pub fn ensure_f32_mirror(&mut self) {
        if self.mirror.is_none() {
            self.mirror = Some(MirrorF32::build(&self.data));
        }
    }

    /// Drop the f32 mirror (frees `len × dim × 4` bytes; scans fall back
    /// to pure f64).
    pub fn drop_f32_mirror(&mut self) {
        self.mirror = None;
    }

    /// True when the f32 mirror is present.
    pub fn has_f32_mirror(&self) -> bool {
        self.mirror.is_some()
    }

    /// Borrow the f32 mirror's contiguous row-major block of vectors
    /// `start..end` — the phase-1 unit of the f32-rescore scan
    /// ([`crate::Distance::eval_key_batch_f32`]). `None` when no mirror
    /// has been built.
    #[inline]
    pub fn block_f32(&self, start: usize, end: usize) -> Option<&[f32]> {
        self.mirror
            .as_ref()
            .map(|m| &m.data[start * self.dim..end * self.dim])
    }

    /// Largest `|component|` over the stored f64 vectors (recorded when
    /// the mirror is built; `None` without a mirror). Scans take the max
    /// of this and the query's own magnitude as the `max_abs` argument of
    /// [`crate::Distance::f32_key_slack`].
    pub fn max_abs(&self) -> Option<f64> {
        self.mirror.as_ref().map(|m| m.max_abs)
    }

    /// Heap bytes of the vector payloads: the f64 buffer plus the f32
    /// mirror (when present). This is the number the scan-bandwidth math
    /// in the benches divides by — labels, category tables and container
    /// overheads are excluded deliberately (the scans never touch them).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>() + self.mirror_bytes()
    }

    /// Heap bytes of the f32 mirror alone (0 without a mirror).
    pub fn mirror_bytes(&self) -> usize {
        self.mirror
            .as_ref()
            .map_or(0, |m| m.data.len() * std::mem::size_of::<f32>())
    }
}

impl Collection {
    /// Copy rows `start..end` out into a standalone [`Collection`]: same
    /// dim, same category-name table, labels preserved, member lists
    /// rebuilt against the **local** row numbering, and the f32 mirror
    /// re-derived from the sliced rows when the source carries one
    /// (f64→f32 rounding is deterministic per value, so the slice's
    /// mirror bits equal the corresponding source-mirror bits; its
    /// `max_abs` is recomputed over the slice alone, which can only
    /// tighten the rounding bound the f32-rescore scans derive from it).
    /// This is the shard-construction primitive of
    /// [`ShardedCollection::split`].
    pub fn slice_rows(&self, start: usize, end: usize) -> Collection {
        assert!(start <= end && end <= self.len(), "row range out of bounds");
        let data = self.data[start * self.dim..end * self.dim].to_vec();
        let labels = self.labels[start..end].to_vec();
        let mut members_by_category = vec![Vec::new(); self.category_names.len()];
        for (i, &label) in labels.iter().enumerate() {
            if label != NO_CATEGORY {
                members_by_category[label as usize].push(i);
            }
        }
        let mirror = self.mirror.is_some().then(|| MirrorF32::build(&data));
        Collection {
            dim: self.dim,
            data,
            labels,
            category_names: self.category_names.clone(),
            members_by_category,
            mirror,
        }
    }
}

/// A [`Collection`] partitioned into `S` contiguous row shards.
///
/// Shard `i` owns the global rows `offset(i)..offset(i + 1)` as its own
/// standalone `Collection` — its own contiguous f64 buffer and (when the
/// source collection carried one) its own f32 mirror — so `S` scan
/// passes can stream `S` disjoint buffers from `S` cores at once. The
/// scatter/gather scan ([`ShardedScan`](crate::knn::ShardedScan)) runs
/// every query against every shard and merges the per-shard k-bests in
/// key space with the deterministic `(key, index)` order, which pins the
/// merged answer bit-identical to the unsharded scan: per-row keys do
/// not depend on where block or shard boundaries fall, and selection
/// happens in the same key space either way.
///
/// Row splits are balanced (`shard i = rows ⌊i·len/S⌋..⌊(i+1)·len/S⌋`),
/// so `S > len` simply leaves the tail shards empty — a legal,
/// zero-work degenerate every consumer must tolerate.
#[derive(Debug, Clone)]
pub struct ShardedCollection {
    shards: Vec<Collection>,
    /// Global start row per shard plus the total length (`S + 1`
    /// entries, ascending): shard `i` covers `offsets[i]..offsets[i+1]`.
    offsets: Vec<usize>,
    dim: usize,
}

impl ShardedCollection {
    /// Partition `coll` into `shard_count` contiguous row shards
    /// (`shard_count` is clamped to at least 1). Each shard copies its
    /// rows once; the source collection is left untouched.
    pub fn split(coll: &Collection, shard_count: usize) -> Self {
        let s = shard_count.max(1);
        let len = coll.len();
        let mut shards = Vec::with_capacity(s);
        let mut offsets = Vec::with_capacity(s + 1);
        for i in 0..s {
            let start = i * len / s;
            let end = (i + 1) * len / s;
            offsets.push(start);
            shards.push(coll.slice_rows(start, end));
        }
        offsets.push(len);
        ShardedCollection {
            shards,
            offsets,
            dim: coll.dim(),
        }
    }

    /// Number of shards (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i`'s collection.
    pub fn shard(&self, i: usize) -> &Collection {
        &self.shards[i]
    }

    /// All shards in global row order.
    pub fn shards(&self) -> &[Collection] {
        &self.shards
    }

    /// Global row index of shard `i`'s first row (shard `i` covers
    /// `offset(i)..offset(i + 1)`; `offset(shard_count())` is the total
    /// length). A shard-local result index plus this offset is the
    /// global index the unsharded scan would report.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total number of vectors across all shards.
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of every vector (coherent across shards).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when every shard carries its f32 mirror (the precondition
    /// for a fully mirrored `F32Rescore` pass; shards without a mirror
    /// degrade to the f64 path individually, results identical).
    pub fn has_f32_mirror(&self) -> bool {
        self.shards.iter().all(Collection::has_f32_mirror)
    }

    /// Build every shard's f32 mirror (idempotent per shard).
    pub fn ensure_f32_mirror(&mut self) {
        for shard in &mut self.shards {
            shard.ensure_f32_mirror();
        }
    }

    /// Heap bytes of all shards' vector payloads (f64 buffers plus f32
    /// mirrors), same accounting as [`Collection::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(Collection::memory_bytes).sum()
    }
}

/// Builder for [`Collection`].
#[derive(Debug, Default)]
pub struct CollectionBuilder {
    dim: Option<usize>,
    data: Vec<f64>,
    labels: Vec<CategoryId>,
    category_names: Vec<String>,
    build_mirror: bool,
}

impl CollectionBuilder {
    /// Fresh builder; the dimensionality is fixed by the first vector
    /// (or up front via [`Self::with_dim`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the dimensionality before any vector is pushed. An empty
    /// build then carries this `dim` instead of silently reporting 0 —
    /// callers that defer their first `push` (streaming ingest, staged
    /// loads) get a coherent collection/mirror either way. Pushes are
    /// validated against it exactly like against an inferred dim.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }

    /// Build the f32 mirror as part of [`Self::build`] (equivalent to
    /// calling [`Collection::ensure_f32_mirror`] afterwards).
    pub fn with_f32_mirror(mut self) -> Self {
        self.build_mirror = true;
        self
    }

    /// Register a category name, returning its id. Registering the same
    /// name again returns the existing id.
    pub fn category(&mut self, name: &str) -> CategoryId {
        if let Some(pos) = self.category_names.iter().position(|n| n == name) {
            return pos as CategoryId;
        }
        self.category_names.push(name.to_string());
        (self.category_names.len() - 1) as CategoryId
    }

    /// Append a labelled vector.
    pub fn push(&mut self, vector: &[f64], label: CategoryId) -> Result<usize> {
        match self.dim {
            None => self.dim = Some(vector.len()),
            Some(d) if d != vector.len() => {
                return Err(VecdbError::DimMismatch {
                    expected: d,
                    got: vector.len(),
                })
            }
            _ => {}
        }
        if label != NO_CATEGORY && label as usize >= self.category_names.len() {
            return Err(VecdbError::BadParameters(format!(
                "label {label} not registered"
            )));
        }
        self.data.extend_from_slice(vector);
        self.labels.push(label);
        Ok(self.labels.len() - 1)
    }

    /// Append an unlabelled (noise) vector.
    pub fn push_unlabelled(&mut self, vector: &[f64]) -> Result<usize> {
        self.push(vector, NO_CATEGORY)
    }

    /// Finish building.
    ///
    /// The dimensionality is whatever was fixed first — [`Self::with_dim`]
    /// or the first push — and is asserted coherent with the stored data
    /// (`data.len() == len × dim`), so an empty collection built after
    /// `with_dim(d)` reports `dim() == d` rather than a silent 0, and the
    /// mirror is built against the same dim.
    pub fn build(self) -> Collection {
        let dim = self.dim.unwrap_or(0);
        assert_eq!(
            self.data.len(),
            self.labels.len() * dim,
            "vector buffer incoherent with len × dim"
        );
        let mut members_by_category = vec![Vec::new(); self.category_names.len()];
        for (i, &label) in self.labels.iter().enumerate() {
            if label != NO_CATEGORY {
                members_by_category[label as usize].push(i);
            }
        }
        let mirror = self.build_mirror.then(|| MirrorF32::build(&self.data));
        Collection {
            dim,
            data: self.data,
            labels: self.labels,
            category_names: self.category_names,
            members_by_category,
            mirror,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut b = CollectionBuilder::new();
        let birds = b.category("Bird");
        let fish = b.category("Fish");
        assert_eq!(b.category("Bird"), birds, "re-registration is idempotent");
        b.push(&[1.0, 2.0], birds).unwrap();
        b.push(&[3.0, 4.0], fish).unwrap();
        b.push_unlabelled(&[5.0, 6.0]).unwrap();
        let c = b.build();
        assert_eq!(c.len(), 3);
        assert_eq!(c.dim(), 2);
        assert_eq!(c.vector(1), &[3.0, 4.0]);
        assert_eq!(c.label(0), birds);
        assert_eq!(c.label(2), NO_CATEGORY);
        assert_eq!(c.category_name(fish), Some("Fish"));
        assert_eq!(c.category_name(99), None);
        assert_eq!(c.category_count(), 2);
    }

    #[test]
    fn category_sizes_and_members() {
        let mut b = CollectionBuilder::new();
        let cat = b.category("X");
        b.push(&[0.0], cat).unwrap();
        b.push_unlabelled(&[1.0]).unwrap();
        b.push(&[2.0], cat).unwrap();
        let c = b.build();
        assert_eq!(c.category_size(cat), 2);
        assert_eq!(c.category_members(cat), vec![0, 2]);
        assert_eq!(c.category_size(7), 0);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[1.0, 2.0]).unwrap();
        assert!(matches!(
            b.push_unlabelled(&[1.0]),
            Err(VecdbError::DimMismatch { .. })
        ));
    }

    #[test]
    fn unregistered_label_rejected() {
        let mut b = CollectionBuilder::new();
        assert!(b.push(&[1.0], 0).is_err());
    }

    #[test]
    fn empty_collection() {
        let c = CollectionBuilder::new().build();
        assert!(c.is_empty());
        assert_eq!(c.dim(), 0);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn preset_dim_survives_empty_build_and_validates_pushes() {
        // The deferred-first-push case: dim is coherent without any data.
        let c = CollectionBuilder::new().with_dim(7).build();
        assert!(c.is_empty());
        assert_eq!(c.dim(), 7);
        // Pushes are checked against the preset dim like an inferred one.
        let mut b = CollectionBuilder::new().with_dim(2);
        assert!(matches!(
            b.push_unlabelled(&[1.0, 2.0, 3.0]),
            Err(VecdbError::DimMismatch {
                expected: 2,
                got: 3
            })
        ));
        b.push_unlabelled(&[1.0, 2.0]).unwrap();
        assert_eq!(b.build().dim(), 2);
    }

    #[test]
    fn mirror_rounds_data_and_reports_max_abs() {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[0.1, -3.5]).unwrap();
        b.push_unlabelled(&[2.0, 0.25]).unwrap();
        let mut c = b.build();
        assert!(!c.has_f32_mirror());
        assert_eq!(c.block_f32(0, 2), None);
        assert_eq!(c.max_abs(), None);
        assert_eq!(c.mirror_bytes(), 0);
        c.ensure_f32_mirror();
        assert!(c.has_f32_mirror());
        assert_eq!(c.max_abs(), Some(3.5));
        assert_eq!(c.block_f32(0, 2).unwrap(), &[0.1f32, -3.5, 2.0, 0.25][..]);
        assert_eq!(c.block_f32(1, 2).unwrap(), &[2.0f32, 0.25][..]);
        // Idempotent.
        c.ensure_f32_mirror();
        assert_eq!(c.mirror_bytes(), 4 * 4);
        c.drop_f32_mirror();
        assert!(!c.has_f32_mirror());
    }

    #[test]
    fn builder_mirror_matches_ensure() {
        let mut b = CollectionBuilder::new().with_f32_mirror();
        b.push_unlabelled(&[1.0, 2.0]).unwrap();
        let c = b.build();
        assert!(c.has_f32_mirror());
        assert_eq!(c.max_abs(), Some(2.0));
        // Empty build with a preset dim still gets a coherent (empty)
        // mirror instead of a dim-0 mismatch.
        let c = CollectionBuilder::new()
            .with_dim(3)
            .with_f32_mirror()
            .build();
        assert!(c.has_f32_mirror());
        assert_eq!(c.dim(), 3);
        assert_eq!(c.block_f32(0, 0).unwrap(), &[] as &[f32]);
    }

    #[test]
    fn slice_rows_preserves_rows_labels_and_mirror() {
        let mut b = CollectionBuilder::new().with_f32_mirror();
        let cat = b.category("X");
        for i in 0..10 {
            if i % 3 == 0 {
                b.push(&[i as f64, -(i as f64)], cat).unwrap();
            } else {
                b.push_unlabelled(&[i as f64, -(i as f64)]).unwrap();
            }
        }
        let c = b.build();
        let s = c.slice_rows(3, 7);
        assert_eq!(s.len(), 4);
        assert_eq!(s.dim(), 2);
        for i in 0..4 {
            assert_eq!(s.vector(i), c.vector(3 + i));
            assert_eq!(s.label(i), c.label(3 + i));
        }
        // Member lists are local: global rows 3 and 6 → local 0 and 3.
        assert_eq!(s.category_members(cat), &[0, 3]);
        // The mirror is carried over bit-for-bit (deterministic rounding)
        // with a slice-local max_abs.
        assert!(s.has_f32_mirror());
        assert_eq!(s.block_f32(0, 4).unwrap(), c.block_f32(3, 7).unwrap());
        assert_eq!(s.max_abs(), Some(6.0));
        // No-mirror sources slice without one.
        let mut plain = CollectionBuilder::new();
        plain.push_unlabelled(&[1.0]).unwrap();
        assert!(!plain.build().slice_rows(0, 1).has_f32_mirror());
        // Empty slices are legal.
        assert_eq!(c.slice_rows(5, 5).len(), 0);
    }

    #[test]
    fn sharded_split_covers_rows_contiguously() {
        let mut b = CollectionBuilder::new();
        for i in 0..10 {
            b.push_unlabelled(&[i as f64]).unwrap();
        }
        let c = b.build();
        for s in [1, 2, 3, 7, 10, 25] {
            let sc = ShardedCollection::split(&c, s);
            assert_eq!(sc.shard_count(), s);
            assert_eq!(sc.len(), 10);
            assert_eq!(sc.dim(), 1);
            assert!(!sc.is_empty());
            // Offsets tile the row space; every global row round-trips.
            for i in 0..s {
                let (lo, hi) = (sc.offset(i), sc.offset(i + 1));
                assert_eq!(sc.shard(i).len(), hi - lo, "shards={s} shard {i}");
                for local in 0..(hi - lo) {
                    assert_eq!(sc.shard(i).vector(local), c.vector(lo + local));
                }
            }
            assert_eq!(sc.offset(s), 10);
            // S > len leaves (only) tail shards empty.
            if s > 10 {
                assert!(sc.shards().iter().any(Collection::is_empty));
            }
        }
        // Degenerate: 0 clamps to 1 shard.
        assert_eq!(ShardedCollection::split(&c, 0).shard_count(), 1);
    }

    #[test]
    fn sharded_mirror_and_memory_accounting() {
        let mut b = CollectionBuilder::new();
        for i in 0..6 {
            b.push_unlabelled(&[i as f64, 0.5]).unwrap();
        }
        let c = b.build();
        let mut sc = ShardedCollection::split(&c, 4);
        assert!(!sc.has_f32_mirror());
        assert_eq!(sc.memory_bytes(), c.memory_bytes());
        sc.ensure_f32_mirror();
        assert!(sc.has_f32_mirror());
        assert_eq!(sc.memory_bytes(), 6 * 2 * 8 + 6 * 2 * 4);
        // Splitting a mirrored source mirrors every shard up front.
        let mut mc = c.clone();
        mc.ensure_f32_mirror();
        assert!(ShardedCollection::split(&mc, 3).has_f32_mirror());
        // An empty collection still splits into S (empty) shards.
        let empty = ShardedCollection::split(&CollectionBuilder::new().build(), 3);
        assert_eq!(empty.shard_count(), 3);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn memory_bytes_accounts_data_and_mirror() {
        let mut b = CollectionBuilder::new();
        for i in 0..10 {
            b.push_unlabelled(&[i as f64; 4]).unwrap();
        }
        let mut c = b.build();
        assert_eq!(c.memory_bytes(), 10 * 4 * 8);
        c.ensure_f32_mirror();
        assert_eq!(c.mirror_bytes(), 10 * 4 * 4);
        assert_eq!(c.memory_bytes(), 10 * 4 * 8 + 10 * 4 * 4);
    }
}
