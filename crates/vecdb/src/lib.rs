//! # fbp-vecdb
//!
//! Vector-space similarity database substrate (paper §2).
//!
//! FeedbackBypass sits on top of a retrieval system that represents
//! multimedia objects as points in `R^D` and answers k-nearest-neighbor
//! queries under a parameterized class of distance functions. This crate
//! is that system:
//!
//! * [`collection`] — flat, cache-friendly storage of feature vectors with
//!   category labels (the evaluation needs the labels as its relevance
//!   oracle);
//! * [`distance`] — the distance-function classes the paper discusses:
//!   `Lp` norms, **weighted Euclidean** (Equation 1, the class used in the
//!   paper's experiments), **Mahalanobis / quadratic forms**, and the
//!   **Rui-Huang hierarchical** model;
//! * [`knn`] — three interchangeable k-NN engines: exhaustive
//!   [`knn::LinearScan`], a [`knn::VpTree`], and an [`knn::MTree`] (the
//!   paper cites the M-tree \[CPZ97\] as its access method). The metric
//!   trees are built once under the *default* metric and can still answer
//!   queries under any *re-weighted* metric exactly, via distortion
//!   bounds (`d_W ≥ √w_min · d_2` pruning). For concurrent feedback
//!   sessions, [`knn::MultiQueryScan`] answers Q queries per blocked
//!   collection pass (shared or per-query metrics, per-query `k`),
//!   amortizing memory traffic across the batch with results
//!   bit-identical to Q independent scans. Both scan engines accept
//!   [`knn::Precision::F32Rescore`]: phase 1 filters candidates over
//!   the collection's optional f32 mirror at half the bandwidth, phase
//!   2 rescores them in f64 — queries, keys and returned distances stay
//!   f64 and the answers are identical to the pure-f64 scan. To scale
//!   past one core's streaming bandwidth, a
//!   [`collection::ShardedCollection`] partitions the rows into
//!   contiguous shards and [`knn::ShardedScan`] runs scatter/gather
//!   passes over them, merging per-shard k-bests in key space — still
//!   bit-identical to the flat scan (see `ARCHITECTURE.md` at the
//!   repository root for the full invariant);
//! * [`result`] — ranked result lists and the stable-comparison helper the
//!   feedback loop uses as its convergence test.

#![warn(missing_docs)]

pub mod collection;
pub mod distance;
pub mod knn;
pub mod result;

pub use collection::{
    CategoryId, Collection, CollectionBuilder, PartitionConfig, PartitionedCollection,
    ShardedCollection,
};
pub use distance::{
    Distance, Euclidean, HierarchicalDistance, Lp, Manhattan, QuadraticDistance, WeightedEuclidean,
};
pub use knn::{
    combine_partials, merge_partials, merge_partials_policy, DegradedGather, FailurePolicy,
    GatherError, KnnEngine, LinearScan, MTree, MultiQueryScan, Neighbor, PartitionedScan,
    Precision, ScanMode, ScanStats, ScanStatsSink, ShardPartial, ShardedScan, VpTree,
};
pub use result::ResultList;

/// Errors from the vector database.
#[derive(Debug, Clone, PartialEq)]
pub enum VecdbError {
    /// Vector dimensionality doesn't match the collection/distance.
    DimMismatch {
        /// Dimensionality the collection/distance expected.
        expected: usize,
        /// Dimensionality actually supplied.
        got: usize,
    },
    /// Invalid distance parameterization (non-positive weights, non-SPD
    /// matrix, bad feature partition...).
    BadParameters(String),
    /// Operation requires a non-empty collection.
    EmptyCollection,
}

impl std::fmt::Display for VecdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VecdbError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            VecdbError::BadParameters(msg) => write!(f, "bad parameters: {msg}"),
            VecdbError::EmptyCollection => write!(f, "operation on empty collection"),
        }
    }
}

impl std::error::Error for VecdbError {}

/// Result alias for vecdb operations.
pub type Result<T> = std::result::Result<T, VecdbError>;
