//! Ranked result lists.
//!
//! The feedback loop's termination test (paper §5: iterate "until no
//! changes are observed anymore in the result list") needs a stable
//! equality notion for ranked results; the evaluation harness needs set
//! operations against category oracles.

use crate::knn::Neighbor;

/// A ranked list of query results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultList {
    neighbors: Vec<Neighbor>,
}

impl ResultList {
    /// Wrap a sorted neighbor list (as produced by the k-NN engines).
    pub fn new(neighbors: Vec<Neighbor>) -> Self {
        debug_assert!(
            neighbors.windows(2).all(|w| w[0].dist <= w[1].dist),
            "ResultList expects ascending distances"
        );
        ResultList { neighbors }
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The ranked neighbors.
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.neighbors
    }

    /// Collection indices in rank order.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.neighbors.iter().map(|n| n.index)
    }

    /// Rank of an object (0-based), if present.
    pub fn rank_of(&self, index: u32) -> Option<usize> {
        self.neighbors.iter().position(|n| n.index == index)
    }

    /// Containment test.
    pub fn contains(&self, index: u32) -> bool {
        self.rank_of(index).is_some()
    }

    /// Same *objects in the same order* — the loop-convergence test.
    /// Distances are ignored: re-weighting rescales them even when the
    /// ranking is stable.
    pub fn same_ranking(&self, other: &ResultList) -> bool {
        self.len() == other.len() && self.ids().eq(other.ids())
    }

    /// Same *set* of objects, order ignored.
    pub fn same_set(&self, other: &ResultList) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a: Vec<u32> = self.ids().collect();
        let mut b: Vec<u32> = other.ids().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// Truncate to the first `k` results.
    pub fn top_k(&self, k: usize) -> ResultList {
        ResultList {
            neighbors: self.neighbors.iter().take(k).cloned().collect(),
        }
    }

    /// Count results satisfying a relevance predicate (precision
    /// numerator).
    pub fn count_relevant(&self, mut is_relevant: impl FnMut(u32) -> bool) -> usize {
        self.neighbors
            .iter()
            .filter(|n| is_relevant(n.index))
            .count()
    }
}

impl From<Vec<Neighbor>> for ResultList {
    fn from(neighbors: Vec<Neighbor>) -> Self {
        ResultList::new(neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl(ids: &[u32]) -> ResultList {
        ResultList::new(
            ids.iter()
                .enumerate()
                .map(|(i, &index)| Neighbor {
                    index,
                    dist: i as f64,
                })
                .collect(),
        )
    }

    #[test]
    fn basic_accessors() {
        let r = rl(&[5, 3, 9]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.ids().collect::<Vec<_>>(), vec![5, 3, 9]);
        assert_eq!(r.rank_of(3), Some(1));
        assert_eq!(r.rank_of(42), None);
        assert!(r.contains(9));
    }

    #[test]
    fn ranking_vs_set_equality() {
        let a = rl(&[1, 2, 3]);
        let b = rl(&[1, 2, 3]);
        let c = rl(&[3, 2, 1]);
        let d = rl(&[1, 2]);
        assert!(a.same_ranking(&b));
        assert!(!a.same_ranking(&c));
        assert!(a.same_set(&c));
        assert!(!a.same_set(&d));
    }

    #[test]
    fn ranking_ignores_distances() {
        let mut x = rl(&[1, 2]);
        let y = ResultList::new(vec![
            Neighbor {
                index: 1,
                dist: 10.0,
            },
            Neighbor {
                index: 2,
                dist: 20.0,
            },
        ]);
        assert!(x.same_ranking(&y));
        x = rl(&[2, 1]);
        assert!(!x.same_ranking(&y));
    }

    #[test]
    fn top_k_and_relevance() {
        let r = rl(&[1, 2, 3, 4, 5]);
        let t = r.top_k(2);
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(r.top_k(99).len(), 5);
        let evens = r.count_relevant(|id| id % 2 == 0);
        assert_eq!(evens, 2);
    }
}
