//! Property-based tests for simplex geometry.
//!
//! The central invariant chain the Simplex Tree depends on:
//! direct coordinates reconstruct the point; incremental child coordinates
//! agree with direct coordinates; a split's children tile the parent.

use fbp_geometry::{barycentric, simplex, split, RootSimplex};
use proptest::prelude::*;

/// Strategy: barycentric weights strictly inside a (d+1)-simplex.
fn interior_weights(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05..1.0f64, d + 1).prop_map(|raw| {
        let s: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / s).collect()
    })
}

/// Strategy: a well-spread random d-simplex (unit corner simplex jittered).
fn random_simplex(d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(-0.15..0.15f64, (d + 1) * d).prop_map(move |jit| {
        let mut verts = Vec::with_capacity(d + 1);
        // Base: scaled corner simplex, then jitter each coordinate a little;
        // the jitter is too small to make the simplex degenerate.
        verts.push(vec![0.0; d]);
        for i in 0..d {
            let mut v = vec![0.0; d];
            v[i] = 2.0;
            verts.push(v);
        }
        for (vi, v) in verts.iter_mut().enumerate() {
            for (ci, c) in v.iter_mut().enumerate() {
                *c += jit[vi * d + ci];
            }
        }
        verts
    })
}

fn weighted_point(verts: &[Vec<f64>], w: &[f64]) -> Vec<f64> {
    let d = verts[0].len();
    let mut p = vec![0.0; d];
    for (v, &wi) in verts.iter().zip(w.iter()) {
        for i in 0..d {
            p[i] += wi * v[i];
        }
    }
    p
}

proptest! {
    #[test]
    fn direct_reconstructs_point(
        verts in random_simplex(4),
        w in interior_weights(4),
    ) {
        let q = weighted_point(&verts, &w);
        let refs: Vec<&[f64]> = verts.iter().map(|v| v.as_slice()).collect();
        let lambda = barycentric::direct(&refs, &q).unwrap();
        prop_assert!((lambda.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let rec = weighted_point(&verts, &lambda);
        for i in 0..4 {
            prop_assert!((rec[i] - q[i]).abs() < 1e-8);
        }
        // Coordinates recover the generating weights (uniqueness).
        for i in 0..5 {
            prop_assert!((lambda[i] - w[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn incremental_matches_direct_for_all_children(
        verts in random_simplex(3),
        wp in interior_weights(3),
        wq in interior_weights(3),
    ) {
        let refs: Vec<&[f64]> = verts.iter().map(|v| v.as_slice()).collect();
        let p = weighted_point(&verts, &wp);
        let q = weighted_point(&verts, &wq);
        let mu = barycentric::direct(&refs, &p).unwrap();
        let lambda = barycentric::direct(&refs, &q).unwrap();
        for h in 0..4 {
            let fast = barycentric::child_coords(&lambda, &mu, h);
            let mut child: Vec<&[f64]> = refs.clone();
            child[h] = &p;
            let slow = barycentric::direct(&child, &q).unwrap();
            for i in 0..4 {
                prop_assert!((fast[i] - slow[i]).abs() < 1e-6,
                    "h={h} i={i}: {fast:?} vs {slow:?}");
            }
        }
    }

    #[test]
    fn exactly_one_child_claims_an_interior_point(
        verts in random_simplex(3),
        wp in interior_weights(3),
        wq in interior_weights(3),
    ) {
        let refs: Vec<&[f64]> = verts.iter().map(|v| v.as_slice()).collect();
        let p = weighted_point(&verts, &wp);
        let q = weighted_point(&verts, &wq);
        let mu = barycentric::direct(&refs, &p).unwrap();
        let lambda = barycentric::direct(&refs, &q).unwrap();
        // Count children whose min barycentric coordinate is clearly
        // positive; at most one can claim q strictly.
        let strictly_inside = (0..4)
            .filter(|&h| barycentric::child_min_coord(&lambda, &mu, h) > 1e-9)
            .count();
        prop_assert!(strictly_inside <= 1);
        // And with boundary tolerance, at least one claims it.
        let with_boundary = (0..4)
            .filter(|&h| barycentric::child_min_coord(&lambda, &mu, h) >= -1e-9)
            .count();
        prop_assert!(with_boundary >= 1);
    }

    #[test]
    fn split_children_tile_parent_volume(
        verts in random_simplex(3),
        wp in interior_weights(3),
    ) {
        let refs: Vec<&[f64]> = verts.iter().map(|v| v.as_slice()).collect();
        let p = weighted_point(&verts, &wp);
        let mu = barycentric::direct(&refs, &p).unwrap();
        let outcome = split::split_children(&mu, 1e-9);
        let split::SplitOutcome::Split(hs) = outcome else {
            // Interior weights ≥ 0.05 ⇒ never snaps to a vertex.
            return Err(TestCaseError::fail("unexpected AtVertex"));
        };
        prop_assert_eq!(hs.len(), 4);
        let parent = simplex::volume(&refs);
        let mut sum = 0.0;
        for &h in &hs {
            let mut child: Vec<&[f64]> = refs.clone();
            child[h] = &p;
            sum += simplex::volume(&child);
        }
        prop_assert!((sum - parent).abs() < 1e-9 * parent.max(1.0));
    }

    #[test]
    fn affine_interpolation_is_exact(
        verts in random_simplex(3),
        wq in interior_weights(3),
        coef in prop::collection::vec(-2.0..2.0f64, 4),
    ) {
        // f(x) = coef·x + coef[3] is affine ⇒ interpolation must be exact.
        let f = |x: &[f64]| coef[0] * x[0] + coef[1] * x[1] + coef[2] * x[2] + coef[3];
        let refs: Vec<&[f64]> = verts.iter().map(|v| v.as_slice()).collect();
        let q = weighted_point(&verts, &wq);
        let lambda = barycentric::direct(&refs, &q).unwrap();
        let vals: Vec<Vec<f64>> = verts.iter().map(|v| vec![f(v)]).collect();
        let val_refs: Vec<&[f64]> = vals.iter().map(|v| v.as_slice()).collect();
        let mut out = [0.0];
        barycentric::interpolate(&val_refs, &lambda, &mut out);
        prop_assert!((out[0] - f(&q)).abs() < 1e-7);
    }

    #[test]
    fn corner_root_contains_unit_cube_samples(
        q in prop::collection::vec(0.0..1.0f64, 6),
    ) {
        let root = RootSimplex::unit_cube(6);
        prop_assert!(root.contains(&q, 1e-9).unwrap());
        let lambda = root.coords(&q).unwrap();
        prop_assert!((lambda.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standard_root_contains_normalized_histograms(
        raw in prop::collection::vec(0.0..1.0f64, 8),
    ) {
        // Normalize to sum 1, then drop the last bin (paper's Example 1).
        let s: f64 = raw.iter().sum::<f64>().max(1e-9);
        let hist: Vec<f64> = raw.iter().map(|x| x / s).collect();
        let dropped = &hist[..7];
        let root = RootSimplex::standard(7);
        prop_assert!(root.contains(dropped, 1e-9).unwrap());
    }
}
