//! Barycentric coordinates: direct solve, incremental descent, interpolation.

use crate::{GeometryError, Result};
use fbp_linalg::{lu::Lu, Matrix};

/// Compute barycentric coordinates of `q` w.r.t. the simplex spanned by
/// `vertices` (exactly `D + 1` vertices of dimension `D`), by solving the
/// edge system `T·λ' = q − v_D` where `T`'s columns are `vᵢ − v_D`.
///
/// Returns `λ` of length `D + 1` with `Σλᵢ = 1`. Coordinates may be
/// negative when `q` lies outside the simplex — callers use the sign for
/// containment tests.
pub fn direct(vertices: &[&[f64]], q: &[f64]) -> Result<Vec<f64>> {
    let d = q.len();
    if vertices.len() != d + 1 {
        return Err(GeometryError::DimensionMismatch {
            expected: d + 1,
            got: vertices.len(),
        });
    }
    for v in vertices {
        if v.len() != d {
            return Err(GeometryError::DimensionMismatch {
                expected: d,
                got: v.len(),
            });
        }
    }
    if d == 0 {
        // A 0-simplex is a single point; the only coordinate is 1.
        return Ok(vec![1.0]);
    }
    let last = vertices[d];
    // T[(r, c)] = vertices[c][r] - last[r]  (edge vectors as columns).
    let mut t = Matrix::zeros(d, d);
    for c in 0..d {
        let vc = vertices[c];
        for r in 0..d {
            t[(r, c)] = vc[r] - last[r];
        }
    }
    let rhs: Vec<f64> = (0..d).map(|r| q[r] - last[r]).collect();
    let lu = Lu::factor(&t).map_err(|_| GeometryError::DegenerateSimplex)?;
    let head = lu
        .solve(&rhs)
        .map_err(|_| GeometryError::DegenerateSimplex)?;
    let mut lambda = Vec::with_capacity(d + 1);
    let mut sum = 0.0;
    for &l in &head {
        lambda.push(l);
        sum += l;
    }
    lambda.push(1.0 - sum);
    Ok(lambda)
}

/// Incremental coordinate update for a tree descent step.
///
/// Setting: a parent simplex with vertices `v₀..v_D` was split at point `p`
/// whose barycentric coordinates w.r.t. the parent are `μ`. Child `h`
/// replaces vertex `v_h` with `p` (keeping position `h` for `p`).
///
/// Given the coordinates `λ` of a query point w.r.t. the *parent*, the
/// coordinates `λ'` w.r.t. *child h* are (derivation: substitute
/// `v_h = (p − Σ_{j≠h} μⱼvⱼ)/μ_h` into `q = Σ λⱼvⱼ`):
///
/// ```text
/// λ'_h = λ_h / μ_h                 (coefficient of p)
/// λ'_j = λ_j − μ_j · λ_h / μ_h     (j ≠ h)
/// ```
///
/// O(D) per child instead of an O(D³) fresh solve.
///
/// # Panics
/// Debug-asserts that `λ` and `μ` have equal length and `μ_h ≠ 0`
/// (callers never descend into a child whose `μ_h` is ~0: such children are
/// degenerate and are not created by [`crate::split_children`]).
pub fn child_coords(lambda: &[f64], mu: &[f64], h: usize) -> Vec<f64> {
    let mut out = vec![0.0; lambda.len()];
    child_coords_into(lambda, mu, h, &mut out);
    out
}

/// Allocation-free variant of [`child_coords`]; writes into `out`.
#[inline]
pub fn child_coords_into(lambda: &[f64], mu: &[f64], h: usize, out: &mut [f64]) {
    debug_assert_eq!(lambda.len(), mu.len());
    debug_assert_eq!(lambda.len(), out.len());
    debug_assert!(h < lambda.len());
    debug_assert!(mu[h] != 0.0, "descending into a degenerate child");
    let t = lambda[h] / mu[h];
    for j in 0..lambda.len() {
        out[j] = lambda[j] - mu[j] * t;
    }
    out[h] = t;
}

/// Minimum coordinate of a child's barycentric vector, computed without
/// materializing it. Used to pick the most-interior child during descent.
#[inline]
pub fn child_min_coord(lambda: &[f64], mu: &[f64], h: usize) -> f64 {
    debug_assert!(mu[h] != 0.0);
    let t = lambda[h] / mu[h];
    let mut min = t;
    for j in 0..lambda.len() {
        if j == h {
            continue;
        }
        let v = lambda[j] - mu[j] * t;
        if v < min {
            min = v;
        }
    }
    min
}

/// Linear interpolation of per-vertex values: `v̂ = Σ λᵢ·valuesᵢ`.
///
/// This is the unbalanced-Haar-wavelet evaluation of the paper (§4.2,
/// "Interpolation"): on each simplex the approximation of `Mopt` is the
/// unique affine function agreeing with the stored values at the vertices;
/// evaluating it at `q` is exactly this weighted sum. Each of the `N`
/// output components is interpolated independently.
///
/// `values[i]` is the N-dimensional value stored at vertex `i`; `out` has
/// length N.
pub fn interpolate(values: &[&[f64]], lambda: &[f64], out: &mut [f64]) {
    debug_assert_eq!(values.len(), lambda.len());
    out.fill(0.0);
    for (vi, &li) in values.iter().zip(lambda.iter()) {
        if li == 0.0 {
            continue;
        }
        debug_assert_eq!(vi.len(), out.len());
        for (o, &x) in out.iter_mut().zip(vi.iter()) {
            *o += li * x;
        }
    }
}

/// Index and value of the minimum barycentric coordinate.
pub fn min_coord(lambda: &[f64]) -> (usize, f64) {
    let mut idx = 0;
    let mut val = f64::INFINITY;
    for (i, &l) in lambda.iter().enumerate() {
        if l < val {
            val = l;
            idx = i;
        }
    }
    (idx, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRI: [&[f64]; 3] = [&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]];

    #[test]
    fn vertices_have_indicator_coords() {
        for (i, v) in TRI.iter().enumerate() {
            let l = direct(&TRI, v).unwrap();
            for (j, &lj) in l.iter().enumerate() {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((lj - expected).abs() < 1e-12, "vertex {i}, coord {j}");
            }
        }
    }

    #[test]
    fn centroid_has_uniform_coords() {
        let c = [1.0 / 3.0, 1.0 / 3.0];
        let l = direct(&TRI, &c).unwrap();
        for &li in &l {
            assert!((li - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn coords_sum_to_one_even_outside() {
        let outside = [2.0, 3.0];
        let l = direct(&TRI, &outside).unwrap();
        assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(l.iter().any(|&x| x < 0.0));
    }

    #[test]
    fn reconstruction_identity() {
        let q = [0.3, 0.25];
        let l = direct(&TRI, &q).unwrap();
        let mut rec = [0.0; 2];
        for (v, &li) in TRI.iter().zip(l.iter()) {
            rec[0] += li * v[0];
            rec[1] += li * v[1];
        }
        assert!((rec[0] - q[0]).abs() < 1e-12);
        assert!((rec[1] - q[1]).abs() < 1e-12);
    }

    #[test]
    fn zero_dim_simplex() {
        let verts: [&[f64]; 1] = [&[]];
        let l = direct(&verts, &[]).unwrap();
        assert_eq!(l, vec![1.0]);
    }

    #[test]
    fn degenerate_simplex_rejected() {
        // Three collinear points.
        let verts: [&[f64]; 3] = [&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]];
        assert_eq!(
            direct(&verts, &[0.5, 0.5]),
            Err(GeometryError::DegenerateSimplex)
        );
    }

    #[test]
    fn wrong_vertex_count_rejected() {
        let verts: [&[f64]; 2] = [&[0.0, 0.0], &[1.0, 0.0]];
        assert!(matches!(
            direct(&verts, &[0.5, 0.5]),
            Err(GeometryError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn child_coords_match_direct_solve() {
        // Split TRI at p; child 1 replaces vertex 1 with p.
        let p = [0.4, 0.3];
        let mu = direct(&TRI, &p).unwrap();
        let q = [0.35, 0.2];
        let lambda = direct(&TRI, &q).unwrap();
        for h in 0..3 {
            let fast = child_coords(&lambda, &mu, h);
            // Build the child vertex set explicitly.
            let mut child: Vec<&[f64]> = TRI.to_vec();
            child[h] = &p;
            let slow = direct(&child, &q).unwrap();
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!((a - b).abs() < 1e-12, "h={h}: {fast:?} vs {slow:?}");
            }
        }
    }

    #[test]
    fn child_coords_sum_to_one() {
        let p = [0.25, 0.5];
        let mu = direct(&TRI, &p).unwrap();
        let lambda = direct(&TRI, &[0.1, 0.1]).unwrap();
        for h in 0..3 {
            let c = child_coords(&lambda, &mu, h);
            assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn child_min_coord_agrees_with_full_vector() {
        let p = [0.2, 0.6];
        let mu = direct(&TRI, &p).unwrap();
        let lambda = direct(&TRI, &[0.5, 0.2]).unwrap();
        for h in 0..3 {
            let full = child_coords(&lambda, &mu, h);
            let (_, m) = min_coord(&full);
            assert!((child_min_coord(&lambda, &mu, h) - m).abs() < 1e-12);
        }
    }

    #[test]
    fn exactly_one_child_contains_interior_point() {
        let p = [0.3, 0.3];
        let mu = direct(&TRI, &p).unwrap();
        // Strictly interior query point not equal to p.
        let lambda = direct(&TRI, &[0.2, 0.15]).unwrap();
        let containing: Vec<usize> = (0..3)
            .filter(|&h| child_min_coord(&lambda, &mu, h) >= -1e-12)
            .collect();
        assert_eq!(containing.len(), 1, "containing children: {containing:?}");
    }

    #[test]
    fn interpolate_affine_function_is_exact() {
        // f(x, y) = 3x − 2y + 1 is affine, so simplex interpolation must
        // reproduce it exactly anywhere in the plane.
        let f = |x: f64, y: f64| 3.0 * x - 2.0 * y + 1.0;
        let vals: Vec<Vec<f64>> = TRI.iter().map(|v| vec![f(v[0], v[1])]).collect();
        let val_refs: Vec<&[f64]> = vals.iter().map(|v| v.as_slice()).collect();
        for q in [[0.2, 0.3], [0.0, 0.0], [0.9, 0.05], [1.5, -0.2]] {
            let l = direct(&TRI, &q).unwrap();
            let mut out = [0.0];
            interpolate(&val_refs, &l, &mut out);
            assert!((out[0] - f(q[0], q[1])).abs() < 1e-12, "q={q:?}");
        }
    }

    #[test]
    fn interpolate_multiple_outputs() {
        let vals: [&[f64]; 3] = [&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]];
        let l = [0.5, 0.25, 0.25];
        let mut out = [0.0; 2];
        interpolate(&vals, &l, &mut out);
        assert!((out[0] - 1.75).abs() < 1e-12);
        assert!((out[1] - 17.5).abs() < 1e-12);
    }

    #[test]
    fn min_coord_finds_minimum() {
        assert_eq!(min_coord(&[0.5, -0.1, 0.6]), (1, -0.1));
        assert_eq!(min_coord(&[0.1]), (0, 0.1));
    }
}
