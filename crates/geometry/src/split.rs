//! Simplex splitting (paper §4.1).
//!
//! Inserting a point `q` with barycentric coordinates `μ` into a simplex
//! `S = {s₀, …, s_D}` decomposes `S` into up to `D + 1` children
//! `S_h = (S \ {s_h}) ∪ {q}`. A child is *proper* only when `μ_h > 0`:
//! `μ_h = 0` means `q` lies on the facet spanned by the other vertices, so
//! replacing `s_h` with `q` yields a zero-volume child. Degenerate children
//! are omitted; the remaining proper children still partition `S` (their
//! volumes sum to the parent's — see the tests).

use crate::BARY_TOL;

/// Classification of an insert position relative to its enclosing simplex.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitOutcome {
    /// `q` coincides (within tolerance) with vertex `h` of the simplex:
    /// no split; the caller should update the stored value at that vertex.
    AtVertex(usize),
    /// Proper split: create one child per listed vertex index `h`
    /// (replacing `s_h` with `q`). Contains every `h` with `μ_h > tol`.
    Split(Vec<usize>),
}

/// Decide how to split given the barycentric coordinates `mu` of the new
/// point w.r.t. its enclosing simplex.
///
/// `vertex_snap_tol` controls the "already a vertex" detection: if some
/// `μ_h ≥ 1 − vertex_snap_tol`, the point is considered identical to
/// vertex `h` (the paper's *already-seen query* case).
pub fn split_children(mu: &[f64], vertex_snap_tol: f64) -> SplitOutcome {
    // Already-seen query point: coordinates concentrated on one vertex.
    for (h, &m) in mu.iter().enumerate() {
        if m >= 1.0 - vertex_snap_tol {
            return SplitOutcome::AtVertex(h);
        }
    }
    let proper: Vec<usize> = mu
        .iter()
        .enumerate()
        .filter(|(_, &m)| m > BARY_TOL)
        .map(|(h, _)| h)
        .collect();
    SplitOutcome::Split(proper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barycentric::direct;
    use crate::simplex::volume;

    const TRI: [&[f64]; 3] = [&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]];

    #[test]
    fn interior_point_splits_into_all_children() {
        let mu = direct(&TRI, &[0.25, 0.25]).unwrap();
        match split_children(&mu, 1e-9) {
            SplitOutcome::Split(hs) => assert_eq!(hs, vec![0, 1, 2]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn point_on_edge_gets_two_children() {
        // Midpoint of the edge between vertices 1 and 2: μ₀ = 0.
        let mu = direct(&TRI, &[0.5, 0.5]).unwrap();
        match split_children(&mu, 1e-9) {
            SplitOutcome::Split(hs) => assert_eq!(hs, vec![1, 2]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn point_at_vertex_is_detected() {
        let mu = direct(&TRI, &[1.0, 0.0]).unwrap();
        assert_eq!(split_children(&mu, 1e-9), SplitOutcome::AtVertex(1));
        // Slightly perturbed still snaps with a loose tolerance.
        let mu2 = direct(&TRI, &[1.0 - 1e-12, 1e-13]).unwrap();
        assert_eq!(split_children(&mu2, 1e-9), SplitOutcome::AtVertex(1));
    }

    #[test]
    fn children_volumes_sum_to_parent() {
        let p = [0.2, 0.3];
        let mu = direct(&TRI, &p).unwrap();
        let SplitOutcome::Split(hs) = split_children(&mu, 1e-9) else {
            panic!("expected split");
        };
        let parent_vol = volume(&TRI);
        let mut sum = 0.0;
        for &h in &hs {
            let mut child: Vec<&[f64]> = TRI.to_vec();
            child[h] = &p;
            sum += volume(&child);
        }
        assert!((sum - parent_vol).abs() < 1e-12, "{sum} vs {parent_vol}");
    }

    #[test]
    fn children_volumes_sum_even_for_face_point() {
        // Point on an edge: only 2 children, but they still tile the parent.
        let p = [0.5, 0.5];
        let mu = direct(&TRI, &p).unwrap();
        let SplitOutcome::Split(hs) = split_children(&mu, 1e-9) else {
            panic!("expected split");
        };
        assert_eq!(hs.len(), 2);
        let mut sum = 0.0;
        for &h in &hs {
            let mut child: Vec<&[f64]> = TRI.to_vec();
            child[h] = &p;
            sum += volume(&child);
        }
        assert!((sum - volume(&TRI)).abs() < 1e-12);
    }
}
