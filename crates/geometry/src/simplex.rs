//! Whole-simplex predicates: volume, containment, degeneracy.

use crate::{barycentric, Result, BARY_TOL};
use fbp_linalg::{lu, Matrix};

/// Volume of the simplex spanned by `vertices` (`D+1` points in `R^D`):
/// `|det(edge matrix)| / D!`.
///
/// Returns 0.0 for degenerate vertex sets. Note `D!` overflows f64 fast;
/// for the dimensions used here (≤ ~40) it is fine.
pub fn volume(vertices: &[&[f64]]) -> f64 {
    let d = vertices.len().saturating_sub(1);
    if d == 0 {
        return 0.0;
    }
    let det = edge_det(vertices);
    let mut fact = 1.0;
    for k in 2..=d {
        fact *= k as f64;
    }
    det.abs() / fact
}

/// Signed determinant of the edge matrix (columns `vᵢ − v_D`).
///
/// The sign encodes orientation; 0.0 means degenerate. Two simplices that
/// partition a common parent have consistent orientation signs, which the
/// split tests rely on.
pub fn edge_det(vertices: &[&[f64]]) -> f64 {
    let d = vertices.len().saturating_sub(1);
    if d == 0 {
        return 0.0;
    }
    let last = vertices[d];
    let mut t = Matrix::zeros(d, d);
    for c in 0..d {
        for r in 0..d {
            t[(r, c)] = vertices[c][r] - last[r];
        }
    }
    lu::det(&t)
}

/// Containment test: is `q` inside (or on the boundary of) the simplex,
/// within tolerance `tol` on the barycentric coordinates?
pub fn contains(vertices: &[&[f64]], q: &[f64], tol: f64) -> Result<bool> {
    let lambda = barycentric::direct(vertices, q)?;
    Ok(lambda.iter().all(|&l| l >= -tol))
}

/// Containment with the crate-default tolerance.
pub fn contains_default(vertices: &[&[f64]], q: &[f64]) -> Result<bool> {
    contains(vertices, q, BARY_TOL)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRI: [&[f64]; 3] = [&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]];

    #[test]
    fn unit_triangle_area() {
        assert!((volume(&TRI) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unit_tetrahedron_volume() {
        let tet: [&[f64]; 4] = [
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
        ];
        assert!((volume(&tet) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_has_zero_volume() {
        let flat: [&[f64]; 3] = [&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]];
        assert_eq!(volume(&flat), 0.0);
    }

    #[test]
    fn containment_interior_boundary_exterior() {
        assert!(contains(&TRI, &[0.25, 0.25], 0.0).unwrap());
        // Vertex and edge midpoints are boundary: inside with tolerance.
        assert!(contains(&TRI, &[0.0, 0.0], BARY_TOL).unwrap());
        assert!(contains(&TRI, &[0.5, 0.5], BARY_TOL).unwrap());
        assert!(!contains(&TRI, &[0.6, 0.6], BARY_TOL).unwrap());
        assert!(!contains(&TRI, &[-0.1, 0.5], BARY_TOL).unwrap());
    }

    #[test]
    fn orientation_flips_with_vertex_swap() {
        let a = edge_det(&TRI);
        let swapped: [&[f64]; 3] = [TRI[1], TRI[0], TRI[2]];
        let b = edge_det(&swapped);
        assert!((a + b).abs() < 1e-12, "{a} vs {b}");
        assert!(a != 0.0);
    }
}
