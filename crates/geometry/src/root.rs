//! Initial (root) simplices covering the whole query domain (paper §4.1).
//!
//! The Simplex Tree needs a root simplex `S0` with `Q ⊆ S0`. The paper
//! gives two recipes:
//!
//! * `Q = [0,1]^D` — take `S0 = {0, D·e₁, …, D·e_D}` (a corner simplex
//!   scaled by `D` so the far corner `(1,…,1)` is still inside);
//! * normalized histograms with one bin dropped — the domain *is* the
//!   standard simplex `S0 = {0, e₁, …, e_D}`.
//!
//! Both are "scaled standard corner simplices", for which barycentric
//! coordinates have a closed form (`λᵢ = qᵢ/s`, `λ₀ = 1 − Σ`), avoiding
//! the LU solve at the root on every lookup. Arbitrary vertex sets are
//! supported through [`RootSimplex::Custom`].

use crate::{barycentric, GeometryError, Result};

/// The root simplex `S0` of a Simplex Tree.
#[derive(Debug, Clone, PartialEq)]
pub enum RootSimplex {
    /// `{0, s·e₁, …, s·e_D}` for scale `s`.
    ///
    /// * `s = 1` covers the normalized-histogram domain
    ///   `{x : xᵢ ≥ 0, Σxᵢ ≤ 1}` exactly;
    /// * `s = D` covers `[0,1]^D` (the paper's unit-cube recipe).
    Corner {
        /// Domain dimensionality `D`.
        dim: usize,
        /// Edge scale `s` of the corner simplex.
        scale: f64,
    },
    /// Arbitrary `D + 1` explicit vertices.
    Custom(Vec<Vec<f64>>),
}

impl RootSimplex {
    /// Root for the normalized-histogram domain (scale 1).
    pub fn standard(dim: usize) -> Self {
        RootSimplex::Corner { dim, scale: 1.0 }
    }

    /// Root covering the unit cube `[0,1]^D` (scale `D`, per the paper).
    pub fn unit_cube(dim: usize) -> Self {
        RootSimplex::Corner {
            dim,
            scale: dim as f64,
        }
    }

    /// Root from explicit vertices (validated lazily by coordinate solves).
    pub fn custom(vertices: Vec<Vec<f64>>) -> Result<Self> {
        let Some(first) = vertices.first() else {
            return Err(GeometryError::DimensionMismatch {
                expected: 1,
                got: 0,
            });
        };
        let d = first.len();
        if vertices.len() != d + 1 {
            return Err(GeometryError::DimensionMismatch {
                expected: d + 1,
                got: vertices.len(),
            });
        }
        if vertices.iter().any(|v| v.len() != d) {
            return Err(GeometryError::DimensionMismatch {
                expected: d,
                got: vertices.iter().map(|v| v.len()).find(|&l| l != d).unwrap(),
            });
        }
        Ok(RootSimplex::Custom(vertices))
    }

    /// Dimensionality `D` of the domain.
    pub fn dim(&self) -> usize {
        match self {
            RootSimplex::Corner { dim, .. } => *dim,
            RootSimplex::Custom(v) => v.len() - 1,
        }
    }

    /// Materialize the `D + 1` vertices (vertex 0 is the origin corner for
    /// [`RootSimplex::Corner`]).
    pub fn vertices(&self) -> Vec<Vec<f64>> {
        match self {
            RootSimplex::Corner { dim, scale } => {
                let mut out = Vec::with_capacity(dim + 1);
                out.push(vec![0.0; *dim]);
                for i in 0..*dim {
                    let mut v = vec![0.0; *dim];
                    v[i] = *scale;
                    out.push(v);
                }
                out
            }
            RootSimplex::Custom(v) => v.clone(),
        }
    }

    /// Barycentric coordinates of `q` w.r.t. the root.
    ///
    /// Closed form for [`RootSimplex::Corner`] (O(D)); LU solve for
    /// [`RootSimplex::Custom`] (O(D³)).
    ///
    /// Coordinate order matches [`Self::vertices`]: index 0 is the origin
    /// corner.
    pub fn coords(&self, q: &[f64]) -> Result<Vec<f64>> {
        match self {
            RootSimplex::Corner { dim, scale } => {
                if q.len() != *dim {
                    return Err(GeometryError::DimensionMismatch {
                        expected: *dim,
                        got: q.len(),
                    });
                }
                let mut lambda = Vec::with_capacity(dim + 1);
                lambda.push(0.0); // placeholder for λ₀
                let mut sum = 0.0;
                for &x in q {
                    let l = x / *scale;
                    lambda.push(l);
                    sum += l;
                }
                lambda[0] = 1.0 - sum;
                Ok(lambda)
            }
            RootSimplex::Custom(verts) => {
                let refs: Vec<&[f64]> = verts.iter().map(|v| v.as_slice()).collect();
                barycentric::direct(&refs, q)
            }
        }
    }

    /// Does the root contain `q` (within `tol` on the coordinates)?
    pub fn contains(&self, q: &[f64], tol: f64) -> Result<bool> {
        Ok(self.coords(q)?.iter().all(|&l| l >= -tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barycentric::direct;

    #[test]
    fn standard_simplex_covers_histograms() {
        let root = RootSimplex::standard(3);
        // Normalized histogram with last bin dropped: components sum ≤ 1.
        assert!(root.contains(&[0.2, 0.3, 0.4], 1e-12).unwrap());
        assert!(root.contains(&[0.0, 0.0, 0.0], 1e-12).unwrap());
        assert!(root.contains(&[1.0, 0.0, 0.0], 1e-12).unwrap());
        assert!(!root.contains(&[0.5, 0.4, 0.2], 1e-12).unwrap()); // sums to 1.1
        assert!(!root.contains(&[-0.1, 0.3, 0.3], 1e-12).unwrap());
    }

    #[test]
    fn unit_cube_root_covers_cube_corners() {
        let d = 5;
        let root = RootSimplex::unit_cube(d);
        // All 2^5 cube corners must be inside.
        for mask in 0u32..(1 << d) {
            let q: Vec<f64> = (0..d)
                .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
                .collect();
            assert!(root.contains(&q, 1e-12).unwrap(), "corner {q:?}");
        }
        // Just beyond the diagonal face is outside.
        let out = vec![1.01; d];
        assert!(!root.contains(&out, 1e-12).unwrap());
    }

    #[test]
    fn corner_coords_match_direct_solve() {
        let root = RootSimplex::unit_cube(4);
        let verts = root.vertices();
        let refs: Vec<&[f64]> = verts.iter().map(|v| v.as_slice()).collect();
        let q = [0.3, 0.7, 0.1, 0.9];
        let fast = root.coords(&q).unwrap();
        let slow = direct(&refs, &q).unwrap();
        // direct() puts λ for the *last* vertex at the end; root order is
        // origin-first, so compare component-wise against the vertex list.
        // Reconstruction is the order-independent check:
        let mut rec = [0.0; 4];
        for (l, v) in fast.iter().zip(verts.iter()) {
            for i in 0..4 {
                rec[i] += l * v[i];
            }
        }
        for i in 0..4 {
            assert!((rec[i] - q[i]).abs() < 1e-12);
        }
        assert!((fast.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((slow.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_root_roundtrip() {
        let verts = vec![vec![-1.0, -1.0], vec![3.0, -1.0], vec![-1.0, 3.0]];
        let root = RootSimplex::custom(verts).unwrap();
        assert_eq!(root.dim(), 2);
        assert!(root.contains(&[0.0, 0.0], 1e-12).unwrap());
        assert!(root.contains(&[0.9, 0.9], 1e-12).unwrap());
        assert!(!root.contains(&[3.0, 3.0], 1e-12).unwrap());
        let l = root.coords(&[0.5, 0.5]).unwrap();
        assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_root_validation() {
        assert!(RootSimplex::custom(vec![]).is_err());
        // 2 vertices for a 2-D point set: not a simplex.
        assert!(RootSimplex::custom(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).is_err());
        // Ragged vertices.
        assert!(RootSimplex::custom(vec![vec![0.0, 0.0], vec![1.0], vec![0.0, 1.0]]).is_err());
    }

    #[test]
    fn dim_mismatch_on_query() {
        let root = RootSimplex::standard(3);
        assert!(root.coords(&[0.1, 0.2]).is_err());
    }
}
