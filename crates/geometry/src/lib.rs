//! # fbp-geometry
//!
//! Simplex geometry substrate for the Simplex Tree (paper §4).
//!
//! A *simplex* in `R^D` is the convex hull of `D + 1` affinely independent
//! vertices. The Simplex Tree partitions the query domain into simplices;
//! every lookup must decide which child simplex contains a query point, and
//! every prediction interpolates stored values at the vertices. Both
//! operations reduce to **barycentric coordinates**: the unique weights
//! `λ₀..λ_D` with `Σλᵢ = 1` and `Σλᵢ·vᵢ = q`. The point lies inside the
//! simplex iff all coordinates are non-negative.
//!
//! Two evaluation paths are provided:
//!
//! * [`barycentric::direct`] — solve the D×D edge system with LU; the
//!   ground truth, O(D³);
//! * [`barycentric::child_coords`] — given coordinates w.r.t. a parent
//!   simplex and the stored coordinates `μ` of the split point, derive the
//!   coordinates w.r.t. any child in O(D). This turns a tree descent from
//!   O(depth·D⁴) into O(depth·D²) and is the workhorse of the Simplex
//!   Tree. The two paths are property-tested against each other.
//!
//! [`root`] builds the initial simplex `S0` covering the whole query domain
//! exactly as the paper prescribes for `[0,1]^D` and for normalized
//! histogram domains.

#![warn(missing_docs)]

pub mod barycentric;
pub mod root;
pub mod simplex;
pub mod split;

pub use barycentric::{child_coords, child_coords_into, direct, interpolate, min_coord};
pub use root::RootSimplex;
pub use simplex::{contains, volume};
pub use split::{split_children, SplitOutcome};

/// Default tolerance for containment / degeneracy decisions.
///
/// Barycentric coordinates are dimensionless (they sum to 1), so a single
/// absolute tolerance is meaningful regardless of the domain scale.
pub const BARY_TOL: f64 = 1e-9;

/// Errors from geometric predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The vertex set does not span a proper simplex (degenerate edges).
    DegenerateSimplex,
    /// Vertex / point dimensionalities are inconsistent.
    DimensionMismatch {
        /// Dimensionality the operation required.
        expected: usize,
        /// Dimensionality actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::DegenerateSimplex => write!(f, "degenerate simplex"),
            GeometryError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Result alias for geometry operations.
pub type Result<T> = std::result::Result<T, GeometryError>;
