//! Property tests pinning the [`QuerySpec`] surface to its normative
//! semantics:
//!
//! * **Lowering is the manual Rocchio arithmetic, bitwise.** The
//!   derived anchor of any spec equals an independent re-implementation
//!   of `α·q + β·centroid(good) − γ·centroid(bad)` (with the optional
//!   `max(0, ·)` clamp) written directly against the formula — not by
//!   calling back into the production code. Covered in full generality
//!   and in the edge cases the docs call out: no negatives, negatives
//!   only, clamped-to-zero components, and the verbatim trivial case.
//! * **Serving a spec ≡ a flat [`LinearScan`] against its derived
//!   anchor.** Both the flat ([`SharedBypass::knn_batch`]) and the
//!   sharded ([`ShardedBypass::knn_batch`]) front-ends, in both scan
//!   precisions, with per-spec `k` and explicit metric weights in the
//!   mix. (The router path rides the same invariant over the wire and
//!   is pinned by the server crate's `spec_wire` tests.)
//! * **Derived anchors scan identically under every distance class ×
//!   both precisions.** Euclidean, weighted-Euclidean, hierarchical,
//!   and quadratic scans of a spec's derived anchor return the same
//!   neighbors at `F64` and `F32Rescore`.

use fbp_linalg::Matrix;
use fbp_vecdb::distance::FeatureSpan;
use fbp_vecdb::{
    CollectionBuilder, Distance, Euclidean, HierarchicalDistance, KnnEngine, LinearScan,
    MultiQueryScan, Precision, QuadraticDistance, ScanMode, ShardedCollection, ShardedScan,
    WeightedEuclidean,
};
use feedbackbypass::{
    BypassConfig, FeedbackBypass, QuerySpec, RequestError, RocchioWeights, ShardedBypass,
    SharedBypass,
};
use proptest::prelude::*;

const DIM: usize = 6;

/// Independent mirror of the Rocchio derivation, written against the
/// formula with the same operation order the feedback crate documents
/// (accumulate examples in insertion order, divide by the count, scale
/// the anchor by α first) so agreement can be asserted **bitwise**, not
/// within a tolerance.
fn manual_rocchio(
    anchor: &[f64],
    positives: &[Vec<f64>],
    negatives: &[Vec<f64>],
    w: RocchioWeights,
    clamp: bool,
) -> Vec<f64> {
    fn centroid(set: &[Vec<f64>], dim: usize) -> Option<Vec<f64>> {
        if set.is_empty() {
            return None;
        }
        let mut acc = vec![0.0; dim];
        let mut total = 0.0;
        for p in set {
            for (a, &x) in acc.iter_mut().zip(p) {
                *a += 1.0 * x;
            }
            total += 1.0;
        }
        for a in &mut acc {
            *a /= total;
        }
        Some(acc)
    }
    let mut out: Vec<f64> = anchor.iter().map(|&x| w.alpha * x).collect();
    if let Some(c) = centroid(positives, anchor.len()) {
        for (o, g) in out.iter_mut().zip(&c) {
            *o += w.beta * g;
        }
    }
    if let Some(c) = centroid(negatives, anchor.len()) {
        for (o, b) in out.iter_mut().zip(&c) {
            *o -= w.gamma * b;
        }
    }
    if clamp {
        for v in &mut out {
            *v = v.max(0.0);
        }
    }
    out
}

/// A deterministic mirrored collection every serving case scans.
fn collection() -> fbp_vecdb::Collection {
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for i in 0..240 {
        let row: Vec<f64> = (0..DIM)
            .map(|d| (i as f64 * 0.37 + d as f64 * 0.73).sin().abs())
            .collect();
        b.push_unlabelled(&row).unwrap();
    }
    b.build()
}

fn shared() -> SharedBypass {
    let fb = FeedbackBypass::for_histograms(DIM, BypassConfig::default()).unwrap();
    SharedBypass::new(fb)
}

fn point() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0f64, DIM)
}

fn examples() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(point(), 0..4)
}

fn metric_weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1..2.0f64, DIM)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lowering_matches_manual_rocchio_bitwise(
        anchor in point(),
        pos in examples(),
        neg in examples(),
        alpha in 0.25..1.5f64,
        beta in 0.0..1.0f64,
        gamma in 0.0..1.0f64,
        clamp in any::<bool>(),
    ) {
        let w = RocchioWeights::new(alpha, beta, gamma);
        let spec = QuerySpec::builder(anchor.clone())
            .positives(pos.clone())
            .negatives(neg.clone())
            .rocchio(w)
            .clamp_to_zero(clamp)
            .build()
            .unwrap();
        let manual = manual_rocchio(&anchor, &pos, &neg, w, clamp);
        prop_assert_eq!(spec.derived_anchor(), manual.clone());
        let low = spec.lower();
        prop_assert_eq!(low.point(), manual.as_slice());
    }

    #[test]
    fn lowering_without_negatives_matches_manual(
        anchor in point(),
        pos in prop::collection::vec(point(), 1..4),
        beta in 0.0..1.0f64,
    ) {
        let w = RocchioWeights::new(1.0, beta, 0.25);
        let spec = QuerySpec::builder(anchor.clone())
            .positives(pos.clone())
            .rocchio(w)
            .build()
            .unwrap();
        prop_assert_eq!(
            spec.derived_anchor(),
            manual_rocchio(&anchor, &pos, &[], w, false)
        );
    }

    #[test]
    fn lowering_negatives_only_matches_manual(
        anchor in point(),
        neg in prop::collection::vec(point(), 1..4),
        gamma in 0.0..1.0f64,
    ) {
        let w = RocchioWeights::new(1.0, 0.75, gamma);
        let spec = QuerySpec::builder(anchor.clone())
            .negatives(neg.clone())
            .rocchio(w)
            .build()
            .unwrap();
        prop_assert_eq!(
            spec.derived_anchor(),
            manual_rocchio(&anchor, &[], &neg, w, false)
        );
    }

    #[test]
    fn clamped_lowering_never_goes_negative(
        anchor in point(),
        neg in prop::collection::vec(point(), 1..4),
        gamma in 1.0..4.0f64,
    ) {
        // A large γ drives components negative; the clamp must floor
        // every one at exactly 0.0 and leave the rest untouched.
        let w = RocchioWeights::new(1.0, 0.75, gamma);
        let spec = QuerySpec::builder(anchor.clone())
            .negatives(neg.clone())
            .rocchio(w)
            .clamp_to_zero(true)
            .build()
            .unwrap();
        let derived = spec.derived_anchor();
        prop_assert!(derived.iter().all(|&v| v >= 0.0));
        let unclamped = manual_rocchio(&anchor, &[], &neg, w, false);
        for (c, u) in derived.iter().zip(&unclamped) {
            if *u >= 0.0 {
                prop_assert_eq!(*c, *u);
            } else {
                prop_assert_eq!(*c, 0.0);
            }
        }
    }

    #[test]
    fn trivial_specs_lower_to_the_anchor_verbatim(anchor in point()) {
        let spec = QuerySpec::builder(anchor.clone()).build().unwrap();
        // Bit-for-bit the input bytes, not a recomputation.
        let low = spec.lower();
        prop_assert_eq!(low.point(), anchor.as_slice());
    }

    #[test]
    fn spec_batches_match_flat_scans_on_derived_anchors(
        raw in prop::collection::vec(
            (
                point(),
                examples(),
                examples(),
                prop::option::of(metric_weights()),
                3usize..12,
            ),
            1..5,
        ),
        pin_f64 in any::<bool>(),
        clamp in any::<bool>(),
    ) {
        // Every spec in the batch pins the same precision (mixing pins
        // is rejected; see `mixed_precision_pins_are_rejected`), but
        // carries its own k, examples, and (sometimes) metric weights.
        let precision = if pin_f64 { Precision::F64 } else { Precision::F32Rescore };
        let specs: Vec<QuerySpec> = raw
            .iter()
            .map(|(anchor, pos, neg, weights, k)| {
                let mut b = QuerySpec::builder(anchor.clone())
                    .positives(pos.clone())
                    .negatives(neg.clone())
                    .clamp_to_zero(clamp)
                    .k(*k)
                    .precision(precision);
                if let Some(w) = weights {
                    b = b.weights(w.clone());
                }
                b.build().unwrap()
            })
            .collect();

        let coll = collection();
        let module = shared();
        let mscan = MultiQueryScan::with_mode(&coll, ScanMode::Auto);
        let flat = module.knn_batch(&mscan, &specs, 8).unwrap();

        let sc = ShardedCollection::split(&coll, 3);
        let sscan = ShardedScan::with_mode(&sc, ScanMode::Auto);
        let sharded = ShardedBypass::from_shared(module.clone());
        let scattered = sharded.knn_batch(&sscan, &specs, 8).unwrap();

        let reference_scan =
            LinearScan::with_mode(&coll, ScanMode::Auto).with_precision(precision);
        for (i, spec) in specs.iter().enumerate() {
            let low = spec.lower();
            let metric = WeightedEuclidean::new(low.weights().to_vec()).unwrap();
            let reference =
                reference_scan.knn(low.point(), low.k().unwrap_or(8), &metric);
            prop_assert_eq!(&flat[i], &reference, "flat spec {} diverged", i);
            prop_assert_eq!(&scattered[i], &reference, "sharded spec {} diverged", i);
        }
    }

    #[test]
    fn derived_anchors_scan_identically_under_every_distance_class(
        anchor in point(),
        pos in examples(),
        neg in examples(),
        clamp in any::<bool>(),
    ) {
        let spec = QuerySpec::builder(anchor)
            .positives(pos)
            .negatives(neg)
            .clamp_to_zero(clamp)
            .build()
            .unwrap();
        let low = spec.lower();
        let q = low.point();

        let coll = collection();
        let w: Vec<f64> = (0..DIM).map(|i| 0.5 + i as f64).collect();
        let classes: Vec<Box<dyn Distance>> = vec![
            Box::new(Euclidean),
            Box::new(WeightedEuclidean::new(w.clone()).unwrap()),
            Box::new(
                HierarchicalDistance::new(
                    vec![FeatureSpan::new(0, 3), FeatureSpan::new(3, DIM)],
                    vec![2.0, 0.5],
                    w,
                )
                .unwrap(),
            ),
            Box::new(
                QuadraticDistance::new(&Matrix::from_diag(&[1.0, 2.0, 0.5, 3.0, 1.5, 0.75]))
                    .unwrap(),
            ),
        ];
        for class in &classes {
            let f64_scan =
                LinearScan::with_mode(&coll, ScanMode::Auto).with_precision(Precision::F64);
            let rescore = LinearScan::with_mode(&coll, ScanMode::Auto)
                .with_precision(Precision::F32Rescore);
            prop_assert_eq!(
                f64_scan.knn(q, 10, class.as_ref()),
                rescore.knn(q, 10, class.as_ref()),
                "{} diverged between precisions",
                class.name()
            );
        }
    }
}

#[test]
fn mixed_precision_pins_are_rejected_as_a_typed_error() {
    let coll = collection();
    let mscan = MultiQueryScan::with_mode(&coll, ScanMode::Auto);
    let specs = vec![
        QuerySpec::builder(vec![0.5; DIM])
            .precision(Precision::F64)
            .build()
            .unwrap(),
        QuerySpec::builder(vec![0.25; DIM])
            .precision(Precision::F32Rescore)
            .build()
            .unwrap(),
    ];
    let err = shared().knn_batch(&mscan, &specs, 5).unwrap_err();
    assert_eq!(
        err,
        feedbackbypass::BypassError::Request(RequestError::PrecisionConflict)
    );
}
