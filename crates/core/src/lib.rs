//! # feedbackbypass
//!
//! **FeedbackBypass** — a reproduction of *"FeedbackBypass: A New Approach
//! to Interactive Similarity Query Processing"* (Bartolini, Ciaccia, Waas;
//! VLDB 2001).
//!
//! Interactive similarity retrieval systems refine queries through
//! relevance-feedback loops, but forget everything between sessions.
//! FeedbackBypass sits next to the feedback engine (Figure 4 of the
//! paper) and *remembers*: it learns the mapping from initial query points
//! to the *optimal query parameters* `(Δopt, Wopt)` their feedback loops
//! converge to, storing it in a wavelet-based [Simplex
//! Tree](fbp_simplex_tree). For an already-seen query the loop can be
//! bypassed outright; for a new query the predicted parameters start the
//! search near-optimal, cutting feedback cycles and database accesses.
//!
//! ## Crate layout
//!
//! * [`bypass`] — the FeedbackBypass module itself: `predict` (the
//!   paper's `Mopt`) and `insert`, plus the domain mapping between
//!   feature space and the Simplex Tree's query domain;
//! * [`session`] — the Figure 5 interaction wrapper: a retrieval system
//!   enriched with FeedbackBypass, one call per user query;
//! * [`reduction`] — the paper's §3 follow-up: PCA-reduced query domains
//!   ([`ReducedBypass`]);
//! * [`shared`] — a thread-safe handle for concurrent retrieval sessions
//!   sharing one learned mapping, plus the batched serving front-end
//!   ([`SharedBypass::knn_batch`]) that coalesces pending sessions' k-NN
//!   requests into one multi-query collection pass;
//! * [`sharded`] — the same serving front-end over a sharded collection
//!   ([`ShardedBypass`]): scatter each coalesced batch across per-shard
//!   scan passes, gather the per-query k-bests in key space — results
//!   bit-identical to the flat pass, throughput no longer capped by one
//!   core's scan bandwidth.
//!
//! ## Quickstart
//!
//! ```
//! use feedbackbypass::{FeedbackBypass, BypassConfig};
//!
//! // 4-bin histogram features → 3-dimensional simplex query domain.
//! let mut fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
//!
//! // A fresh module predicts the default parameters (Δ = 0, W = 1).
//! let q = [0.4, 0.3, 0.2, 0.1];
//! let p = fb.predict(&q).unwrap();
//! assert!(p.point.iter().zip(&q).all(|(a, b)| (a - b).abs() < 1e-12));
//! assert_eq!(p.weights, vec![1.0; 4]);
//!
//! // After a feedback loop converged elsewhere, store its outcome...
//! let qopt = [0.5, 0.3, 0.15, 0.05];
//! let wopt = [2.0, 1.0, 1.0, 0.5];
//! fb.insert(&q, &qopt, &wopt).unwrap();
//!
//! // ...and the loop can be bypassed next time.
//! let p = fb.predict(&q).unwrap();
//! assert!((p.point[0] - 0.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod bypass;
pub mod query;
pub mod reduction;
pub mod session;
pub mod sharded;
pub mod shared;

pub use bypass::{BypassConfig, FeedbackBypass, PredictedParams};
pub use query::{LoweredQuery, QuerySpec, QuerySpecBuilder, RequestError, RocchioWeights};
pub use reduction::{PcaReducer, ReducedBypass};
pub use session::{BypassSystem, QueryOutcome};
pub use sharded::{GatherVerdict, ShardedBypass};
pub use shared::{KnnRequest, SharedBypass};

// Re-export the substrate types users interact with.
pub use fbp_feedback::{FeedbackConfig, MovementStrategy};
pub use fbp_simplex_tree::{InsertOutcome, Oqp, OqpLayout, TreeConfig, WeightScale};
pub use fbp_vecdb::{
    PartitionConfig, PartitionedCollection, PartitionedScan, ScanStats, ScanStatsSink,
};

/// Errors from the FeedbackBypass module.
#[derive(Debug, Clone, PartialEq)]
pub enum BypassError {
    /// Input vector is not a normalized histogram / not in the domain.
    BadQuery(String),
    /// Dimensionality disagrees with the module's feature space.
    DimMismatch {
        /// Feature dimensionality the module was built for.
        expected: usize,
        /// Dimensionality actually supplied.
        got: usize,
    },
    /// Simplex Tree failure.
    Tree(fbp_simplex_tree::TreeError),
    /// Feedback engine failure.
    Feedback(fbp_feedback::FeedbackError),
    /// Typed request/spec validation failure (see [`RequestError`]).
    /// Dimensionality failures keep surfacing as
    /// [`BypassError::DimMismatch`] — the `From<RequestError>` impl
    /// folds that variant over — so this arm carries the rest: bad
    /// weights, non-finite components, empty example sets, precision
    /// conflicts.
    Request(RequestError),
}

impl std::fmt::Display for BypassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BypassError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            BypassError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            BypassError::Tree(e) => write!(f, "simplex tree: {e}"),
            BypassError::Feedback(e) => write!(f, "feedback: {e}"),
            BypassError::Request(e) => write!(f, "bad request: {e}"),
        }
    }
}

impl std::error::Error for BypassError {}

impl From<fbp_simplex_tree::TreeError> for BypassError {
    fn from(e: fbp_simplex_tree::TreeError) -> Self {
        BypassError::Tree(e)
    }
}

impl From<fbp_feedback::FeedbackError> for BypassError {
    fn from(e: fbp_feedback::FeedbackError) -> Self {
        BypassError::Feedback(e)
    }
}

impl From<RequestError> for BypassError {
    fn from(e: RequestError) -> Self {
        match e {
            // Keep the long-standing dimension-error shape: callers
            // (and tests) match on `BypassError::DimMismatch` no matter
            // which layer caught it.
            RequestError::DimMismatch { expected, got } => {
                BypassError::DimMismatch { expected, got }
            }
            other => BypassError::Request(other),
        }
    }
}

/// Result alias for FeedbackBypass operations.
pub type Result<T> = std::result::Result<T, BypassError>;
