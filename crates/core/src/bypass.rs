//! The FeedbackBypass module: `Mopt` prediction and OQP insertion.
//!
//! Domain mapping (Example 1 of the paper): feature vectors are
//! L1-normalized histograms, so one bin is redundant — dropping the last
//! bin maps the feature space onto the standard simplex
//! `{x : xᵢ ≥ 0, Σxᵢ ≤ 1} ⊂ R^{D−1}`, which *is* the Simplex Tree's root.
//! Offsets are stored in the reduced space; the dropped component is
//! reconstructed from the normalization constraint (exactly equivalent to
//! storing it, since it is an affine function of the others and the tree's
//! interpolation is affine). Weights are stored for all `D` components,
//! normalized to geometric mean 1 (the ranking-invariant scale fix; the
//! paper instead pins one weight to 1 — same degrees of freedom, see
//! DESIGN.md §4.6).

use crate::{BypassError, Result};
use fbp_geometry::RootSimplex;
use fbp_simplex_tree::{InsertOutcome, Oqp, OqpLayout, SimplexTree, TreeConfig};

/// How feature vectors map onto the tree's query domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DomainMapping {
    /// Normalized histograms: drop the last bin (paper's Example 1).
    Histogram,
    /// Generic `[0,1]^D` features: identity mapping, `D`-dim unit-cube
    /// root.
    UnitCube,
}

/// Configuration of a FeedbackBypass module.
#[derive(Debug, Clone, Default)]
pub struct BypassConfig {
    /// Simplex Tree knobs (insert thresholds, weight scale, tolerances).
    pub tree: TreeConfig,
}

/// Parameters predicted (or stored) for a query: the materialized
/// `(qopt, Wopt)` ready to hand to the retrieval engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedParams {
    /// Predicted optimal query point (full feature space).
    pub point: Vec<f64>,
    /// Predicted distance weights (full feature space, positive).
    pub weights: Vec<f64>,
    /// Simplices traversed by the lookup (Figure 16 statistic).
    pub nodes_visited: usize,
}

/// The FeedbackBypass module (paper §3–4).
#[derive(Debug, Clone)]
pub struct FeedbackBypass {
    tree: SimplexTree,
    mapping: DomainMapping,
    feature_dim: usize,
    /// Tolerance for histogram-normalization validation.
    norm_tol: f64,
}

impl FeedbackBypass {
    /// Module for L1-normalized histogram features of dimension
    /// `feature_dim` (≥ 2). The tree's query domain is the
    /// `feature_dim − 1` standard simplex.
    pub fn for_histograms(feature_dim: usize, config: BypassConfig) -> Result<Self> {
        if feature_dim < 2 {
            return Err(BypassError::BadQuery(
                "histogram features need at least 2 bins".into(),
            ));
        }
        let d = feature_dim - 1;
        let layout = OqpLayout::new(d, feature_dim);
        let tree = SimplexTree::new(RootSimplex::standard(d), layout, config.tree)?;
        Ok(FeedbackBypass {
            tree,
            mapping: DomainMapping::Histogram,
            feature_dim,
            norm_tol: 1e-6,
        })
    }

    /// Module for generic `[0,1]^D` feature vectors (no normalization
    /// constraint; the root is the paper's scaled corner simplex).
    pub fn for_unit_cube(feature_dim: usize, config: BypassConfig) -> Result<Self> {
        if feature_dim == 0 {
            return Err(BypassError::BadQuery("zero-dimensional features".into()));
        }
        let layout = OqpLayout::new(feature_dim, feature_dim);
        let tree = SimplexTree::new(RootSimplex::unit_cube(feature_dim), layout, config.tree)?;
        Ok(FeedbackBypass {
            tree,
            mapping: DomainMapping::UnitCube,
            feature_dim,
            norm_tol: 1e-6,
        })
    }

    /// Feature-space dimensionality `D`.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The underlying Simplex Tree (stats, persistence, inspection).
    pub fn tree(&self) -> &SimplexTree {
        &self.tree
    }

    /// Map a feature vector into the tree's query domain.
    fn project(&self, q: &[f64]) -> Result<Vec<f64>> {
        if q.len() != self.feature_dim {
            return Err(BypassError::DimMismatch {
                expected: self.feature_dim,
                got: q.len(),
            });
        }
        match self.mapping {
            DomainMapping::Histogram => {
                let sum: f64 = q.iter().sum();
                if (sum - 1.0).abs() > self.norm_tol {
                    return Err(BypassError::BadQuery(format!(
                        "histogram not normalized: sums to {sum}"
                    )));
                }
                if q.iter().any(|&x| x < -self.norm_tol) {
                    return Err(BypassError::BadQuery("histogram has negative bins".into()));
                }
                // Drop the last bin; clamp tiny negatives from upstream
                // floating-point noise.
                Ok(q[..self.feature_dim - 1]
                    .iter()
                    .map(|&x| x.max(0.0))
                    .collect())
            }
            DomainMapping::UnitCube => {
                if q.iter()
                    .any(|&x| !(-self.norm_tol..=1.0 + self.norm_tol).contains(&x))
                {
                    return Err(BypassError::BadQuery("feature outside [0,1]".into()));
                }
                Ok(q.iter().map(|&x| x.clamp(0.0, 1.0)).collect())
            }
        }
    }

    /// Lift a query-domain point + offset back into feature space.
    fn reconstruct_point(&self, q_domain: &[f64], delta: &[f64]) -> Vec<f64> {
        match self.mapping {
            DomainMapping::Histogram => {
                let mut full = Vec::with_capacity(self.feature_dim);
                let mut sum = 0.0;
                for (x, d) in q_domain.iter().zip(delta.iter()) {
                    let v = x + d;
                    full.push(v);
                    sum += v;
                }
                // The dropped bin is determined by normalization.
                full.push(1.0 - sum);
                full
            }
            DomainMapping::UnitCube => q_domain
                .iter()
                .zip(delta.iter())
                .map(|(x, d)| x + d)
                .collect(),
        }
    }

    /// Predict the optimal query parameters for `q` — the paper's
    /// `Mopt(q)` (Figure 5: called once per incoming user query).
    pub fn predict(&self, q: &[f64]) -> Result<PredictedParams> {
        let qd = self.project(q)?;
        let pred = self.tree.predict(&qd)?;
        let point = self.reconstruct_point(&qd, &pred.oqp.delta);
        Ok(PredictedParams {
            point,
            weights: pred.oqp.weights,
            nodes_visited: pred.nodes_visited,
        })
    }

    /// Store the converged parameters of a finished feedback loop — the
    /// paper's `Insert(q, v)`.
    ///
    /// `qopt` is the loop's final query point in feature space; `weights`
    /// its final distance weights. Returns what the tree did (split /
    /// update / ε-skip).
    pub fn insert(&mut self, q: &[f64], qopt: &[f64], weights: &[f64]) -> Result<InsertOutcome> {
        if qopt.len() != self.feature_dim {
            return Err(BypassError::DimMismatch {
                expected: self.feature_dim,
                got: qopt.len(),
            });
        }
        if weights.len() != self.feature_dim {
            return Err(BypassError::DimMismatch {
                expected: self.feature_dim,
                got: weights.len(),
            });
        }
        let qd = self.project(q)?;
        let delta_dim = self.tree.layout().delta_dim;
        let delta: Vec<f64> = (0..delta_dim).map(|i| qopt[i] - qd[i]).collect();
        let mut oqp = Oqp {
            delta,
            weights: weights.to_vec(),
        };
        oqp.normalize_weights();
        Ok(self.tree.insert(&qd, &oqp)?)
    }

    /// Serialize the learned mapping (delegates to the tree's format).
    pub fn to_bytes(&self) -> Vec<u8> {
        // The mapping kind is recoverable from the root shape; encode it in
        // one prefix byte anyway for explicitness.
        let mut out = Vec::new();
        out.push(match self.mapping {
            DomainMapping::Histogram => 0u8,
            DomainMapping::UnitCube => 1u8,
        });
        out.extend_from_slice(&self.tree.to_bytes());
        out
    }

    /// Restore a module serialized with [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let Some((&tag, rest)) = data.split_first() else {
            return Err(BypassError::Tree(fbp_simplex_tree::TreeError::Corrupt(
                "empty image".into(),
            )));
        };
        let mapping = match tag {
            0 => DomainMapping::Histogram,
            1 => DomainMapping::UnitCube,
            t => {
                return Err(BypassError::Tree(fbp_simplex_tree::TreeError::Corrupt(
                    format!("unknown mapping tag {t}"),
                )))
            }
        };
        let tree = SimplexTree::from_bytes(rest)?;
        let feature_dim = match mapping {
            DomainMapping::Histogram => tree.dim() + 1,
            DomainMapping::UnitCube => tree.dim(),
        };
        Ok(FeedbackBypass {
            tree,
            mapping,
            feature_dim,
            norm_tol: 1e-6,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(vals: &[f64]) -> Vec<f64> {
        let s: f64 = vals.iter().sum();
        vals.iter().map(|v| v / s).collect()
    }

    #[test]
    fn fresh_module_predicts_identity() {
        let fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let q = hist(&[1.0, 2.0, 3.0, 4.0]);
        let p = fb.predict(&q).unwrap();
        for (a, b) in p.point.iter().zip(q.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(p.weights, vec![1.0; 4]);
        assert_eq!(p.nodes_visited, 1);
    }

    #[test]
    fn insert_then_predict_roundtrips() {
        let mut fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let q = hist(&[1.0, 1.0, 1.0, 1.0]);
        let qopt = hist(&[3.0, 1.0, 1.0, 1.0]);
        let w = [4.0, 1.0, 1.0, 0.25];
        fb.insert(&q, &qopt, &w).unwrap();
        let p = fb.predict(&q).unwrap();
        for (a, b) in p.point.iter().zip(qopt.iter()) {
            assert!((a - b).abs() < 1e-9, "{:?} vs {qopt:?}", p.point);
        }
        // Weights come back normalized to geometric mean 1, ratios intact.
        assert!((p.weights[0] / p.weights[1] - 4.0).abs() < 1e-9);
        assert!((p.weights[0] / p.weights[3] - 16.0).abs() < 1e-9);
        // Reconstructed point still sums to 1 (normalization carried by
        // the dropped-bin reconstruction).
        let s: f64 = p.point.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nearby_queries_interpolate() {
        let mut fb = FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap();
        let q = hist(&[1.0, 1.0, 2.0]);
        let qopt = hist(&[2.0, 1.0, 1.0]);
        fb.insert(&q, &qopt, &[3.0, 1.0, 1.0]).unwrap();
        // A query near the stored one gets pulled toward its parameters.
        let nearby = hist(&[1.05, 1.0, 1.95]);
        let p = fb.predict(&nearby).unwrap();
        assert!(p.weights[0] > p.weights[1], "{:?}", p.weights);
        // A faraway query stays close to the defaults.
        let far = hist(&[0.05, 3.0, 0.1]);
        let pf = fb.predict(&far).unwrap();
        assert!(pf.weights[0] < p.weights[0]);
    }

    #[test]
    fn validation_errors() {
        let fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        // Not normalized.
        assert!(matches!(
            fb.predict(&[0.5, 0.5, 0.5, 0.5]),
            Err(BypassError::BadQuery(_))
        ));
        // Wrong dimension.
        assert!(matches!(
            fb.predict(&[0.5, 0.5]),
            Err(BypassError::DimMismatch { .. })
        ));
        // Negative bin.
        assert!(matches!(
            fb.predict(&[-0.1, 0.6, 0.3, 0.2]),
            Err(BypassError::BadQuery(_))
        ));
        // Construction guards.
        assert!(FeedbackBypass::for_histograms(1, BypassConfig::default()).is_err());
        assert!(FeedbackBypass::for_unit_cube(0, BypassConfig::default()).is_err());
    }

    #[test]
    fn unit_cube_mapping() {
        let mut fb = FeedbackBypass::for_unit_cube(3, BypassConfig::default()).unwrap();
        let q = [0.2, 0.8, 0.5];
        let p = fb.predict(&q).unwrap();
        assert_eq!(p.point, q.to_vec());
        fb.insert(&q, &[0.3, 0.7, 0.5], &[2.0, 2.0, 0.5]).unwrap();
        let p2 = fb.predict(&q).unwrap();
        assert!((p2.point[0] - 0.3).abs() < 1e-9);
        // Out-of-cube rejected.
        assert!(fb.predict(&[1.5, 0.0, 0.0]).is_err());
    }

    #[test]
    fn persistence_roundtrip() {
        let mut fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let q = hist(&[1.0, 2.0, 1.0, 1.0]);
        let qopt = hist(&[2.0, 2.0, 1.0, 0.5]);
        fb.insert(&q, &qopt, &[2.0, 1.0, 1.0, 1.0]).unwrap();
        let img = fb.to_bytes();
        let back = FeedbackBypass::from_bytes(&img).unwrap();
        assert_eq!(back.feature_dim(), 4);
        let a = fb.predict(&q).unwrap();
        let b = back.predict(&q).unwrap();
        assert_eq!(a, b);
        // Corruption detected.
        assert!(FeedbackBypass::from_bytes(&img[..5]).is_err());
        assert!(FeedbackBypass::from_bytes(&[]).is_err());
        assert!(FeedbackBypass::from_bytes(&[9, 1, 2, 3]).is_err());
    }

    #[test]
    fn epsilon_skip_surfaces() {
        let mut fb = FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap();
        let q = hist(&[1.0, 1.0, 1.0]);
        // Inserting the defaults is a no-op.
        let out = fb.insert(&q, &q, &[1.0, 1.0, 1.0]).unwrap();
        assert!(matches!(out, InsertOutcome::Skipped { .. }));
        assert_eq!(fb.tree().stored_points(), 0);
    }
}
