//! Scatter/gather serving over a sharded collection: the
//! [`SharedBypass::knn_batch`] front-end lifted onto
//! [`ShardedCollection`]/[`ShardedScan`], so one coalesced batch of
//! session requests fans out across per-shard scan passes and the
//! per-query k-bests merge back — bit-identical to the flat pass, and
//! therefore to per-session [`LinearScan`](fbp_vecdb::LinearScan)s.
//!
//! Two consumption shapes:
//!
//! * **One-shot** ([`ShardedBypass::knn_batch`]) — validate once, fan
//!   the batch out over shard worker threads, gather inline. This is
//!   what `fbp-eval::sessions` and in-process callers use.
//! * **Split** ([`ShardedBypass::scan_shard`] +
//!   [`ShardedBypass::gather`]) — for serving stacks that schedule each
//!   shard independently (the `fbp-server` per-shard micro-batchers):
//!   each shard dispatcher runs `scan_shard` on whatever batch *its*
//!   queue produced, and the request's reply is assembled by `gather`
//!   once all shards delivered. Results do not depend on how requests
//!   were grouped into shard passes — a [`ShardPartial`] is the exact
//!   local k-best in key space regardless of its batch-mates.
//!
//! The learned-module half (predict / insert / stats) is untouched by
//! sharding — it delegates to the wrapped [`SharedBypass`], one module
//! shared by every shard's sessions.

use crate::bypass::{FeedbackBypass, PredictedParams};
use crate::query::QuerySpec;
use crate::shared::{prepare_requests, resolve_precision, KnnRequest, SharedBypass};
use crate::Result;
use fbp_simplex_tree::InsertOutcome;
use fbp_vecdb::{
    merge_partials, merge_partials_policy, DegradedGather, FailurePolicy, GatherError, Neighbor,
    Precision, ShardPartial, ShardedCollection, ShardedScan, WeightedEuclidean,
};

/// Outcome of a policy-checked gather: a (possibly degraded) merged
/// answer, or the typed refusal the [`FailurePolicy`] demands.
pub type GatherVerdict = std::result::Result<DegradedGather, GatherError>;

/// Cloneable handle pairing the shared learned module with the
/// scatter/gather serving front-end for sharded collections.
#[derive(Clone)]
pub struct ShardedBypass {
    shared: SharedBypass,
}

impl ShardedBypass {
    /// Wrap a module for sharded serving.
    pub fn new(bypass: FeedbackBypass) -> Self {
        ShardedBypass {
            shared: SharedBypass::new(bypass),
        }
    }

    /// Reuse an existing shared handle (the module state is common to
    /// every serving front-end; sharding only changes the scan side).
    pub fn from_shared(shared: SharedBypass) -> Self {
        ShardedBypass { shared }
    }

    /// The wrapped flat handle (predict/insert/stats live there).
    pub fn shared(&self) -> &SharedBypass {
        &self.shared
    }

    /// The sharded scan a serving front-end should hand to
    /// [`Self::knn_batch`]: mode Auto, f32-rescore precision — the same
    /// unconditional mirror opt-in as [`SharedBypass::serving_scan`],
    /// applied per shard.
    pub fn serving_scan(coll: &ShardedCollection) -> ShardedScan<'_> {
        ShardedScan::new(coll).with_precision(Precision::F32Rescore)
    }

    /// The scan precision every shard pass of one coalesced batch will
    /// run at — the exact [`SharedBypass::effective_precision`] fallback
    /// rule (pins win and must agree; `F32Rescore` sticks; an
    /// `F64`-default scan upgrades when **every** shard carries its
    /// mirror).
    pub fn effective_precision(
        scan: &ShardedScan<'_>,
        requests: &[KnnRequest],
    ) -> Result<Precision> {
        resolve_precision(
            scan.precision(),
            scan.collection().has_f32_mirror(),
            requests.iter().map(|r| r.precision),
        )
    }

    /// Serve a batch of [`QuerySpec`]s with one scatter/gather round:
    /// lower every spec ([`QuerySpec::lower`]) and hand the lowered
    /// batch to [`Self::knn_batch_lowered`] — bit-identical to
    /// [`SharedBypass::knn_batch`] over the unsharded collection, and
    /// therefore to a flat `LinearScan` against each spec's derived
    /// anchor.
    pub fn knn_batch(
        &self,
        scan: &ShardedScan<'_>,
        specs: &[QuerySpec],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let lowered: Vec<KnnRequest> = specs.iter().map(|s| s.lower().into_request()).collect();
        self.knn_batch_lowered(scan, &lowered, k)
    }

    /// Serve pre-lowered k-NN requests with one scatter/gather round
    /// over `scan`'s shards, returning each request's neighbors in
    /// request order — bit-identical to
    /// [`SharedBypass::knn_batch_lowered`] over the unsharded
    /// collection (and therefore to per-request single-query scans).
    /// `k`, per-request [`KnnRequest::k`], the shared-metric fast path,
    /// and the precision rule all behave exactly as in the flat
    /// front-end.
    pub fn knn_batch_lowered(
        &self,
        scan: &ShardedScan<'_>,
        requests: &[KnnRequest],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let coll = scan.collection();
        if coll.is_empty() {
            return Ok(vec![Vec::new(); requests.len()]);
        }
        let refs: Vec<&KnnRequest> = requests.iter().collect();
        let prep = prepare_requests(coll.dim(), &refs, k)?;
        let scan = scan.with_precision(Self::effective_precision(scan, requests)?);
        let points: Vec<&[f64]> = requests.iter().map(|r| r.point.as_slice()).collect();
        if prep.shared_metric {
            Ok(scan.knn_multi_k(&points, &prep.ks, &prep.metrics[0]))
        } else {
            Ok(scan.knn_weighted_per_query_k(&points, &prep.metrics, &prep.ks))
        }
    }

    /// Scatter stage for external per-shard schedulers: run shard
    /// `shard`'s pass for one batch of requests, returning one keyed
    /// [`ShardPartial`] per request (request order). The batch given to
    /// each shard may differ — each shard's micro-batcher drains its own
    /// queue — because a partial is the shard's exact k-best for that
    /// request no matter which requests shared its pass. Validation,
    /// the per-request `k` rule, the shared-metric fast path, and the
    /// precision rule match [`Self::knn_batch`].
    ///
    /// `seeds` (per request, optional) enable **cross-shard bound
    /// propagation**: each entry must be a sound upper bound on that
    /// request's global k-th key — typically
    /// [`ShardPartial::bound_key`] from a shard that already finished
    /// (the k-th best of any row subset bounds the global k-th from
    /// above). A seeded pass early-abandons sooner, recovering most of
    /// the pruning power a flat pass gets from its single running
    /// threshold; it can never change the merged answer. `f64::INFINITY`
    /// entries are no-ops.
    pub fn scan_shard(
        &self,
        scan: &ShardedScan<'_>,
        shard: usize,
        requests: &[&KnnRequest],
        k: usize,
        seeds: Option<&[f64]>,
    ) -> Result<Vec<ShardPartial>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let coll = scan.collection();
        let prep = prepare_requests(coll.dim(), requests, k)?;
        let scan = scan.with_precision(resolve_precision(
            scan.precision(),
            coll.has_f32_mirror(),
            requests.iter().map(|r| r.precision),
        )?);
        let points: Vec<&[f64]> = requests.iter().map(|r| r.point.as_slice()).collect();
        Ok(if prep.shared_metric {
            scan.scan_shard_multi(shard, &points, &prep.ks, &prep.metrics[0], seeds)
        } else {
            scan.scan_shard_weighted(shard, &points, &prep.metrics, &prep.ks, seeds)
        })
    }

    /// Scatter stage for schedulers that **prepared at admission**: the
    /// points, metrics and result counts were validated and built once
    /// (see [`KnnRequest::metric`]) and are shared by reference across
    /// all `S` shard passes, instead of `scan_shard`'s rebuild-per-pass.
    /// Semantics are otherwise identical to [`Self::scan_shard`] for
    /// requests without precision pins (the prepared callers resolve
    /// precision from the scan and collection alone); `seeds` as there.
    pub fn scan_shard_prepared(
        &self,
        scan: &ShardedScan<'_>,
        shard: usize,
        points: &[&[f64]],
        metrics: &[&WeightedEuclidean],
        ks: &[usize],
        seeds: Option<&[f64]>,
    ) -> Vec<ShardPartial> {
        if points.is_empty() {
            return Vec::new();
        }
        let precision = resolve_precision(
            scan.precision(),
            scan.collection().has_f32_mirror(),
            std::iter::empty(),
        )
        .expect("precision pins cannot conflict in an empty pin set");
        let scan = scan.with_precision(precision);
        let shared_metric = metrics
            .split_first()
            .is_some_and(|(first, rest)| rest.iter().all(|m| m.weights() == first.weights()));
        if shared_metric {
            scan.scan_shard_multi(shard, points, ks, metrics[0], seeds)
        } else {
            scan.scan_shard_weighted_refs(shard, points, metrics, ks, seeds)
        }
    }

    /// Gather stage for external per-shard schedulers: merge one
    /// request's per-shard partials (any arrival order) into its final
    /// neighbor list under the request's own metric, honoring the
    /// per-request `k` override against `default_k`.
    pub fn gather<'p>(
        request: &KnnRequest,
        default_k: usize,
        partials: impl IntoIterator<Item = &'p ShardPartial>,
    ) -> Result<Vec<Neighbor>> {
        let metric = WeightedEuclidean::new(request.weights.clone())
            .map_err(|e| crate::BypassError::BadQuery(format!("request weights: {e}")))?;
        Ok(merge_partials(
            partials,
            request.k.unwrap_or(default_k),
            &metric,
        ))
    }

    /// Gather stage **with missing shards**: `partials[i]` is shard
    /// `i`'s delivery or `None` when it failed, and `policy` decides
    /// between a (possibly degraded) merged answer and a typed refusal
    /// — the router tier's partial-failure contract. The outer `Result`
    /// reports invalid request weights; the inner [`GatherVerdict`] is
    /// the policy's decision (see
    /// [`merge_partials_policy`]).
    ///
    /// [`merge_partials_policy`]: fbp_vecdb::merge_partials_policy
    pub fn gather_policy(
        request: &KnnRequest,
        default_k: usize,
        partials: &[Option<ShardPartial>],
        policy: FailurePolicy,
    ) -> Result<GatherVerdict> {
        let metric = WeightedEuclidean::new(request.weights.clone())
            .map_err(|e| crate::BypassError::BadQuery(format!("request weights: {e}")))?;
        Ok(merge_partials_policy(
            partials,
            request.k.unwrap_or(default_k),
            &metric,
            policy,
        ))
    }

    /// Predict under a read lock (delegates to the shared module).
    pub fn predict(&self, q: &[f64]) -> Result<PredictedParams> {
        self.shared.predict(q)
    }

    /// Batched predictions under one read lock.
    pub fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<PredictedParams>> {
        self.shared.predict_batch(queries)
    }

    /// Insert under a write lock (delegates to the shared module).
    pub fn insert(&self, q: &[f64], qopt: &[f64], weights: &[f64]) -> Result<InsertOutcome> {
        self.shared.insert(q, qopt, weights)
    }

    /// Snapshot statistics: `(stored points, tree nodes, tree depth)`.
    pub fn stats(&self) -> (u64, usize, usize) {
        self.shared.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BypassConfig, KnnRequest};
    use fbp_vecdb::{CollectionBuilder, KnnEngine, LinearScan, MultiQueryScan, ScanMode};

    fn collection() -> fbp_vecdb::Collection {
        let mut b = CollectionBuilder::new().with_f32_mirror();
        for i in 0..400 {
            let x = (i as f64 * 0.37).sin().abs();
            let y = (i as f64 * 0.73).cos().abs();
            let z = ((i % 17) as f64) / 17.0;
            b.push_unlabelled(&[x, y, z]).unwrap();
        }
        b.build()
    }

    fn sharded() -> ShardedBypass {
        let fb = FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap();
        ShardedBypass::new(fb)
    }

    fn requests() -> Vec<KnnRequest> {
        vec![
            KnnRequest::uniform(vec![0.2, 0.4, 0.6]).with_k(1),
            KnnRequest {
                point: vec![0.8, 0.1, 0.3],
                weights: vec![0.25, 2.0, 1.5],
                k: Some(50),
                precision: None,
            },
            KnnRequest {
                point: vec![0.5, 0.5, 0.2],
                weights: vec![3.0, 1.0, 0.5],
                k: None,
                precision: None,
            },
        ]
    }

    #[test]
    fn sharded_knn_batch_matches_flat_serving_and_linear_scans() {
        let coll = collection();
        let reqs = requests();
        let flat_scan = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
        let flat =
            SharedBypass::new(FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap())
                .knn_batch_lowered(&flat_scan, &reqs, 7)
                .unwrap();
        for s in [1usize, 3, 400] {
            let sc = ShardedCollection::split(&coll, s);
            let scan = ShardedScan::with_mode(&sc, ScanMode::Batched);
            let batch = sharded().knn_batch_lowered(&scan, &reqs, 7).unwrap();
            assert_eq!(batch, flat, "S={s}");
        }
        // And both match per-request LinearScans (the ground truth).
        let single = LinearScan::with_mode(&coll, ScanMode::Batched);
        for (req, res) in reqs.iter().zip(flat.iter()) {
            let w = WeightedEuclidean::new(req.weights.clone()).unwrap();
            assert_eq!(res, &single.knn(&req.point, req.k.unwrap_or(7), &w));
        }
    }

    #[test]
    fn split_scan_shard_plus_gather_matches_one_shot() {
        let coll = collection();
        let reqs = requests();
        let sc = ShardedCollection::split(&coll, 3);
        let scan = ShardedScan::with_mode(&sc, ScanMode::Batched);
        let by = sharded();
        let one_shot = by.knn_batch_lowered(&scan, &reqs, 7).unwrap();
        // Per-shard batches grouped differently per shard: shard 0 sees
        // the whole batch at once, shard 1 serves the requests as three
        // singleton passes, shard 2 as a pair plus a singleton — the
        // gathered replies must not care.
        let refs: Vec<&KnnRequest> = reqs.iter().collect();
        let p0 = by.scan_shard(&scan, 0, &refs, 7, None).unwrap();
        let p1: Vec<_> = refs
            .iter()
            .map(|r| by.scan_shard(&scan, 1, &[*r], 7, None).unwrap().remove(0))
            .collect();
        let mut p2 = by.scan_shard(&scan, 2, &refs[..2], 7, None).unwrap();
        p2.extend(by.scan_shard(&scan, 2, &refs[2..], 7, None).unwrap());
        for (i, req) in reqs.iter().enumerate() {
            let gathered = ShardedBypass::gather(req, 7, [&p1[i], &p2[i], &p0[i]]).unwrap();
            assert_eq!(gathered, one_shot[i], "request {i}");
        }
    }

    #[test]
    fn validation_and_precision_rules_match_flat_front_end() {
        let coll = collection();
        let sc = ShardedCollection::split(&coll, 2);
        let scan = ShardedScan::new(&sc);
        // Mirrored shards upgrade an unpinned default scan.
        let reqs = vec![KnnRequest::uniform(vec![0.1, 0.5, 0.3])];
        assert_eq!(
            ShardedBypass::effective_precision(&scan, &reqs).unwrap(),
            Precision::F32Rescore
        );
        // Conflicting pins cannot share one batch.
        let mixed = vec![
            KnnRequest::uniform(vec![0.1, 0.5, 0.3]).with_precision(Precision::F64),
            KnnRequest::uniform(vec![0.4, 0.2, 0.8]).with_precision(Precision::F32Rescore),
        ];
        assert!(sharded().knn_batch_lowered(&scan, &mixed, 5).is_err());
        // Dim mismatches error instead of panicking.
        let short = vec![KnnRequest::uniform(vec![0.1, 0.2])];
        assert!(matches!(
            sharded().knn_batch_lowered(&scan, &short, 5),
            Err(crate::BypassError::DimMismatch {
                expected: 3,
                got: 2
            })
        ));
        // Bad weights are rejected.
        let bad = vec![KnnRequest {
            point: vec![0.1, 0.2, 0.3],
            weights: vec![1.0, -1.0, 0.0],
            k: None,
            precision: None,
        }];
        assert!(sharded().knn_batch_lowered(&scan, &bad, 5).is_err());
        // Empty batches and empty collections serve trivially.
        assert!(sharded()
            .knn_batch_lowered(&scan, &[], 5)
            .unwrap()
            .is_empty());
        let empty = ShardedCollection::split(&CollectionBuilder::new().build(), 3);
        let escan = ShardedScan::new(&empty);
        assert_eq!(
            sharded().knn_batch_lowered(&escan, &reqs, 5).unwrap(),
            vec![Vec::new()]
        );
    }

    #[test]
    fn module_delegation_reaches_the_shared_state() {
        let by = sharded();
        let q = vec![0.5, 0.3, 0.2];
        by.insert(&q, &[0.45, 0.35, 0.2], &[2.0, 1.0, 0.5]).unwrap();
        let p = by.predict(&q).unwrap();
        assert!(p.weights.iter().all(|&w| w > 0.0));
        let batch = by.predict_batch(std::slice::from_ref(&q)).unwrap();
        assert_eq!(batch[0].point, p.point);
        let (stored, nodes, depth) = by.stats();
        assert!(stored >= 1 && nodes >= 1 && depth >= 1);
        // The flat handle is the same underlying module.
        assert_eq!(by.shared().stats().0, stored);
    }
}
