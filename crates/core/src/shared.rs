//! Thread-safe sharing of one FeedbackBypass module.
//!
//! A retrieval service handles many user sessions concurrently, all of
//! which should benefit from (and contribute to) the same learned
//! mapping. Predictions are read-mostly and cheap; inserts are rare (one
//! per finished feedback loop). An `RwLock` around the module matches
//! that profile: concurrent predictions, exclusive inserts.

use crate::bypass::{FeedbackBypass, PredictedParams};
use crate::Result;
use fbp_simplex_tree::InsertOutcome;
use parking_lot::RwLock;
use std::sync::Arc;

/// Cloneable, thread-safe handle to a shared [`FeedbackBypass`] module.
#[derive(Clone)]
pub struct SharedBypass {
    inner: Arc<RwLock<FeedbackBypass>>,
}

impl SharedBypass {
    /// Wrap a module for sharing.
    pub fn new(bypass: FeedbackBypass) -> Self {
        SharedBypass {
            inner: Arc::new(RwLock::new(bypass)),
        }
    }

    /// Predict under a read lock (concurrent with other predictions).
    pub fn predict(&self, q: &[f64]) -> Result<PredictedParams> {
        self.inner.read().predict(q)
    }

    /// Insert under a write lock.
    pub fn insert(&self, q: &[f64], qopt: &[f64], weights: &[f64]) -> Result<InsertOutcome> {
        self.inner.write().insert(q, qopt, weights)
    }

    /// Snapshot statistics: `(stored points, tree nodes, tree depth)`.
    pub fn stats(&self) -> (u64, usize, usize) {
        let guard = self.inner.read();
        let shape = guard.tree().shape();
        (shape.stored_points, shape.node_count, shape.depth)
    }

    /// Serialize the current state (read lock held for the duration).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.inner.read().to_bytes()
    }

    /// Run `f` with read access to the module.
    pub fn with_read<T>(&self, f: impl FnOnce(&FeedbackBypass) -> T) -> T {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BypassConfig;

    fn hist(vals: &[f64]) -> Vec<f64> {
        let s: f64 = vals.iter().sum();
        vals.iter().map(|v| v / s).collect()
    }

    #[test]
    fn concurrent_predict_and_insert() {
        let fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let shared = SharedBypass::new(fb);
        let mut handles = Vec::new();
        // Writers insert distinct points; readers predict continuously.
        for t in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let base = 0.1 + 0.15 * t as f64;
                let q = hist(&[base, 0.3, 0.3, 0.4 - base / 2.0]);
                let qopt = hist(&[base + 0.05, 0.25, 0.3, 0.4 - base / 2.0]);
                for _ in 0..50 {
                    s.insert(&q, &qopt, &[2.0, 1.0, 1.0, 0.5]).unwrap();
                    s.predict(&q).unwrap();
                }
            }));
        }
        for t in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let q = hist(&[0.2 + 0.01 * t as f64, 0.3, 0.25, 0.25]);
                for _ in 0..200 {
                    let p = s.predict(&q).unwrap();
                    assert!(p.weights.iter().all(|&w| w > 0.0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (stored, nodes, depth) = shared.stats();
        assert!(stored >= 1);
        assert!(nodes >= 1);
        assert!(depth >= 1);
        // State survives serialization after concurrent mutation.
        let img = shared.to_bytes();
        let back = FeedbackBypass::from_bytes(&img).unwrap();
        assert_eq!(back.tree().stored_points(), stored);
    }

    #[test]
    fn with_read_exposes_module() {
        let fb = FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap();
        let shared = SharedBypass::new(fb);
        let dim = shared.with_read(|m| m.feature_dim());
        assert_eq!(dim, 3);
    }
}
