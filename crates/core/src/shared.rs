//! Thread-safe sharing of one FeedbackBypass module, plus the batched
//! serving front-end for concurrent sessions.
//!
//! A retrieval service handles many user sessions concurrently, all of
//! which should benefit from (and contribute to) the same learned
//! mapping. Predictions are read-mostly and cheap; inserts are rare (one
//! per finished feedback loop). An `RwLock` around the module matches
//! that profile: concurrent predictions, exclusive inserts.
//!
//! Beyond the shared *state*, concurrent sessions also share the
//! *collection*: every feedback iteration of every session re-scans the
//! same vectors, and on a memory-bandwidth-bound host those scans are
//! the throughput ceiling. [`SharedBypass::knn_batch`] therefore
//! coalesces the pending sessions' k-NN requests into **one**
//! multi-query block pass ([`MultiQueryScan`]): requests still sharing a
//! metric (e.g. first iterations under uniform weights) ride the
//! shared-metric kernels, diverged per-session metrics share the block
//! reads. Results are bit-identical to serving each request with its own
//! [`LinearScan`](fbp_vecdb::LinearScan).

use crate::bypass::{FeedbackBypass, PredictedParams};
use crate::query::{validate_weights, QuerySpec, RequestError};
use crate::{BypassError, Result};
use fbp_simplex_tree::InsertOutcome;
use fbp_vecdb::{
    Collection, MultiQueryScan, Neighbor, PartitionedCollection, PartitionedScan, Precision,
    WeightedEuclidean,
};
use parking_lot::RwLock;
use std::sync::Arc;

/// One session's pending k-NN request **in lowered form**: its current
/// query point and per-component distance weights (the parameters its
/// feedback loop — or a [`SharedBypass::predict`] — last produced).
///
/// This is the shape [`QuerySpec::lower`] canonicalizes every query
/// into, and the only shape the scan/shard/router layers see. Prefer
/// building queries through [`QuerySpec::builder`](crate::QuerySpec::builder)
/// — it validates once and lowers infallibly; constructing `KnnRequest`
/// by poking fields is the deprecated legacy path kept for the
/// post-lowering plumbing (batchers, session stores) that already holds
/// validated `(point, weights)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnRequest {
    /// Query point in feature space.
    pub point: Vec<f64>,
    /// Weighted-Euclidean component weights (all finite and positive).
    pub weights: Vec<f64>,
    /// Per-request result count; `None` uses the batch-wide `k` passed
    /// to [`SharedBypass::knn_batch`]. Sessions in one pass rarely agree
    /// on `k` (different UIs, different refinement depths), and the
    /// multi-query scan answers mixed counts without widening anyone's
    /// k-best.
    pub k: Option<usize>,
    /// Scan-precision pin for the pass serving this request; `None`
    /// defers to [`SharedBypass::effective_precision`]'s fallback rule.
    /// Pinned requests in one batch must agree (one pass streams one
    /// buffer); results are identical either way — a pin only controls
    /// bandwidth, e.g. `Some(Precision::F64)` to force the single-phase
    /// scan on a mirrored collection.
    pub precision: Option<Precision>,
}

impl KnnRequest {
    /// Request with uniform (default-metric) weights.
    pub fn uniform(point: Vec<f64>) -> Self {
        let dim = point.len();
        KnnRequest {
            point,
            weights: vec![1.0; dim],
            k: None,
            precision: None,
        }
    }

    /// Request from a module prediction.
    pub fn from_prediction(p: &PredictedParams) -> Self {
        KnnRequest {
            point: p.point.clone(),
            weights: p.weights.clone(),
            k: None,
            precision: None,
        }
    }

    /// Override the batch-wide `k` for this request.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Pin the scan precision of the pass serving this request.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Validate this request against the served dimensionality and
    /// build its weighted-Euclidean metric — the single-request form of
    /// batch preparation, for schedulers that admit requests one at a
    /// time and want the metric built **once** (shared by every shard
    /// pass and the final gather) instead of once per shard pass.
    pub fn metric(&self, dim: usize) -> Result<WeightedEuclidean> {
        if self.point.len() != dim {
            return Err(BypassError::DimMismatch {
                expected: dim,
                got: self.point.len(),
            });
        }
        if self.weights.len() != dim {
            return Err(BypassError::DimMismatch {
                expected: dim,
                got: self.weights.len(),
            });
        }
        WeightedEuclidean::new(self.weights.clone())
            .map_err(|e| BypassError::BadQuery(format!("request weights: {e}")))
    }
}

/// Validated, kernel-ready form of one request batch — the common
/// front half of the flat ([`SharedBypass::knn_batch_lowered`]) and
/// sharded ([`crate::ShardedBypass::knn_batch_lowered`]) serving paths.
pub(crate) struct PreparedBatch {
    /// One weighted-Euclidean metric per request.
    pub metrics: Vec<WeightedEuclidean>,
    /// Resolved per-request result counts (request `k` or the default).
    pub ks: Vec<usize>,
    /// True when every request shares one weight vector (the
    /// shared-metric kernel fast path).
    pub shared_metric: bool,
}

/// Validate a request batch against the served dimensionality and build
/// its metrics: the scan layer asserts/indexes on dims and would panic
/// instead of reporting a serving error, so everything is checked here
/// first.
pub(crate) fn prepare_requests(
    dim: usize,
    requests: &[&KnnRequest],
    default_k: usize,
) -> Result<PreparedBatch> {
    for r in requests {
        if r.point.len() != dim {
            return Err(BypassError::DimMismatch {
                expected: dim,
                got: r.point.len(),
            });
        }
        if r.weights.len() != dim {
            return Err(BypassError::DimMismatch {
                expected: dim,
                got: r.weights.len(),
            });
        }
        validate_weights(&r.weights)?;
    }
    let metrics: Vec<WeightedEuclidean> = requests
        .iter()
        .map(|r| {
            WeightedEuclidean::new(r.weights.clone())
                .map_err(|e| BypassError::BadQuery(format!("request weights: {e}")))
        })
        .collect::<Result<_>>()?;
    let ks: Vec<usize> = requests.iter().map(|r| r.k.unwrap_or(default_k)).collect();
    let shared_metric = requests
        .split_first()
        .is_some_and(|(first, rest)| rest.iter().all(|r| r.weights == first.weights));
    Ok(PreparedBatch {
        metrics,
        ks,
        shared_metric,
    })
}

/// The serving layer's one precision fallback rule, shared verbatim by
/// the flat and sharded paths (see
/// [`SharedBypass::effective_precision`] for the normative wording):
/// agreeing pins win, `F32Rescore` sticks, an `F64`-default scan
/// upgrades when the collection is mirrored.
pub(crate) fn resolve_precision(
    configured: Precision,
    has_mirror: bool,
    pins: impl IntoIterator<Item = Option<Precision>>,
) -> Result<Precision> {
    let mut pinned: Option<Precision> = None;
    for pin in pins.into_iter().flatten() {
        match pinned {
            Some(q) if q != pin => {
                return Err(RequestError::PrecisionConflict.into());
            }
            _ => pinned = Some(pin),
        }
    }
    Ok(match pinned {
        Some(p) => p,
        None => {
            if configured == Precision::F64 && has_mirror {
                Precision::F32Rescore
            } else {
                configured
            }
        }
    })
}

/// Cloneable, thread-safe handle to a shared [`FeedbackBypass`] module.
#[derive(Clone)]
pub struct SharedBypass {
    inner: Arc<RwLock<FeedbackBypass>>,
}

impl SharedBypass {
    /// Wrap a module for sharing.
    pub fn new(bypass: FeedbackBypass) -> Self {
        SharedBypass {
            inner: Arc::new(RwLock::new(bypass)),
        }
    }

    /// The multi-query scan a serving front-end should hand to
    /// [`Self::knn_batch`]: mode Auto, **f32-rescore precision** — when
    /// the collection carries its f32 mirror
    /// ([`Collection::ensure_f32_mirror`]), every coalesced pass streams
    /// half the bytes and still returns results identical to the pure
    /// f64 scan (without a mirror this is exactly the f64 scan), so the
    /// serving layer opts in unconditionally.
    pub fn serving_scan(coll: &Collection) -> MultiQueryScan<'_> {
        MultiQueryScan::new(coll).with_precision(Precision::F32Rescore)
    }

    /// The partition-pruning counterpart of [`Self::serving_scan`]: the
    /// scan a front-end hands to [`Self::knn_batch_partitioned`] after
    /// opting into a [`PartitionConfig`](fbp_vecdb::PartitionConfig)
    /// and building the layout once at load time
    /// ([`fbp_vecdb::PartitionedCollection::build`]). Same mode-Auto,
    /// f32-rescore-opt-in configuration; answers stay bit-identical to
    /// [`Self::serving_scan`] over the source collection — partition
    /// pruning only skips rows it can prove irrelevant.
    pub fn serving_scan_partitioned(part: &PartitionedCollection) -> PartitionedScan<'_> {
        PartitionedScan::new(part).with_precision(Precision::F32Rescore)
    }

    /// Predict under a read lock (concurrent with other predictions).
    pub fn predict(&self, q: &[f64]) -> Result<PredictedParams> {
        self.inner.read().predict(q)
    }

    /// Predict for a batch of queries under **one** read lock — the
    /// coalesced form for serving many sessions' predictions at once
    /// (one lock acquisition instead of one per session).
    pub fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<PredictedParams>> {
        let guard = self.inner.read();
        queries.iter().map(|q| guard.predict(q)).collect()
    }

    /// The scan precision one coalesced pass will actually run at —
    /// **the** fallback rule of the serving layer, in priority order:
    ///
    /// 1. A request carrying [`KnnRequest::precision`] pins the pass.
    ///    All pinned requests in the batch must agree; mixing pins is a
    ///    [`BypassError::BadQuery`] (one pass streams one buffer).
    /// 2. A scan configured with [`Precision::F32Rescore`] keeps it.
    /// 3. A scan left at the [`Precision::F64`] default is **upgraded**
    ///    to `F32Rescore` when the collection carries its f32 mirror —
    ///    the same rule [`Self::serving_scan`] applies. Results are
    ///    identical in both precisions, so a caller who built the mirror
    ///    but constructed the scan themselves no longer silently pays
    ///    full-width streaming; forcing the single-phase f64 pass on a
    ///    mirrored collection takes an explicit per-request pin.
    ///
    /// (`F32Rescore` without a mirror, or for a distance class without
    /// f32 kernels, transparently degrades to the f64 path inside the
    /// scan — requesting it is always safe.)
    pub fn effective_precision(
        scan: &MultiQueryScan<'_>,
        requests: &[KnnRequest],
    ) -> Result<Precision> {
        resolve_precision(
            scan.precision(),
            scan.collection().has_f32_mirror(),
            requests.iter().map(|r| r.precision),
        )
    }

    /// Serve a batch of [`QuerySpec`]s in **one** multi-query block
    /// pass: lower every spec through the single canonicalization step
    /// ([`QuerySpec::lower`] — Rocchio-derive the anchor from its
    /// example sets, default the metric) and hand the lowered batch to
    /// [`Self::knn_batch_lowered`]. Because lowering happens *before*
    /// the scan, a multi-example spec answers bit-identical to a flat
    /// [`LinearScan`](fbp_vecdb::LinearScan) against its derived anchor
    /// — the same invariant the plain-anchor path always had.
    pub fn knn_batch(
        &self,
        scan: &MultiQueryScan<'_>,
        specs: &[QuerySpec],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let lowered: Vec<KnnRequest> = specs.iter().map(|s| s.lower().into_request()).collect();
        self.knn_batch_lowered(scan, &lowered, k)
    }

    /// Serve pre-lowered k-NN requests in **one** multi-query block
    /// pass over `scan`'s collection, returning each request's
    /// neighbors in request order (bit-identical to serving each request
    /// with its own single-query scan). `k` is the batch-wide default
    /// result count; a request carrying its own [`KnnRequest::k`]
    /// overrides it for that request only, still inside the same pass.
    /// The pass precision follows [`Self::effective_precision`] — the
    /// scan's configured precision is a floor, not a pin: a mirrored
    /// collection is served `F32Rescore` unless a request pins `F64`.
    ///
    /// Requests whose weight vectors are all identical — typically every
    /// session's first iteration, before feedback diverges the metrics —
    /// take the shared-metric fast path
    /// ([`MultiQueryScan::knn_multi_k`], one kernel call per block);
    /// otherwise each request keeps its own learned metric and shares
    /// the block reads ([`MultiQueryScan::knn_per_query_k`]).
    pub fn knn_batch_lowered(
        &self,
        scan: &MultiQueryScan<'_>,
        requests: &[KnnRequest],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let coll = scan.collection();
        if coll.is_empty() {
            return Ok(vec![Vec::new(); requests.len()]);
        }
        let refs: Vec<&KnnRequest> = requests.iter().collect();
        let prep = prepare_requests(coll.dim(), &refs, k)?;
        let scan = scan.with_precision(Self::effective_precision(scan, requests)?);
        let points: Vec<&[f64]> = requests.iter().map(|r| r.point.as_slice()).collect();
        if prep.shared_metric {
            Ok(scan.knn_multi_k(&points, &prep.ks, &prep.metrics[0]))
        } else {
            // Diverged metrics are all weighted-Euclidean by
            // construction, so the pass rides the specialized
            // per-query-weight multi kernels (one register-blocked
            // kernel call per block instead of one per query) — results
            // identical to the generic per-query path.
            Ok(scan.knn_weighted_per_query_k(&points, &prep.metrics, &prep.ks))
        }
    }

    /// [`Self::knn_batch`] through a partition-pruning scan: lower the
    /// specs once, then serve the batch with
    /// [`Self::knn_batch_lowered_partitioned`]. Bit-identical to
    /// [`Self::knn_batch`] over the layout's source collection.
    pub fn knn_batch_partitioned(
        &self,
        scan: &PartitionedScan<'_>,
        specs: &[QuerySpec],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let lowered: Vec<KnnRequest> = specs.iter().map(|s| s.lower().into_request()).collect();
        self.knn_batch_lowered_partitioned(scan, &lowered, k)
    }

    /// [`Self::knn_batch_lowered`] through a partition-pruning scan:
    /// identical validation, precision resolution (the shared fallback
    /// rule, against the **inner** collection's mirror), shared-metric
    /// fast path and per-query dispatch — only
    /// the executor differs, and partition pruning is
    /// answer-transparent, so the results are bit-identical to the flat
    /// entry over the layout's source collection.
    pub fn knn_batch_lowered_partitioned(
        &self,
        scan: &PartitionedScan<'_>,
        requests: &[KnnRequest],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let part = scan.partitions();
        if part.is_empty() {
            return Ok(vec![Vec::new(); requests.len()]);
        }
        let refs: Vec<&KnnRequest> = requests.iter().collect();
        let prep = prepare_requests(part.dim(), &refs, k)?;
        let precision = resolve_precision(
            scan.precision(),
            part.has_f32_mirror(),
            requests.iter().map(|r| r.precision),
        )?;
        let scan = scan.with_precision(precision);
        let points: Vec<&[f64]> = requests.iter().map(|r| r.point.as_slice()).collect();
        if prep.shared_metric {
            Ok(scan.knn_multi_k(&points, &prep.ks, &prep.metrics[0]))
        } else {
            Ok(scan.knn_weighted_per_query_k(&points, &prep.metrics, &prep.ks))
        }
    }

    /// Insert under a write lock.
    pub fn insert(&self, q: &[f64], qopt: &[f64], weights: &[f64]) -> Result<InsertOutcome> {
        self.inner.write().insert(q, qopt, weights)
    }

    /// Snapshot statistics: `(stored points, tree nodes, tree depth)`.
    pub fn stats(&self) -> (u64, usize, usize) {
        let guard = self.inner.read();
        let shape = guard.tree().shape();
        (shape.stored_points, shape.node_count, shape.depth)
    }

    /// Serialize the current state (read lock held for the duration).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.inner.read().to_bytes()
    }

    /// Run `f` with read access to the module.
    pub fn with_read<T>(&self, f: impl FnOnce(&FeedbackBypass) -> T) -> T {
        f(&self.inner.read())
    }

    /// Swap in a replacement module wholesale (write lock held for the
    /// swap) — the restore half of module replication: a router pushes
    /// its serialized module over the `RestoreModule` RPC and the shard
    /// server installs the deserialized copy atomically, so every
    /// session admitted afterwards predicts from the replicated state.
    pub fn replace(&self, bypass: FeedbackBypass) {
        *self.inner.write() = bypass;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BypassConfig;

    fn hist(vals: &[f64]) -> Vec<f64> {
        let s: f64 = vals.iter().sum();
        vals.iter().map(|v| v / s).collect()
    }

    #[test]
    fn concurrent_predict_and_insert() {
        let fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let shared = SharedBypass::new(fb);
        let mut handles = Vec::new();
        // Writers insert distinct points; readers predict continuously.
        for t in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let base = 0.1 + 0.15 * t as f64;
                let q = hist(&[base, 0.3, 0.3, 0.4 - base / 2.0]);
                let qopt = hist(&[base + 0.05, 0.25, 0.3, 0.4 - base / 2.0]);
                for _ in 0..50 {
                    s.insert(&q, &qopt, &[2.0, 1.0, 1.0, 0.5]).unwrap();
                    s.predict(&q).unwrap();
                }
            }));
        }
        for t in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let q = hist(&[0.2 + 0.01 * t as f64, 0.3, 0.25, 0.25]);
                for _ in 0..200 {
                    let p = s.predict(&q).unwrap();
                    assert!(p.weights.iter().all(|&w| w > 0.0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (stored, nodes, depth) = shared.stats();
        assert!(stored >= 1);
        assert!(nodes >= 1);
        assert!(depth >= 1);
        // State survives serialization after concurrent mutation.
        let img = shared.to_bytes();
        let back = FeedbackBypass::from_bytes(&img).unwrap();
        assert_eq!(back.tree().stored_points(), stored);
    }

    #[test]
    fn with_read_exposes_module() {
        let fb = FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap();
        let shared = SharedBypass::new(fb);
        let dim = shared.with_read(|m| m.feature_dim());
        assert_eq!(dim, 3);
    }

    #[test]
    fn predict_batch_matches_individual_predictions() {
        let fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let shared = SharedBypass::new(fb);
        let q1 = hist(&[0.4, 0.3, 0.2, 0.1]);
        shared
            .insert(&q1, &hist(&[0.5, 0.25, 0.15, 0.1]), &[2.0, 1.0, 1.0, 0.5])
            .unwrap();
        let queries = vec![q1.clone(), hist(&[0.25, 0.25, 0.25, 0.25])];
        let batch = shared.predict_batch(&queries).unwrap();
        assert_eq!(batch.len(), 2);
        for (q, p) in queries.iter().zip(batch.iter()) {
            let single = shared.predict(q).unwrap();
            assert_eq!(p.point, single.point);
            assert_eq!(p.weights, single.weights);
        }
    }

    mod knn_batch {
        use super::*;
        use fbp_vecdb::{
            CollectionBuilder, KnnEngine, LinearScan, MultiQueryScan, ScanMode, WeightedEuclidean,
        };

        fn collection() -> fbp_vecdb::Collection {
            let mut b = CollectionBuilder::new();
            for i in 0..300 {
                let x = (i as f64 * 0.37).sin().abs();
                let y = (i as f64 * 0.73).cos().abs();
                let z = ((i % 17) as f64) / 17.0;
                b.push_unlabelled(&[x, y, z]).unwrap();
            }
            b.build()
        }

        fn shared() -> SharedBypass {
            let fb = FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap();
            SharedBypass::new(fb)
        }

        #[test]
        fn uniform_requests_match_individual_scans() {
            let coll = collection();
            let scan = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
            let requests: Vec<KnnRequest> = (0..4)
                .map(|i| KnnRequest::uniform(vec![0.1 * i as f64, 0.5, 0.3]))
                .collect();
            let batch = shared().knn_batch_lowered(&scan, &requests, 10).unwrap();
            let single = LinearScan::with_mode(&coll, ScanMode::Batched);
            for (req, res) in requests.iter().zip(batch.iter()) {
                let w = WeightedEuclidean::new(req.weights.clone()).unwrap();
                assert_eq!(res, &single.knn(&req.point, 10, &w));
            }
        }

        #[test]
        fn diverged_metrics_match_individual_scans() {
            let coll = collection();
            let scan = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
            let requests = vec![
                KnnRequest {
                    point: vec![0.2, 0.4, 0.6],
                    weights: vec![3.0, 1.0, 0.5],
                    k: None,
                    precision: None,
                },
                KnnRequest {
                    point: vec![0.8, 0.1, 0.3],
                    weights: vec![0.25, 2.0, 1.5],
                    k: None,
                    precision: None,
                },
            ];
            let batch = shared().knn_batch_lowered(&scan, &requests, 7).unwrap();
            let single = LinearScan::with_mode(&coll, ScanMode::Batched);
            for (req, res) in requests.iter().zip(batch.iter()) {
                let w = WeightedEuclidean::new(req.weights.clone()).unwrap();
                assert_eq!(res, &single.knn(&req.point, 7, &w));
            }
        }

        #[test]
        fn bad_weights_are_rejected() {
            let coll = collection();
            let scan = MultiQueryScan::new(&coll);
            let requests = vec![KnnRequest {
                point: vec![0.1, 0.2, 0.3],
                weights: vec![1.0, -1.0, 0.0],
                k: None,
                precision: None,
            }];
            assert!(shared().knn_batch_lowered(&scan, &requests, 5).is_err());
        }

        #[test]
        fn dim_mismatches_error_instead_of_panicking() {
            let coll = collection();
            let scan = MultiQueryScan::new(&coll);
            let short_point = vec![KnnRequest::uniform(vec![0.1, 0.2])];
            assert!(matches!(
                shared().knn_batch_lowered(&scan, &short_point, 5),
                Err(crate::BypassError::DimMismatch {
                    expected: 3,
                    got: 2
                })
            ));
            let short_weights = vec![KnnRequest {
                point: vec![0.1, 0.2, 0.3],
                weights: vec![1.0, 2.0],
                k: None,
                precision: None,
            }];
            assert!(matches!(
                shared().knn_batch_lowered(&scan, &short_weights, 5),
                Err(crate::BypassError::DimMismatch {
                    expected: 3,
                    got: 2
                })
            ));
        }

        #[test]
        fn mixed_per_request_k_in_one_pass() {
            let coll = collection();
            let scan = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
            let single = LinearScan::with_mode(&coll, ScanMode::Batched);
            // Shared metric (all uniform weights), k ∈ {1, 10, 50} plus
            // one request deferring to the batch default.
            let requests = vec![
                KnnRequest::uniform(vec![0.1, 0.5, 0.3]).with_k(1),
                KnnRequest::uniform(vec![0.4, 0.2, 0.8]).with_k(10),
                KnnRequest::uniform(vec![0.9, 0.6, 0.1]).with_k(50),
                KnnRequest::uniform(vec![0.3, 0.3, 0.3]),
            ];
            let batch = shared().knn_batch_lowered(&scan, &requests, 7).unwrap();
            let expected_k = [1usize, 10, 50, 7];
            for ((req, res), &k) in requests.iter().zip(batch.iter()).zip(expected_k.iter()) {
                assert_eq!(res.len(), k, "per-request k not honored");
                let w = WeightedEuclidean::new(req.weights.clone()).unwrap();
                assert_eq!(res, &single.knn(&req.point, k, &w));
            }
            // Diverged metrics exercise the per-query-metric path.
            let requests = vec![
                KnnRequest {
                    point: vec![0.2, 0.4, 0.6],
                    weights: vec![3.0, 1.0, 0.5],
                    k: Some(1),
                    precision: None,
                },
                KnnRequest {
                    point: vec![0.8, 0.1, 0.3],
                    weights: vec![0.25, 2.0, 1.5],
                    k: Some(50),
                    precision: None,
                },
            ];
            let batch = shared().knn_batch_lowered(&scan, &requests, 7).unwrap();
            for (req, res) in requests.iter().zip(batch.iter()) {
                let k = req.k.unwrap();
                assert_eq!(res.len(), k);
                let w = WeightedEuclidean::new(req.weights.clone()).unwrap();
                assert_eq!(res, &single.knn(&req.point, k, &w));
            }
        }

        #[test]
        fn empty_collection_serves_empty_results() {
            let empty = CollectionBuilder::new().build();
            let scan = MultiQueryScan::new(&empty);
            let requests = vec![KnnRequest::uniform(vec![0.1, 0.2, 0.3])];
            let res = shared().knn_batch_lowered(&scan, &requests, 5).unwrap();
            assert_eq!(res, vec![Vec::new()]);
        }

        #[test]
        fn serving_scan_uses_mirror_and_matches_f64() {
            let mut coll = collection();
            let requests = vec![
                KnnRequest::uniform(vec![0.2, 0.4, 0.6]),
                KnnRequest {
                    point: vec![0.8, 0.1, 0.3],
                    weights: vec![0.25, 2.0, 1.5],
                    k: Some(5),
                    precision: None,
                },
            ];
            // Without a mirror the serving scan is exactly the f64 scan.
            let baseline = {
                let scan = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
                shared().knn_batch_lowered(&scan, &requests, 10).unwrap()
            };
            coll.ensure_f32_mirror();
            let scan = SharedBypass::serving_scan(&coll);
            assert_eq!(scan.precision(), fbp_vecdb::Precision::F32Rescore);
            let served = shared().knn_batch_lowered(&scan, &requests, 10).unwrap();
            assert_eq!(served, baseline);
        }

        #[test]
        fn effective_precision_fallback_rule() {
            let mut coll = collection();
            let reqs = vec![KnnRequest::uniform(vec![0.1, 0.5, 0.3])];
            // No mirror, default scan → F64 (nothing to upgrade to).
            {
                let scan = MultiQueryScan::new(&coll);
                assert_eq!(
                    SharedBypass::effective_precision(&scan, &reqs).unwrap(),
                    Precision::F64
                );
            }
            coll.ensure_f32_mirror();
            let scan = MultiQueryScan::new(&coll);
            // Mirror + unpinned F64-default scan → upgraded to F32Rescore
            // (the serving_scan rule, now applied by knn_batch itself).
            assert_eq!(
                SharedBypass::effective_precision(&scan, &reqs).unwrap(),
                Precision::F32Rescore
            );
            // An explicit per-request pin beats the mirror upgrade.
            let pinned =
                vec![KnnRequest::uniform(vec![0.1, 0.5, 0.3]).with_precision(Precision::F64)];
            assert_eq!(
                SharedBypass::effective_precision(&scan, &pinned).unwrap(),
                Precision::F64
            );
            // Conflicting pins cannot share one pass.
            let mixed = vec![
                KnnRequest::uniform(vec![0.1, 0.5, 0.3]).with_precision(Precision::F64),
                KnnRequest::uniform(vec![0.4, 0.2, 0.8]).with_precision(Precision::F32Rescore),
            ];
            assert!(SharedBypass::effective_precision(&scan, &mixed).is_err());
            assert!(shared().knn_batch_lowered(&scan, &mixed, 5).is_err());
            // The upgraded pass answers bit-identically to the pinned
            // f64 pass (precision is a bandwidth knob, not a result knob).
            let upgraded = shared().knn_batch_lowered(&scan, &reqs, 10).unwrap();
            let forced_f64 = shared().knn_batch_lowered(&scan, &pinned, 10).unwrap();
            assert_eq!(upgraded, forced_f64);
        }

        #[test]
        fn empty_request_batch() {
            let coll = collection();
            let scan = MultiQueryScan::new(&coll);
            assert!(shared()
                .knn_batch_lowered(&scan, &[], 5)
                .unwrap()
                .is_empty());
        }
    }
}
