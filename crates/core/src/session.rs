//! The enriched retrieval system (Figures 4–5 of the paper).
//!
//! [`BypassSystem`] wires a k-NN engine, a relevance-feedback loop and a
//! [`FeedbackBypass`] module together and exposes one call per user
//! query, implementing the pseudo-code of Figure 5:
//!
//! ```text
//! v      = FeedbackBypass::Mopt(q)        // predicted OQPs
//! loop   { results; scores; newValues }   // the usual feedback loop
//! if v changed: FeedbackBypass::Insert(q, v)
//! ```

use crate::bypass::{FeedbackBypass, PredictedParams};
use crate::Result;
use fbp_feedback::{FeedbackConfig, FeedbackLoop, LoopResult, RelevanceOracle};
use fbp_simplex_tree::InsertOutcome;
use fbp_vecdb::{Collection, KnnEngine};

/// Everything that happened while serving one user query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// What FeedbackBypass predicted before the loop ran.
    pub predicted: PredictedParams,
    /// The feedback loop's trajectory (started from the prediction).
    pub loop_result: LoopResult,
    /// What the tree did with the converged parameters.
    pub inserted: InsertOutcome,
}

/// A retrieval system enriched with FeedbackBypass.
pub struct BypassSystem<'a, E: KnnEngine + ?Sized> {
    engine: &'a E,
    coll: &'a Collection,
    feedback: FeedbackConfig,
    bypass: FeedbackBypass,
}

impl<'a, E: KnnEngine + ?Sized> BypassSystem<'a, E> {
    /// Assemble the enriched system.
    pub fn new(
        engine: &'a E,
        coll: &'a Collection,
        feedback: FeedbackConfig,
        bypass: FeedbackBypass,
    ) -> Self {
        BypassSystem {
            engine,
            coll,
            feedback,
            bypass,
        }
    }

    /// The FeedbackBypass module (for stats or persistence).
    pub fn bypass(&self) -> &FeedbackBypass {
        &self.bypass
    }

    /// Consume the system, returning the (possibly updated) module.
    pub fn into_bypass(self) -> FeedbackBypass {
        self.bypass
    }

    /// Serve one user query end-to-end per Figure 5: predict, run the
    /// feedback loop from the prediction, store the converged parameters.
    pub fn serve_query(&mut self, q: &[f64], oracle: &dyn RelevanceOracle) -> Result<QueryOutcome> {
        let predicted = self.bypass.predict(q)?;
        let fb = FeedbackLoop::new(self.engine, self.coll, self.feedback.clone());
        let loop_result = fb.run_from(&predicted.point, &predicted.weights, oracle)?;
        // Figure 5: "if (vPred != v) Insert(q, v)" — only store when the
        // loop actually produced feedback information.
        let inserted = if loop_result.cycles > 0 {
            self.bypass
                .insert(q, &loop_result.point, &loop_result.weights)?
        } else {
            InsertOutcome::Skipped {
                delta_diff: 0.0,
                weight_diff: 0.0,
            }
        };
        Ok(QueryOutcome {
            predicted,
            loop_result,
            inserted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BypassConfig;
    use fbp_feedback::CategoryOracle;
    use fbp_vecdb::{CollectionBuilder, LinearScan};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// A tiny labelled histogram collection with two color-coherent
    /// categories.
    fn mini_dataset() -> (Collection, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut b = CollectionBuilder::new();
        let reds = b.category("reds");
        let blues = b.category("blues");
        let mut queries = Vec::new();
        let push =
            |b: &mut CollectionBuilder, rng: &mut StdRng, heavy: usize, label: u32| -> usize {
                // Histogram concentrated on `heavy` with noise elsewhere.
                let mut v = [0.0f64; 4];
                for x in v.iter_mut() {
                    *x = rng.gen_range(0.0..0.2);
                }
                v[heavy] += 1.0;
                let s: f64 = v.iter().sum();
                for x in v.iter_mut() {
                    *x /= s;
                }
                b.push(&v, label).unwrap()
            };
        for i in 0..25 {
            let idx = push(&mut b, &mut rng, 0, reds);
            if i < 5 {
                queries.push(idx);
            }
        }
        for _ in 0..25 {
            push(&mut b, &mut rng, 2, blues);
        }
        (b.build(), queries)
    }

    #[test]
    fn serve_query_learns_and_reuses() {
        let (coll, queries) = mini_dataset();
        let scan = LinearScan::new(&coll);
        let fbm = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let cfg = FeedbackConfig {
            k: 10,
            ..Default::default()
        };
        let mut sys = BypassSystem::new(&scan, &coll, cfg, fbm);
        let red_cat = 0;
        let oracle = CategoryOracle::new(&coll, red_cat);

        let q0: Vec<f64> = coll.vector(queries[0]).to_vec();
        let first = sys.serve_query(&q0, &oracle).unwrap();
        // Second time around, the module should already know the answer:
        // the loop starting from the prediction needs no more cycles than
        // the first run.
        let second = sys.serve_query(&q0, &oracle).unwrap();
        assert!(
            second.loop_result.cycles <= first.loop_result.cycles,
            "{} vs {}",
            second.loop_result.cycles,
            first.loop_result.cycles
        );
        // And its starting precision is at least the first run's final.
        assert!(
            second.loop_result.precision_trace[0]
                >= *first.loop_result.precision_trace.last().unwrap() - 1e-9
        );
    }

    #[test]
    fn no_feedback_means_no_insert() {
        let (coll, queries) = mini_dataset();
        let scan = LinearScan::new(&coll);
        let fbm = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
        let cfg = FeedbackConfig {
            k: 10,
            ..Default::default()
        };
        let mut sys = BypassSystem::new(&scan, &coll, cfg, fbm);
        // Oracle that likes nothing: the loop gets no feedback, so nothing
        // may be stored (Figure 5's vPred == v branch).
        let oracle = fbp_feedback::oracle::SetOracle::default();
        let q0: Vec<f64> = coll.vector(queries[0]).to_vec();
        let out = sys.serve_query(&q0, &oracle).unwrap();
        assert_eq!(out.loop_result.cycles, 0);
        assert!(matches!(out.inserted, InsertOutcome::Skipped { .. }));
        assert_eq!(sys.bypass().tree().stored_points(), 0);
    }
}
