//! Dimensionality-reduced query domains — the paper's named follow-up.
//!
//! §3: "statistical techniques for dimensionality reduction could be
//! applied to lower the dimensionality of both the input and the output
//! space. We do not consider dimensionality reduction in this paper, and
//! leave it as an interesting follow-up of our research."
//!
//! This module implements that follow-up with PCA: fit principal axes on
//! a sample of the collection, map query points into the top-`r`
//! principal coordinates (normalized into `[0,1]^r`), and run the Simplex
//! Tree over that `r`-dimensional unit cube instead of the full
//! `(D−1)`-simplex. Offsets are stored in reduced coordinates and lifted
//! back through the (orthonormal) component matrix; weights stay in the
//! full feature space — reduction shrinks the *input* domain where the
//! curse of dimensionality hurts the triangulation, not the distance
//! function.

use crate::bypass::PredictedParams;
use crate::{BypassError, Result};
use fbp_geometry::RootSimplex;
use fbp_linalg::{symmetric_eigen, Matrix};
use fbp_simplex_tree::{InsertOutcome, Oqp, OqpLayout, SimplexTree, TreeConfig};

/// PCA projection of feature vectors into a normalized reduced domain.
#[derive(Debug, Clone)]
pub struct PcaReducer {
    mean: Vec<f64>,
    /// `r × D`; rows are orthonormal principal axes.
    components: Matrix,
    /// Per-axis projection ranges used for the `[0,1]` normalization.
    lo: Vec<f64>,
    span: Vec<f64>,
    /// Fraction of sample variance captured by the kept axes.
    pub explained_variance: f64,
}

/// Padding added around the sample's projection range so unseen queries
/// rarely clamp.
const RANGE_MARGIN: f64 = 0.10;

impl PcaReducer {
    /// Fit on a sample of feature vectors, keeping `r` components.
    pub fn fit(samples: &[&[f64]], r: usize) -> Result<Self> {
        let Some(first) = samples.first() else {
            return Err(BypassError::BadQuery("empty PCA sample".into()));
        };
        let d = first.len();
        if r == 0 || r > d {
            return Err(BypassError::BadQuery(format!(
                "cannot keep {r} of {d} components"
            )));
        }
        let cov = fbp_linalg::covariance_matrix(d, samples);
        let eig = symmetric_eigen(&cov)
            .map_err(|e| BypassError::BadQuery(format!("covariance decomposition failed: {e}")))?;
        let mut mean = vec![0.0; d];
        for s in samples {
            for (m, &x) in mean.iter_mut().zip(s.iter()) {
                *m += x;
            }
        }
        for m in mean.iter_mut() {
            *m /= samples.len() as f64;
        }
        let mut components = Matrix::zeros(r, d);
        for k in 0..r {
            components.row_mut(k).copy_from_slice(eig.vectors.row(k));
        }
        // Projection ranges over the sample, padded.
        let mut lo = vec![f64::INFINITY; r];
        let mut hi = vec![f64::NEG_INFINITY; r];
        let mut centered = vec![0.0; d];
        for s in samples {
            for i in 0..d {
                centered[i] = s[i] - mean[i];
            }
            for k in 0..r {
                let z = dot(components.row(k), &centered);
                lo[k] = lo[k].min(z);
                hi[k] = hi[k].max(z);
            }
        }
        let mut span = Vec::with_capacity(r);
        for k in 0..r {
            let raw = (hi[k] - lo[k]).max(1e-9);
            let pad = raw * RANGE_MARGIN;
            lo[k] -= pad;
            span.push(raw + 2.0 * pad);
        }
        Ok(PcaReducer {
            mean,
            components,
            lo,
            span,
            explained_variance: eig.explained_variance(r),
        })
    }

    /// Kept components `r`.
    pub fn reduced_dim(&self) -> usize {
        self.components.rows()
    }

    /// Original feature dimensionality `D`.
    pub fn feature_dim(&self) -> usize {
        self.components.cols()
    }

    /// Project a feature vector into `[0,1]^r` (clamped at the padded
    /// sample range).
    pub fn transform(&self, q: &[f64]) -> Result<Vec<f64>> {
        let d = self.feature_dim();
        if q.len() != d {
            return Err(BypassError::DimMismatch {
                expected: d,
                got: q.len(),
            });
        }
        let centered: Vec<f64> = q.iter().zip(self.mean.iter()).map(|(x, m)| x - m).collect();
        Ok((0..self.reduced_dim())
            .map(|k| {
                let z = dot(self.components.row(k), &centered);
                ((z - self.lo[k]) / self.span[k]).clamp(0.0, 1.0)
            })
            .collect())
    }

    /// Express a feature-space displacement in reduced (normalized)
    /// coordinates — the inverse of [`Self::lift_delta`] on the kept
    /// subspace.
    pub fn project_delta(&self, delta: &[f64]) -> Result<Vec<f64>> {
        let d = self.feature_dim();
        if delta.len() != d {
            return Err(BypassError::DimMismatch {
                expected: d,
                got: delta.len(),
            });
        }
        Ok((0..self.reduced_dim())
            .map(|k| dot(self.components.row(k), delta) / self.span[k])
            .collect())
    }

    /// Lift a reduced-coordinate displacement back into feature space.
    pub fn lift_delta(&self, dz: &[f64]) -> Result<Vec<f64>> {
        let r = self.reduced_dim();
        if dz.len() != r {
            return Err(BypassError::DimMismatch {
                expected: r,
                got: dz.len(),
            });
        }
        let d = self.feature_dim();
        let mut out = vec![0.0; d];
        for (k, &dzk) in dz.iter().enumerate() {
            let scale = dzk * self.span[k];
            for (o, &c) in out.iter_mut().zip(self.components.row(k).iter()) {
                *o += scale * c;
            }
        }
        Ok(out)
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// FeedbackBypass over a PCA-reduced query domain.
///
/// Same `predict`/`insert` contract as [`crate::FeedbackBypass`], but the
/// Simplex Tree lives in `[0,1]^r` with `r ≪ D`: smaller simplices (each
/// split creates `r + 1` children instead of `D`), denser coverage per
/// stored point, cheaper lookups — at the cost of collapsing queries that
/// differ only outside the kept subspace.
#[derive(Debug, Clone)]
pub struct ReducedBypass {
    reducer: PcaReducer,
    tree: SimplexTree,
}

impl ReducedBypass {
    /// Build over a fitted reducer.
    pub fn new(reducer: PcaReducer, tree_config: TreeConfig) -> Result<Self> {
        let r = reducer.reduced_dim();
        let layout = OqpLayout::new(r, reducer.feature_dim());
        let tree = SimplexTree::new(RootSimplex::unit_cube(r), layout, tree_config)?;
        Ok(ReducedBypass { reducer, tree })
    }

    /// Fit PCA on `samples` and build in one step.
    pub fn fit(samples: &[&[f64]], r: usize, tree_config: TreeConfig) -> Result<Self> {
        Self::new(PcaReducer::fit(samples, r)?, tree_config)
    }

    /// The fitted reducer.
    pub fn reducer(&self) -> &PcaReducer {
        &self.reducer
    }

    /// The underlying tree (stats, inspection).
    pub fn tree(&self) -> &SimplexTree {
        &self.tree
    }

    /// Predict optimal parameters for a full-dimensional query point.
    pub fn predict(&self, q: &[f64]) -> Result<PredictedParams> {
        let z = self.reducer.transform(q)?;
        let pred = self.tree.predict(&z)?;
        let lifted = self.reducer.lift_delta(&pred.oqp.delta)?;
        let point: Vec<f64> = q.iter().zip(lifted.iter()).map(|(x, d)| x + d).collect();
        Ok(PredictedParams {
            point,
            weights: pred.oqp.weights,
            nodes_visited: pred.nodes_visited,
        })
    }

    /// Store converged parameters for a full-dimensional query point.
    pub fn insert(&mut self, q: &[f64], qopt: &[f64], weights: &[f64]) -> Result<InsertOutcome> {
        if qopt.len() != q.len() {
            return Err(BypassError::DimMismatch {
                expected: q.len(),
                got: qopt.len(),
            });
        }
        let z = self.reducer.transform(q)?;
        let delta_full: Vec<f64> = qopt.iter().zip(q.iter()).map(|(a, b)| a - b).collect();
        let dz = self.reducer.project_delta(&delta_full)?;
        let mut oqp = Oqp {
            delta: dz,
            weights: weights.to_vec(),
        };
        oqp.normalize_weights();
        Ok(self.tree.insert(&z, &oqp)?)
    }

    /// Serialize module + fitted reducer (same durability guarantees as
    /// [`crate::FeedbackBypass::to_bytes`]: the tree image carries its own
    /// checksum; the reducer header is length-validated).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let r = self.reducer.reduced_dim() as u32;
        let d = self.reducer.feature_dim() as u32;
        out.extend_from_slice(&r.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
        let put_f64s = |vals: &[f64], out: &mut Vec<u8>| {
            for &x in vals {
                out.extend_from_slice(&x.to_le_bytes());
            }
        };
        put_f64s(&self.reducer.mean, &mut out);
        put_f64s(self.reducer.components.as_slice(), &mut out);
        put_f64s(&self.reducer.lo, &mut out);
        put_f64s(&self.reducer.span, &mut out);
        put_f64s(&[self.reducer.explained_variance], &mut out);
        out.extend_from_slice(&self.tree.to_bytes());
        out
    }

    /// Restore a module serialized with [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let corrupt =
            |msg: &str| BypassError::Tree(fbp_simplex_tree::TreeError::Corrupt(msg.to_string()));
        if data.len() < 8 {
            return Err(corrupt("reduced image shorter than header"));
        }
        let r = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let d = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
        if r == 0 || d == 0 || r > d || d > 1 << 20 {
            return Err(corrupt("implausible reducer dimensions"));
        }
        let floats = d + r * d + r + r + 1;
        let header_len = 8 + floats * 8;
        if data.len() < header_len {
            return Err(corrupt("truncated reducer header"));
        }
        let mut vals = data[8..header_len]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()));
        let mut take = |n: usize| -> Vec<f64> { (&mut vals).take(n).collect() };
        let mean = take(d);
        let comp_raw = take(r * d);
        let lo = take(r);
        let span = take(r);
        let explained_variance = take(1)[0];
        // `!(s > 0.0)` deliberately catches NaN as well as s <= 0.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if span.iter().any(|&s| !(s > 0.0)) {
            return Err(corrupt("non-positive reducer span"));
        }
        let reducer = PcaReducer {
            mean,
            components: Matrix::from_vec(r, d, comp_raw),
            lo,
            span,
            explained_variance,
        };
        let tree = SimplexTree::from_bytes(&data[header_len..])?;
        if tree.dim() != r || tree.layout().weight_dim != d {
            return Err(corrupt("tree/reducer dimension mismatch"));
        }
        Ok(ReducedBypass { reducer, tree })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Samples living (noisily) on a 2-plane inside R^6.
    fn planar_samples(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a = rng.gen_range(-1.0..1.0);
                let b = rng.gen_range(-1.0..1.0);
                let eps = 0.01;
                vec![
                    a + rng.gen_range(-eps..eps),
                    b + rng.gen_range(-eps..eps),
                    a + b + rng.gen_range(-eps..eps),
                    a - b + rng.gen_range(-eps..eps),
                    0.5 * a + rng.gen_range(-eps..eps),
                    rng.gen_range(-eps..eps),
                ]
            })
            .collect()
    }

    #[test]
    fn pca_finds_the_plane() {
        let rows = planar_samples(300, 1);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let red = PcaReducer::fit(&refs, 2).unwrap();
        assert!(
            red.explained_variance > 0.99,
            "2 axes should capture a 2-plane: {}",
            red.explained_variance
        );
        // Transforms land in [0,1]^2.
        for r in rows.iter().take(50) {
            let z = red.transform(r).unwrap();
            assert_eq!(z.len(), 2);
            assert!(z.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn lift_project_roundtrip_on_kept_subspace() {
        let rows = planar_samples(200, 2);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let red = PcaReducer::fit(&refs, 3).unwrap();
        // A displacement inside the kept subspace survives the roundtrip.
        let dz = vec![0.05, -0.03, 0.01];
        let lifted = red.lift_delta(&dz).unwrap();
        let back = red.project_delta(&lifted).unwrap();
        for (a, b) in dz.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-9, "{dz:?} vs {back:?}");
        }
    }

    #[test]
    fn fit_validation() {
        assert!(PcaReducer::fit(&[], 2).is_err());
        let row = vec![1.0, 2.0];
        let refs: Vec<&[f64]> = vec![&row];
        assert!(PcaReducer::fit(&refs, 0).is_err());
        assert!(PcaReducer::fit(&refs, 3).is_err());
        assert!(PcaReducer::fit(&refs, 2).is_ok());
    }

    #[test]
    fn reduced_bypass_learns_and_predicts() {
        let rows = planar_samples(300, 3);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut rb = ReducedBypass::fit(&refs, 2, TreeConfig::default()).unwrap();
        assert_eq!(rb.reducer().reduced_dim(), 2);

        // Fresh module predicts "no change".
        let q = &rows[0];
        let p0 = rb.predict(q).unwrap();
        for (a, b) in p0.point.iter().zip(q.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(p0.weights.iter().all(|&w| (w - 1.0).abs() < 1e-9));

        // Insert learned parameters; prediction at the same point recalls
        // the weights exactly and the point approximately (Δ only lives in
        // the kept subspace).
        let qopt: Vec<f64> = q.iter().map(|x| x + 0.02).collect();
        let weights = vec![3.0, 1.0, 1.0, 0.5, 1.0, 1.0];
        rb.insert(q, &qopt, &weights).unwrap();
        let p1 = rb.predict(q).unwrap();
        assert!(
            (p1.weights[0] / p1.weights[1] - 3.0).abs() < 1e-6,
            "{:?}",
            p1.weights
        );
        assert!(rb.tree().stored_points() == 1);
        // The tree works in 2 dims: one split creates ≤ 3 children.
        assert!(rb.tree().node_count() <= 4);
    }

    #[test]
    fn reduced_tree_is_shallower_per_point() {
        // Same insert stream into a 2-d reduced tree: more inserts are
        // spatially shared, lookups stay short.
        let rows = planar_samples(400, 5);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut rb = ReducedBypass::fit(&refs, 2, TreeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for (i, row) in rows.iter().take(60).enumerate() {
            let qopt: Vec<f64> = row.iter().map(|x| x + rng.gen_range(-0.01..0.01)).collect();
            let w: Vec<f64> = (0..6).map(|k| 1.0 + ((i + k) % 5) as f64).collect();
            rb.insert(row, &qopt, &w).unwrap();
        }
        rb.tree().verify_invariants().unwrap();
        let hit_depth = rb.predict(&rows[100]).unwrap().nodes_visited;
        assert!(hit_depth >= 1);
        assert!(rb.tree().stored_points() > 30);
    }

    #[test]
    fn persistence_roundtrip() {
        let rows = planar_samples(150, 11);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut rb = ReducedBypass::fit(&refs, 2, TreeConfig::default()).unwrap();
        let q = &rows[0];
        let qopt: Vec<f64> = q.iter().map(|x| x + 0.03).collect();
        rb.insert(q, &qopt, &[2.0, 1.0, 1.0, 1.0, 0.5, 1.0])
            .unwrap();

        let image = rb.to_bytes();
        let back = ReducedBypass::from_bytes(&image).unwrap();
        assert_eq!(back.tree().stored_points(), rb.tree().stored_points());
        assert!(
            (back.reducer().explained_variance - rb.reducer().explained_variance).abs() < 1e-15
        );
        for probe in rows.iter().take(10) {
            let a = rb.predict(probe).unwrap();
            let b = back.predict(probe).unwrap();
            assert_eq!(a, b);
        }
        // Corruption in header and in tree body both rejected.
        assert!(ReducedBypass::from_bytes(&image[..7]).is_err());
        let mut bad = image.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(ReducedBypass::from_bytes(&bad).is_err());
        let mut bad_dims = image.clone();
        bad_dims[0] = 0; // r = 0
        assert!(ReducedBypass::from_bytes(&bad_dims).is_err());
    }

    #[test]
    fn insert_dim_mismatch() {
        let rows = planar_samples(50, 7);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut rb = ReducedBypass::fit(&refs, 2, TreeConfig::default()).unwrap();
        let q = &rows[0];
        assert!(rb.insert(q, &[0.0; 3], &[1.0; 6]).is_err());
        assert!(rb.predict(&[0.0; 3]).is_err());
    }
}
