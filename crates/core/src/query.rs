//! The first-class query model: [`QuerySpec`] and its lowering.
//!
//! The paper's interactive loop assumes one anchor point per query, but
//! real relevance-feedback sessions hand back *sets* of positive and
//! negative examples. `QuerySpec` is the one type that captures every
//! query shape the stack serves — a plain anchor, an anchor plus
//! positive/negative example sets combined Rocchio-style
//! (`q' = α·q + β·centroid(good) − γ·centroid(bad)`), per-spec result
//! count `k`, and a scan-precision pin — and [`QuerySpec::lower`] is the
//! **single canonicalization step** that turns any of them into the
//! kernel-ready [`LoweredQuery`] *before* the scan.
//!
//! Everything downstream of lowering — kernels, sharding, bound
//! propagation, the router's key-space merge — sees only the lowered
//! `(point, weights, k, precision)` form and is untouched by new query
//! shapes. That is what preserves the repo's bit-identity invariant: a
//! multi-example query is answered **bit-identical** to a flat
//! [`LinearScan`](fbp_vecdb::LinearScan) against its manually derived
//! anchor, because by the time a scan runs there *is* only the derived
//! anchor.
//!
//! ## Lowering, normatively
//!
//! With α/β/γ from [`RocchioWeights`] (defaults `1.0 / 0.75 / 0.25`):
//!
//! 1. **Trivial case** — no positives, no negatives, `α = 1.0`, no
//!    clamp: the anchor is returned **verbatim** (not recomputed), so a
//!    plain one-anchor spec lowers to exactly the bytes it was built
//!    from.
//! 2. Otherwise the derived anchor is
//!    [`fbp_feedback::rocchio`] over the example sets with unit scores:
//!    `out = α·anchor`, `out += β·mean(positives)` (term dropped when
//!    the set is empty), `out −= γ·mean(negatives)` (likewise) — the
//!    **same code** the server-side feedback transition runs, so a
//!    lowered spec and a [`FeedbackStepper`](fbp_feedback::FeedbackStepper)
//!    Rocchio step agree bitwise, not just approximately.
//! 3. With [`QuerySpecBuilder::clamp_to_zero`], every derived component
//!    is clamped to `max(0, ·)` — the classic text-retrieval Rocchio
//!    variant for non-negative feature domains (histograms).
//!
//! Validation happens **once**, in [`QuerySpecBuilder::build`]; a built
//! spec lowers infallibly. Construction errors are the typed
//! [`RequestError`] (not strings), and the serving layers surface the
//! same variants as distinct wire error codes.

use crate::shared::KnnRequest;
use fbp_feedback::{rocchio, ScoredPoint};
use fbp_vecdb::Precision;

/// Typed validation failure of a query spec or request batch.
///
/// One enum covers every way a request can be malformed, in-process and
/// over the wire: the serving layers map each variant to its own
/// protocol error code, so a client can distinguish "your vector is the
/// wrong length" from "your precision pins conflict" without parsing
/// message strings.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// A vector (anchor, example, or weights) disagrees with the
    /// feature dimensionality.
    DimMismatch {
        /// Dimensionality the collection/module serves.
        expected: usize,
        /// Dimensionality actually supplied.
        got: usize,
    },
    /// A distance weight is non-finite or not strictly positive.
    BadWeight {
        /// Component index of the offending weight.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A query or example component is NaN or infinite.
    NonFiniteComponent {
        /// Component index of the offending value.
        index: usize,
    },
    /// The spec has no active term: zero `α` and no examples leaves
    /// nothing to derive an anchor from.
    EmptyExampleSet,
    /// Requests in one batch pin conflicting scan precisions (one pass
    /// streams one buffer).
    PrecisionConflict,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            RequestError::BadWeight { index, value } => {
                write!(f, "weight[{index}] = {value} is not finite and positive")
            }
            RequestError::NonFiniteComponent { index } => {
                write!(f, "component [{index}] is not finite")
            }
            RequestError::EmptyExampleSet => {
                write!(f, "no active term: alpha = 0 and no examples")
            }
            RequestError::PrecisionConflict => {
                write!(f, "requests pin conflicting scan precisions for one pass")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// The Rocchio combination coefficients `α` (anchor), `β` (positive
/// centroid), `γ` (negative centroid).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocchioWeights {
    /// Weight of the original anchor.
    pub alpha: f64,
    /// Weight of the positive-example centroid.
    pub beta: f64,
    /// Weight of the negative-example centroid.
    pub gamma: f64,
}

impl Default for RocchioWeights {
    /// The classic text-retrieval defaults: `α = 1.0`, `β = 0.75`,
    /// `γ = 0.25`.
    fn default() -> Self {
        RocchioWeights {
            alpha: 1.0,
            beta: 0.75,
            gamma: 0.25,
        }
    }
}

impl RocchioWeights {
    /// Explicit coefficients.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Self {
        RocchioWeights { alpha, beta, gamma }
    }
}

/// One query, as the caller means it: an anchor point, optional
/// positive/negative example sets with their Rocchio coefficients, an
/// optional per-component metric, per-spec `k`, and a scan-precision
/// pin.
///
/// Built only through [`QuerySpec::builder`] (all validation lives in
/// [`QuerySpecBuilder::build`]); consumed by lowering
/// ([`QuerySpec::lower`]) into the kernel-ready [`LoweredQuery`] the
/// serving front-ends ([`SharedBypass::knn_batch`](crate::SharedBypass::knn_batch),
/// [`ShardedBypass::knn_batch`](crate::ShardedBypass::knn_batch)) scan
/// with.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    anchor: Vec<f64>,
    positives: Vec<Vec<f64>>,
    negatives: Vec<Vec<f64>>,
    rocchio: RocchioWeights,
    clamp_to_zero: bool,
    weights: Option<Vec<f64>>,
    k: Option<usize>,
    precision: Option<Precision>,
}

impl QuerySpec {
    /// Start building a spec anchored at `anchor`.
    pub fn builder(anchor: Vec<f64>) -> QuerySpecBuilder {
        QuerySpecBuilder {
            spec: QuerySpec {
                anchor,
                positives: Vec::new(),
                negatives: Vec::new(),
                rocchio: RocchioWeights::default(),
                clamp_to_zero: false,
                weights: None,
                k: None,
                precision: None,
            },
        }
    }

    /// The anchor point as supplied.
    pub fn anchor(&self) -> &[f64] {
        &self.anchor
    }

    /// Positive examples, in insertion order.
    pub fn positives(&self) -> &[Vec<f64>] {
        &self.positives
    }

    /// Negative examples, in insertion order.
    pub fn negatives(&self) -> &[Vec<f64>] {
        &self.negatives
    }

    /// The Rocchio coefficients in effect.
    pub fn rocchio(&self) -> RocchioWeights {
        self.rocchio
    }

    /// Whether derived components are clamped to `max(0, ·)`.
    pub fn clamps_to_zero(&self) -> bool {
        self.clamp_to_zero
    }

    /// The per-spec result count, if pinned.
    pub fn k(&self) -> Option<usize> {
        self.k
    }

    /// The scan-precision pin, if any.
    pub fn precision(&self) -> Option<Precision> {
        self.precision
    }

    /// The distance weights, if set (lowering defaults to uniform).
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// The Rocchio-derived anchor this spec searches from — the
    /// normative derivation the module docs spell out. Exposed so tests
    /// and wire handlers can pin "spec result ≡ flat scan on the
    /// derived anchor" without re-deriving by hand.
    pub fn derived_anchor(&self) -> Vec<f64> {
        if self.positives.is_empty()
            && self.negatives.is_empty()
            && self.rocchio.alpha == 1.0
            && !self.clamp_to_zero
        {
            // Trivial case: the anchor verbatim, bit-for-bit.
            return self.anchor.clone();
        }
        let good: Vec<ScoredPoint> = self
            .positives
            .iter()
            .map(|p| ScoredPoint::new(p, 1.0))
            .collect();
        let bad: Vec<ScoredPoint> = self
            .negatives
            .iter()
            .map(|p| ScoredPoint::new(p, 1.0))
            .collect();
        let mut out = rocchio(
            &self.anchor,
            &good,
            &bad,
            self.rocchio.alpha,
            self.rocchio.beta,
            self.rocchio.gamma,
        )
        .expect("builder validated example dimensions");
        if self.clamp_to_zero {
            for v in &mut out {
                *v = v.max(0.0);
            }
        }
        out
    }

    /// Lower to the kernel-ready form: derive the anchor, default the
    /// metric to uniform when unset, and carry `k`/precision through.
    /// Infallible — every failure mode was rejected at
    /// [`QuerySpecBuilder::build`].
    pub fn lower(&self) -> LoweredQuery {
        let point = self.derived_anchor();
        let weights = match &self.weights {
            Some(w) => w.clone(),
            None => vec![1.0; self.anchor.len()],
        };
        LoweredQuery {
            request: KnnRequest {
                point,
                weights,
                k: self.k,
                precision: self.precision,
            },
        }
    }
}

/// The kernel-ready form a [`QuerySpec`] lowers to: one derived anchor
/// point, one weighted-Euclidean weight vector, the per-query `k` and
/// precision pin. This is the *only* shape the scan, sharding, and
/// router layers ever see — in-process it is carried as a
/// [`KnnRequest`], which [`Self::into_request`] unwraps.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredQuery {
    request: KnnRequest,
}

impl LoweredQuery {
    /// The derived anchor the scan searches from.
    pub fn point(&self) -> &[f64] {
        &self.request.point
    }

    /// The per-component distance weights.
    pub fn weights(&self) -> &[f64] {
        &self.request.weights
    }

    /// Per-query result count, if pinned.
    pub fn k(&self) -> Option<usize> {
        self.request.k
    }

    /// Scan-precision pin, if any.
    pub fn precision(&self) -> Option<Precision> {
        self.request.precision
    }

    /// Borrow the lowered form as the serving-layer request type.
    pub fn request(&self) -> &KnnRequest {
        &self.request
    }

    /// Unwrap into the serving-layer request type.
    pub fn into_request(self) -> KnnRequest {
        self.request
    }
}

/// The one construction path for [`QuerySpec`]: accumulate anchor,
/// examples, coefficients, metric, `k`, and precision, then validate
/// everything in [`Self::build`].
#[derive(Debug, Clone)]
pub struct QuerySpecBuilder {
    spec: QuerySpec,
}

impl QuerySpecBuilder {
    /// Add one positive example.
    pub fn positive(mut self, example: Vec<f64>) -> Self {
        self.spec.positives.push(example);
        self
    }

    /// Add one negative example.
    pub fn negative(mut self, example: Vec<f64>) -> Self {
        self.spec.negatives.push(example);
        self
    }

    /// Set the whole positive-example set at once (wire decode path).
    pub fn positives(mut self, examples: Vec<Vec<f64>>) -> Self {
        self.spec.positives = examples;
        self
    }

    /// Set the whole negative-example set at once (wire decode path).
    pub fn negatives(mut self, examples: Vec<Vec<f64>>) -> Self {
        self.spec.negatives = examples;
        self
    }

    /// Override the default `α/β/γ` coefficients.
    pub fn rocchio(mut self, weights: RocchioWeights) -> Self {
        self.spec.rocchio = weights;
        self
    }

    /// Clamp every derived component to `max(0, ·)` (the non-negative
    /// Rocchio variant for histogram-like domains).
    pub fn clamp_to_zero(mut self, clamp: bool) -> Self {
        self.spec.clamp_to_zero = clamp;
        self
    }

    /// Set explicit distance weights (lowering defaults to uniform).
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.spec.weights = Some(weights);
        self
    }

    /// Pin the per-spec result count.
    pub fn k(mut self, k: usize) -> Self {
        self.spec.k = Some(k);
        self
    }

    /// Pin the scan precision of the pass serving this spec.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.spec.precision = Some(precision);
        self
    }

    /// Validate and seal the spec. Checks, in order:
    ///
    /// * every example matches the anchor's dimensionality
    ///   ([`RequestError::DimMismatch`]);
    /// * anchor, examples, and Rocchio coefficients are all finite
    ///   ([`RequestError::NonFiniteComponent`]);
    /// * explicit weights match the anchor's dimensionality and are
    ///   finite and strictly positive ([`RequestError::BadWeight`]);
    /// * at least one term is active — `α ≠ 0` or a non-empty example
    ///   set ([`RequestError::EmptyExampleSet`]).
    pub fn build(self) -> Result<QuerySpec, RequestError> {
        let spec = self.spec;
        let dim = spec.anchor.len();
        check_finite(&spec.anchor)?;
        for ex in spec.positives.iter().chain(spec.negatives.iter()) {
            if ex.len() != dim {
                return Err(RequestError::DimMismatch {
                    expected: dim,
                    got: ex.len(),
                });
            }
            check_finite(ex)?;
        }
        for (i, c) in [spec.rocchio.alpha, spec.rocchio.beta, spec.rocchio.gamma]
            .iter()
            .enumerate()
        {
            if !c.is_finite() {
                return Err(RequestError::NonFiniteComponent { index: i });
            }
        }
        if let Some(w) = &spec.weights {
            if w.len() != dim {
                return Err(RequestError::DimMismatch {
                    expected: dim,
                    got: w.len(),
                });
            }
            validate_weights(w)?;
        }
        if spec.rocchio.alpha == 0.0 && spec.positives.is_empty() && spec.negatives.is_empty() {
            return Err(RequestError::EmptyExampleSet);
        }
        Ok(spec)
    }
}

fn check_finite(v: &[f64]) -> Result<(), RequestError> {
    match v.iter().position(|c| !c.is_finite()) {
        Some(index) => Err(RequestError::NonFiniteComponent { index }),
        None => Ok(()),
    }
}

/// Shared weight-vector rule (the metric's own invariant, checked up
/// front so it reports a typed error instead of a scan-layer string):
/// every weight finite and strictly positive.
pub(crate) fn validate_weights(w: &[f64]) -> Result<(), RequestError> {
    for (index, &value) in w.iter().enumerate() {
        if !value.is_finite() || value <= 0.0 {
            return Err(RequestError::BadWeight { index, value });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(examples: &[Vec<f64>]) -> Vec<f64> {
        let dim = examples[0].len();
        let mut acc = vec![0.0; dim];
        for e in examples {
            for d in 0..dim {
                acc[d] += e[d];
            }
        }
        let n = examples.len() as f64;
        acc.iter().map(|v| v / n).collect()
    }

    #[test]
    fn trivial_spec_lowers_to_anchor_verbatim() {
        let anchor = vec![0.25, -0.5, 0.125, 3.0];
        let spec = QuerySpec::builder(anchor.clone()).build().unwrap();
        let low = spec.lower();
        assert_eq!(low.point(), anchor.as_slice());
        assert_eq!(low.weights(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(low.k(), None);
        assert_eq!(low.precision(), None);
    }

    #[test]
    fn positives_only_matches_manual_rocchio() {
        let anchor = vec![0.5, 0.5];
        let pos = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.25]];
        let spec = QuerySpec::builder(anchor.clone())
            .positives(pos.clone())
            .rocchio(RocchioWeights::new(1.0, 0.75, 0.25))
            .build()
            .unwrap();
        let m = mean(&pos);
        let expect: Vec<f64> = anchor
            .iter()
            .zip(&m)
            .map(|(a, c)| 1.0 * a + 0.75 * c)
            .collect();
        assert_eq!(spec.derived_anchor(), expect);
    }

    #[test]
    fn negatives_only_subtracts_the_centroid() {
        let anchor = vec![0.5, 0.5];
        let neg = vec![vec![1.0, 1.0], vec![0.0, 1.0]];
        let spec = QuerySpec::builder(anchor.clone())
            .negatives(neg.clone())
            .build()
            .unwrap();
        let m = mean(&neg);
        let expect: Vec<f64> = anchor
            .iter()
            .zip(&m)
            .map(|(a, c)| 1.0 * a - 0.25 * c)
            .collect();
        assert_eq!(spec.derived_anchor(), expect);
    }

    #[test]
    fn clamp_to_zero_floors_negative_components() {
        let spec = QuerySpec::builder(vec![0.1, 0.1])
            .negative(vec![4.0, 0.0])
            .rocchio(RocchioWeights::new(1.0, 0.75, 1.0))
            .clamp_to_zero(true)
            .build()
            .unwrap();
        let derived = spec.derived_anchor();
        assert_eq!(derived[0], 0.0, "component driven negative must clamp");
        assert!(derived[1] > 0.0);
    }

    #[test]
    fn build_rejects_dim_mismatched_examples() {
        let err = QuerySpec::builder(vec![0.1, 0.2])
            .positive(vec![0.1, 0.2, 0.3])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            RequestError::DimMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn build_rejects_non_finite_components() {
        let err = QuerySpec::builder(vec![0.1, f64::NAN]).build().unwrap_err();
        assert_eq!(err, RequestError::NonFiniteComponent { index: 1 });
        let err = QuerySpec::builder(vec![0.1, 0.2])
            .negative(vec![f64::INFINITY, 0.0])
            .build()
            .unwrap_err();
        assert_eq!(err, RequestError::NonFiniteComponent { index: 0 });
    }

    #[test]
    fn build_rejects_bad_weights() {
        let err = QuerySpec::builder(vec![0.1, 0.2])
            .weights(vec![1.0, -2.0])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            RequestError::BadWeight {
                index: 1,
                value: -2.0
            }
        );
        let err = QuerySpec::builder(vec![0.1, 0.2])
            .weights(vec![0.0, 1.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, RequestError::BadWeight { index: 0, .. }));
    }

    #[test]
    fn build_rejects_specs_with_no_active_term() {
        let err = QuerySpec::builder(vec![0.1, 0.2])
            .rocchio(RocchioWeights::new(0.0, 0.75, 0.25))
            .build()
            .unwrap_err();
        assert_eq!(err, RequestError::EmptyExampleSet);
        // One example makes the spec meaningful again.
        assert!(QuerySpec::builder(vec![0.1, 0.2])
            .rocchio(RocchioWeights::new(0.0, 1.0, 0.0))
            .positive(vec![0.3, 0.4])
            .build()
            .is_ok());
    }

    #[test]
    fn unit_score_rocchio_matches_feedback_crate_bitwise() {
        // The lowering *is* fbp_feedback::rocchio with unit scores; pin
        // the bitwise agreement the docs promise.
        let anchor = vec![0.3, 0.7, 0.1];
        let pos = vec![vec![0.9, 0.2, 0.4], vec![0.1, 0.8, 0.6]];
        let neg = vec![vec![0.5, 0.5, 0.5]];
        let spec = QuerySpec::builder(anchor.clone())
            .positives(pos.clone())
            .negatives(neg.clone())
            .rocchio(RocchioWeights::new(0.9, 0.6, 0.15))
            .build()
            .unwrap();
        let good: Vec<ScoredPoint> = pos.iter().map(|p| ScoredPoint::new(p, 1.0)).collect();
        let bad: Vec<ScoredPoint> = neg.iter().map(|p| ScoredPoint::new(p, 1.0)).collect();
        let manual = rocchio(&anchor, &good, &bad, 0.9, 0.6, 0.15).unwrap();
        assert_eq!(spec.derived_anchor(), manual);
    }
}
