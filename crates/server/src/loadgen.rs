//! Closed-loop load generator: N concurrent sessions driving the full
//! interactive feedback protocol over the wire with configurable
//! think-time — the IDEBench-style workload (latency-bound exploratory
//! sessions, not isolated queries) the micro-batcher exists to serve.
//!
//! Each session thread owns one connection and processes its share of
//! the query pool: think, search, judge, repeat until the server reports
//! the query done (or the round cap trips), then move to the next
//! query. Latency is measured per `Knn` round trip; throughput is
//! searches completed over the whole run's wall clock.

use crate::client::{Client, ClientError};
use crate::protocol::StatsSnapshot;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Client-side relevance judge: which of one round's result ids are
/// relevant to the query (by index into the load generator's pool).
/// `None` results skip feedback entirely (pure k-NN traffic).
pub trait Relevance: Sync {
    /// Relevant subset of `result_ids` for pool query `query_index`.
    fn relevant(&self, query_index: usize, result_ids: &[u32]) -> Vec<u32>;
}

impl<F: Fn(usize, &[u32]) -> Vec<u32> + Sync> Relevance for F {
    fn relevant(&self, query_index: usize, result_ids: &[u32]) -> Vec<u32> {
        self(query_index, result_ids)
    }
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Concurrent closed-loop sessions.
    pub sessions: usize,
    /// Queries each session processes (disjoint round-robin slices of
    /// the pool; the pool must hold `sessions × queries_per_session`).
    pub queries_per_session: usize,
    /// Results per search.
    pub k: u32,
    /// Pause before every search round (user think-time).
    pub think_time: Duration,
    /// Client-side cap on rounds per query, a safety net over the
    /// server's own cycle cap.
    pub max_rounds: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            sessions: 8,
            queries_per_session: 10,
            k: 50,
            think_time: Duration::from_millis(5),
            max_rounds: 64,
        }
    }
}

/// Aggregate outcome of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// `Knn` round trips completed.
    pub searches: u64,
    /// Pool queries fully processed.
    pub queries: u64,
    /// Queries the server reported converged.
    pub converged: u64,
    /// `Knn` replies flagged degraded (a router answered from a
    /// surviving-shard subset under `FailurePolicy::Degraded`).
    pub degraded: u64,
    /// Wall clock of the whole run.
    pub elapsed: Duration,
    /// Median `Knn` round-trip latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile `Knn` round-trip latency, microseconds.
    pub latency_p99_us: f64,
    /// Server metrics snapshot taken right after the run.
    pub server: StatsSnapshot,
}

impl LoadgenReport {
    /// Serving throughput over the run.
    pub fn searches_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.searches as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Drive `opts.sessions` concurrent sessions against the server at
/// `addr`, each working through its slice of `queries` (session `s`
/// takes pool indices `s`, `s + S`, `s + 2S`, …).
///
/// # Panics
///
/// Panics when the pool is smaller than
/// `sessions × queries_per_session`.
pub fn run_loadgen(
    addr: SocketAddr,
    queries: &[Vec<f64>],
    judge: Option<&dyn Relevance>,
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ClientError> {
    let need = opts.sessions * opts.queries_per_session;
    assert!(
        need <= queries.len(),
        "need {need} pool queries, have {}",
        queries.len()
    );
    let t0 = Instant::now();
    let per_session: Vec<Result<SessionTally, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.sessions)
            .map(|s| scope.spawn(move || run_session(addr, s, queries, judge, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen session thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut searches = 0u64;
    let mut queries_done = 0u64;
    let mut converged = 0u64;
    let mut degraded = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for tally in per_session {
        let tally = tally?;
        searches += tally.searches;
        queries_done += tally.queries;
        converged += tally.converged;
        degraded += tally.degraded;
        latencies.extend(tally.latencies_ns);
    }
    latencies.sort_unstable();

    let server = Client::connect(addr)?.stats()?;
    Ok(LoadgenReport {
        searches,
        queries: queries_done,
        converged,
        degraded,
        elapsed,
        latency_p50_us: crate::metrics::percentile_us(&latencies, 0.50),
        latency_p99_us: crate::metrics::percentile_us(&latencies, 0.99),
        server,
    })
}

struct SessionTally {
    searches: u64,
    queries: u64,
    converged: u64,
    degraded: u64,
    latencies_ns: Vec<u64>,
}

fn run_session(
    addr: SocketAddr,
    slot: usize,
    queries: &[Vec<f64>],
    judge: Option<&dyn Relevance>,
    opts: &LoadgenOptions,
) -> Result<SessionTally, ClientError> {
    let mut client = Client::connect(addr)?;
    let (session, _dim) = client.open_session()?;
    let mut tally = SessionTally {
        searches: 0,
        queries: 0,
        converged: 0,
        degraded: 0,
        latencies_ns: Vec::new(),
    };
    for qi in 0..opts.queries_per_session {
        let pool_index = qi * opts.sessions + slot;
        let query = &queries[pool_index];
        // The judgment upload overlaps the think-time: send the feedback
        // frame, think, then collect the ack that arrived meanwhile —
        // so each round's critical path is think + the knn round trip,
        // exactly the interactive pattern (the user reads results while
        // the system absorbs the judgment).
        let mut ack_outstanding = false;
        for _round in 0..opts.max_rounds {
            std::thread::sleep(opts.think_time);
            if ack_outstanding {
                ack_outstanding = false;
                let ack = client.recv_feedback()?;
                if ack.done {
                    tally.converged += u64::from(ack.converged);
                    break;
                }
            }
            let t0 = Instant::now();
            let reply = client.knn(session, opts.k, query)?;
            tally.latencies_ns.push(t0.elapsed().as_nanos() as u64);
            tally.searches += 1;
            tally.degraded += u64::from(reply.degraded);
            if reply.done {
                tally.converged += u64::from(reply.converged);
                break;
            }
            let Some(judge) = judge else {
                // Pure k-NN traffic: nothing to learn, move on.
                break;
            };
            let ids: Vec<u32> = reply.neighbors.iter().map(|n| n.index).collect();
            client.send_feedback(session, &judge.relevant(pool_index, &ids))?;
            ack_outstanding = true;
        }
        if ack_outstanding {
            // Round cap tripped with a judgment in flight.
            let _ = client.recv_feedback()?;
        }
        tally.queries += 1;
    }
    client.close_session(session)?;
    Ok(tally)
}
