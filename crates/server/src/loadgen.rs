//! Closed-loop load generator: N concurrent sessions driving the full
//! interactive feedback protocol over the wire with configurable
//! think-time — the IDEBench-style workload (latency-bound exploratory
//! sessions, not isolated queries) the micro-batcher exists to serve.
//!
//! Each session thread owns one connection and processes its share of
//! the query pool: think, search, judge, repeat until the server reports
//! the query done (or the round cap trips), then move to the next
//! query. Latency is measured per `Knn` round trip; throughput is
//! searches completed over the whole run's wall clock.

use crate::client::{Client, ClientError};
use crate::protocol::StatsSnapshot;
use crate::protocol::{SPAN_FAILED, SPAN_FAST_DEGRADED, SPAN_HEDGE_FIRED, SPAN_HEDGE_WON};
use fbp_obs::LogHistogram;
use feedbackbypass::QuerySpec;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Client-side relevance judge: which of one round's result ids are
/// relevant to the query (by index into the load generator's pool).
/// `None` results skip feedback entirely (pure k-NN traffic).
pub trait Relevance: Sync {
    /// Relevant subset of `result_ids` for pool query `query_index`.
    fn relevant(&self, query_index: usize, result_ids: &[u32]) -> Vec<u32>;
}

impl<F: Fn(usize, &[u32]) -> Vec<u32> + Sync> Relevance for F {
    fn relevant(&self, query_index: usize, result_ids: &[u32]) -> Vec<u32> {
        self(query_index, result_ids)
    }
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Concurrent closed-loop sessions.
    pub sessions: usize,
    /// Queries each session processes (disjoint round-robin slices of
    /// the pool; the pool must hold `sessions × queries_per_session`).
    pub queries_per_session: usize,
    /// Results per search.
    pub k: u32,
    /// Pause before every search round (user think-time).
    pub think_time: Duration,
    /// Client-side cap on rounds per query, a safety net over the
    /// server's own cycle cap.
    pub max_rounds: usize,
    /// Request per-request trace trailers (protocol v3) and attribute
    /// every search's latency to its stages: the report's `stage_*`
    /// columns and hedge/degrade counters populate only in this mode.
    pub trace: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            sessions: 8,
            queries_per_session: 10,
            k: 50,
            think_time: Duration::from_millis(5),
            max_rounds: 64,
            trace: false,
        }
    }
}

/// Aggregate outcome of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// `Knn` round trips completed.
    pub searches: u64,
    /// Pool queries fully processed.
    pub queries: u64,
    /// Queries the server reported converged.
    pub converged: u64,
    /// `Knn` replies flagged degraded (a router answered from a
    /// surviving-shard subset under `FailurePolicy::Degraded`).
    pub degraded: u64,
    /// Wall clock of the whole run.
    pub elapsed: Duration,
    /// Median `Knn` round-trip latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile `Knn` round-trip latency, microseconds.
    pub latency_p99_us: f64,
    /// Per-stage latency attribution from the trace trailers (all zero
    /// unless [`LoadgenOptions::trace`]): scatter/gather stage,
    /// microseconds.
    pub stage_gather_p50_us: f64,
    /// Gather stage p99, microseconds.
    pub stage_gather_p99_us: f64,
    /// Merge + reply-encode stage p50, microseconds.
    pub stage_merge_p50_us: f64,
    /// Merge + reply-encode stage p99, microseconds.
    pub stage_merge_p99_us: f64,
    /// Per-shard queue wait (admission → dispatch) p99 across all
    /// spans, microseconds.
    pub stage_queue_p99_us: f64,
    /// Per-shard busy time (dispatch → partial) p99 across all spans,
    /// microseconds.
    pub stage_busy_p99_us: f64,
    /// Spans flagged `HEDGE_FIRED` across all traced searches.
    pub hedged_spans: u64,
    /// Spans flagged `HEDGE_WON`.
    pub hedge_won_spans: u64,
    /// Spans flagged `FAST_DEGRADED` (skipped: shard was ejected).
    pub fast_degraded_spans: u64,
    /// Spans flagged `FAILED`.
    pub failed_spans: u64,
    /// Server metrics snapshot taken right after the run.
    pub server: StatsSnapshot,
}

impl LoadgenReport {
    /// Serving throughput over the run.
    pub fn searches_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.searches as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Drive `opts.sessions` concurrent sessions against the server at
/// `addr`, each working through its slice of `queries` (session `s`
/// takes pool indices `s`, `s + S`, `s + 2S`, …).
///
/// # Panics
///
/// Panics when the pool is smaller than
/// `sessions × queries_per_session`.
pub fn run_loadgen(
    addr: SocketAddr,
    queries: &[Vec<f64>],
    judge: Option<&dyn Relevance>,
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ClientError> {
    let need = opts.sessions * opts.queries_per_session;
    assert!(
        need <= queries.len(),
        "need {need} pool queries, have {}",
        queries.len()
    );
    let t0 = Instant::now();
    let per_session: Vec<Result<SessionTally, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.sessions)
            .map(|s| scope.spawn(move || run_session(addr, s, queries, judge, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen session thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut searches = 0u64;
    let mut queries_done = 0u64;
    let mut converged = 0u64;
    let mut degraded = 0u64;
    // One histogram type on both sides of a report: the same
    // `LogHistogram` the server's metrics use, so "p99" means the same
    // nearest-rank-with-bounded-error quantity in the client and server
    // columns.
    let latencies = LogHistogram::new();
    let gather = LogHistogram::new();
    let merge = LogHistogram::new();
    let queue = LogHistogram::new();
    let busy = LogHistogram::new();
    let mut flags = FlagTally::default();
    for tally in per_session {
        let tally = tally?;
        searches += tally.searches;
        queries_done += tally.queries;
        converged += tally.converged;
        degraded += tally.degraded;
        for ns in tally.latencies_ns {
            latencies.record(ns);
        }
        for ns in tally.gather_ns {
            gather.record(ns);
        }
        for ns in tally.merge_ns {
            merge.record(ns);
        }
        for ns in tally.queue_ns {
            queue.record(ns);
        }
        for ns in tally.busy_ns {
            busy.record(ns);
        }
        flags.hedged += tally.flags.hedged;
        flags.hedge_won += tally.flags.hedge_won;
        flags.fast_degraded += tally.flags.fast_degraded;
        flags.failed += tally.flags.failed;
    }

    let server = Client::connect(addr)?.stats()?;
    Ok(LoadgenReport {
        searches,
        queries: queries_done,
        converged,
        degraded,
        elapsed,
        latency_p50_us: latencies.quantile_us(0.50),
        latency_p99_us: latencies.quantile_us(0.99),
        stage_gather_p50_us: gather.quantile_us(0.50),
        stage_gather_p99_us: gather.quantile_us(0.99),
        stage_merge_p50_us: merge.quantile_us(0.50),
        stage_merge_p99_us: merge.quantile_us(0.99),
        stage_queue_p99_us: queue.quantile_us(0.99),
        stage_busy_p99_us: busy.quantile_us(0.99),
        hedged_spans: flags.hedged,
        hedge_won_spans: flags.hedge_won,
        fast_degraded_spans: flags.fast_degraded,
        failed_spans: flags.failed,
        server,
    })
}

/// Span-flag attribution counts from one run's trace trailers.
#[derive(Default)]
struct FlagTally {
    hedged: u64,
    hedge_won: u64,
    fast_degraded: u64,
    failed: u64,
}

struct SessionTally {
    searches: u64,
    queries: u64,
    converged: u64,
    degraded: u64,
    latencies_ns: Vec<u64>,
    gather_ns: Vec<u64>,
    merge_ns: Vec<u64>,
    queue_ns: Vec<u64>,
    busy_ns: Vec<u64>,
    flags: FlagTally,
}

fn run_session(
    addr: SocketAddr,
    slot: usize,
    queries: &[Vec<f64>],
    judge: Option<&dyn Relevance>,
    opts: &LoadgenOptions,
) -> Result<SessionTally, ClientError> {
    let mut client = Client::connect(addr)?;
    if opts.trace {
        let version = client.hello()?;
        assert!(
            version >= 3,
            "trace attribution needs protocol v3, server speaks v{version}"
        );
    }
    let (session, _dim) = client.open_session()?;
    let mut tally = SessionTally {
        searches: 0,
        queries: 0,
        converged: 0,
        degraded: 0,
        latencies_ns: Vec::new(),
        gather_ns: Vec::new(),
        merge_ns: Vec::new(),
        queue_ns: Vec::new(),
        busy_ns: Vec::new(),
        flags: FlagTally::default(),
    };
    for qi in 0..opts.queries_per_session {
        let pool_index = qi * opts.sessions + slot;
        let query = &queries[pool_index];
        // The judgment upload overlaps the think-time: send the feedback
        // frame, think, then collect the ack that arrived meanwhile —
        // so each round's critical path is think + the knn round trip,
        // exactly the interactive pattern (the user reads results while
        // the system absorbs the judgment).
        let mut ack_outstanding = false;
        for _round in 0..opts.max_rounds {
            std::thread::sleep(opts.think_time);
            if ack_outstanding {
                ack_outstanding = false;
                let ack = client.recv_feedback()?;
                if ack.done {
                    tally.converged += u64::from(ack.converged);
                    break;
                }
            }
            let t0 = Instant::now();
            let reply = if opts.trace {
                // The traced path rides `KnnV2` with the trace bit; a
                // bare spec (anchor only, default Rocchio) asks the
                // same question as the plain `Knn` opcode.
                let spec = QuerySpec::builder(query.clone())
                    .build()
                    .expect("loadgen pool query must form a valid spec");
                client.knn_spec_traced(session, opts.k, &spec)?
            } else {
                client.knn(session, opts.k, query)?
            };
            tally.latencies_ns.push(t0.elapsed().as_nanos() as u64);
            tally.searches += 1;
            tally.degraded += u64::from(reply.degraded);
            if let Some(trace) = &reply.trace {
                tally.gather_ns.push(trace.gather_ns);
                tally.merge_ns.push(trace.merge_ns);
                for span in &trace.spans {
                    tally.queue_ns.push(span.queue_ns);
                    tally.busy_ns.push(span.busy_ns);
                    tally.flags.hedged += u64::from(span.flags & SPAN_HEDGE_FIRED != 0);
                    tally.flags.hedge_won += u64::from(span.flags & SPAN_HEDGE_WON != 0);
                    tally.flags.fast_degraded += u64::from(span.flags & SPAN_FAST_DEGRADED != 0);
                    tally.flags.failed += u64::from(span.flags & SPAN_FAILED != 0);
                }
            }
            if reply.done {
                tally.converged += u64::from(reply.converged);
                break;
            }
            let Some(judge) = judge else {
                // Pure k-NN traffic: nothing to learn, move on.
                break;
            };
            let ids: Vec<u32> = reply.neighbors.iter().map(|n| n.index).collect();
            client.send_feedback(session, &judge.relevant(pool_index, &ids))?;
            ack_outstanding = true;
        }
        if ack_outstanding {
            // Round cap tripped with a judgment in flight.
            let _ = client.recv_feedback()?;
        }
        tally.queries += 1;
    }
    client.close_session(session)?;
    Ok(tally)
}
