//! Wire protocol: length-prefixed binary frames over TCP. **This module
//! is the normative protocol specification** — the tables and rules
//! below define the wire contract; [`Client`](crate::Client) is the
//! reference implementation.
//!
//! # Framing
//!
//! Every message travels as one **frame**: a little-endian `u32` payload
//! length followed by that many payload bytes. The first payload byte is
//! the opcode, the rest is the fixed-layout body (all integers
//! little-endian, all floats IEEE-754 `f64` little-endian bytes; `bool`s
//! are one byte, 0 = false, non-zero = true). The length prefix is the
//! only framing — a reader can always resynchronize by closing the
//! connection, and a writer can always emit a frame with one
//! `write_all`. A frame whose length prefix exceeds the configured
//! maximum ([`DEFAULT_MAX_FRAME_LEN`] by default) is refused *before*
//! its body is read, so the peer must treat the connection as dead.
//! Element counts inside a body are validated against the remaining
//! byte budget before any allocation (a forged count cannot drive an
//! out-of-memory), and every body must account for every payload byte —
//! trailing bytes are a [`DecodeError::TrailingBytes`] protocol error.
//!
//! # Request opcodes (client → server)
//!
//! | op     | message        | body                                          |
//! |--------|----------------|-----------------------------------------------|
//! | `0x01` | `OpenSession`  | —                                             |
//! | `0x02` | `Knn`          | `u64 session`, `u32 k`, `u32 n`, `n × f64`    |
//! | `0x03` | `Feedback`     | `u64 session`, `u32 n`, `n × u32` relevant ids|
//! | `0x04` | `SnapshotStats`| —                                             |
//! | `0x05` | `Close`        | `u64 session`                                 |
//! | `0x06` | `ShardKnn`     | `u32 k`, `f64 seed`, `u32 n`, `n × f64` point, `u32 wn`, `wn × f64` weights |
//! | `0x07` | `ShardInfo`    | —                                             |
//! | `0x08` | `SnapshotModule`| —                                            |
//! | `0x09` | `RestoreModule`| `u32 len`, `len` bytes (serialized module)    |
//! | `0x0A` | `Hello`        | `u8 version` (v2+)                            |
//! | `0x0B` | `KnnV2`        | see *Protocol v2* below (v2+)                 |
//! | `0x0C` | `GetTraces`    | `u32 max` (v3+; see *Protocol v3* below)      |
//!
//! Opcodes `0x06`–`0x09` are the **router tier's downstream surface**
//! (router → shard server), spoken on the same framed connections as
//! the client surface. `ShardKnn` is sessionless: it asks for the
//! shard's exact local k-best under an explicit `(point, weights)`
//! metric (`wn` must equal `n`, or be `0` for uniform weights) and
//! returns a keyed `ShardPartial` — indices already offset by the shard
//! server's configured `row_offset`, `k` clamped to the shard's rows.
//! `seed` is a cross-shard early-abandon cap (another shard's k-th-best
//! bound); `+∞` means unseeded and is always sound. `ShardInfo` probes
//! the served slice (rows, global row offset, dimensionality);
//! `SnapshotModule`/`RestoreModule` move the serialized learned module
//! (the `simplex-tree` persistence image) so a router can replicate its
//! module state onto its shards.
//!
//! # Response opcodes (server → client)
//!
//! | op     | message         | body                                               |
//! |--------|-----------------|----------------------------------------------------|
//! | `0x81` | `SessionOpened` | `u64 session`, `u32 dim`                           |
//! | `0x82` | `KnnResult`     | `u8 flags`, `u32 cycles`, \[`u32 m`, `m × u32` missing shards — iff `flags & KNN_DEGRADED`\], \[trace trailer — iff `flags & KNN_TRACED`, see *Protocol v3*\], `u32 n`, `n × (u32, f64)` |
//! | `0x83` | `FeedbackAck`   | `u8 done`, `u8 converged`, `u32 cycles`            |
//! | `0x84` | `Stats`         | see below                                          |
//! | `0x85` | `Closed`        | —                                                  |
//! | `0x86` | `ShardPartial`  | `u8 finished`, `u32 n`, `n × (f64 key, u32 index)` |
//! | `0x87` | `ShardInfoResult`| `u64 rows`, `u64 offset`, `u32 dim`               |
//! | `0x88` | `ModuleImage`   | `u32 len`, `len` bytes (serialized module)         |
//! | `0x89` | `ModuleRestored`| —                                                  |
//! | `0x8A` | `HelloAck`      | `u8 version` (v2+)                                 |
//! | `0x8B` | `TraceList`     | `u32 n`, `n ×` trace report (v3+; see *Protocol v3*) |
//! | `0xEE` | `Error`         | `u8 code`, `u32 len`, UTF-8 message                |
//!
//! The degraded-flag encoding in `0x82` is **normative**: bit 2 of
//! `flags` ([`KNN_DEGRADED`]) marks an answer merged from a surviving
//! shard subset under the router's `Degraded{min_shards}` failure
//! policy. When (and only when) the bit is set, the body carries the
//! missing-shard id list between `cycles` and the neighbor count; the
//! neighbors are then exactly the flat scan over the surviving shards'
//! rows. An undegraded reply never carries the list, so pre-router
//! clients parse identically. `0x86 ShardPartial` entries ascend by
//! `(key, index)` — a receiver must validate the ordering (forged
//! partials would corrupt the key-space merge) and treat violations as
//! a protocol error.
//!
//! The `0x84` `Stats` body is the [`StatsSnapshot`] fields in
//! declaration order:
//!
//! | field                  | type  |
//! |------------------------|-------|
//! | `requests`             | `u64` |
//! | `passes`               | `u64` |
//! | `shards`               | `u64` |
//! | `mean_batch_fill`      | `f64` |
//! | `queue_wait_p50_us`    | `f64` |
//! | `queue_wait_p99_us`    | `f64` |
//! | `sessions_open`        | `u64` |
//! | `protocol_errors`      | `u64` |
//! | `downstream_timeouts`  | `u64` |
//! | `downstream_retries`   | `u64` |
//! | `downstream_reconnects`| `u64` |
//! | `hedges_fired`         | `u64` |
//! | `hedges_won`           | `u64` |
//! | `degraded_replies`     | `u64` |
//! | `scan_rows_visited`    | `u64` |
//! | `scan_blocks_abandoned`| `u64` |
//! | `scan_candidates_filtered` | `u64` |
//! | `scan_candidates_rescored` | `u64` |
//! | `scan_seed_prunes`     | `u64` |
//! | `scan_partitions_pruned` | `u64` |
//! | `health_rows`          | `u32` |
//! | `health_rows × row`    | see below |
//!
//! The six `downstream_*`/`hedges_*`/`degraded_replies` fields are the
//! router tier's fault counters, aggregated across its downstreams; a
//! plain shard server reports them as zero. The six `scan_*` fields
//! are the served collection's cumulative scan-path counters (see
//! *Protocol v3* below); a router, which scans nothing itself, reports
//! them as zero. Like the health block when it was introduced, the
//! `scan_*` fields extend the `0x84` body unconditionally: `Stats` is
//! an operator surface whose layout tracks the build, not part of the
//! frozen query surface — both sides of this repository move together.
//!
//! The trailing `health_rows` block is **normative**: one row per
//! router downstream (zero rows on a plain shard server), each row laid
//! out as
//!
//! | field            | type  | meaning                                      |
//! |------------------|-------|----------------------------------------------|
//! | `shard`          | `u32` | downstream shard index                       |
//! | `state`          | `u8`  | [`HealthState`] (0 healthy, 1 suspect, 2 ejected, 3 probing); other values are malformed |
//! | `ejections`      | `u64` | times the shard was ejected from the scatter |
//! | `readmissions`   | `u64` | times it was probed back to `Healthy`        |
//! | `probe_failures` | `u64` | re-admission probes that failed              |
//! | `fast_degrades`  | `u64` | scatters that skipped it while ejected (no `shard_timeout` paid) |
//!
//! An `Ejected` downstream is removed from the scatter set **before**
//! the fan-out: under `Degraded` policy the reply merges the survivors
//! immediately (the shard appears in `missing_shards` without its
//! timeout being paid — that is one `fast_degrades` tick), under
//! `Strict` the request refuses fast with `ShardUnavailable`. Only a
//! successful re-admission probe sequence (slice tiling re-validated,
//! module snapshot re-pushed) returns the shard to traffic.
//!
//! # Protocol v2: version negotiation and multi-example queries
//!
//! The original protocol (everything above) is **version 1** and has no
//! handshake: a connection starts in v1 and every v1 frame keeps its
//! exact layout forever. Version 2 adds two opcodes, both **opt-in**:
//!
//! **Hello / HelloAck** — a v2-aware client *may* send `0x0A Hello
//! { u8 version }` (its highest supported version, currently
//! [`PROTOCOL_VERSION`] = 3) as any request; the server replies `0x8A
//! HelloAck { u8 version }` carrying `min(client, server)`, and the
//! connection is **negotiated** to that version from then on. The
//! handshake is normatively optional and idempotent: a connection that
//! never sends `Hello` stays at version 1 and behaves byte-for-byte
//! like an old server/client pair — which is why pre-v2 clients pass
//! the wire-identity suite against a v2 server unmodified. A v2 client
//! talking to a v1 server receives `0xEE Error { UnknownOpcode }` for
//! its `Hello` and must treat the connection as version 1 (the
//! connection stays healthy; `UnknownOpcode` does not drop it).
//! `Hello { version: 0 }` is malformed ([`ErrorCode::BadRequest`]).
//!
//! **KnnV2** — the multi-example search frame, valid **only after** the
//! connection negotiated version ≥ 2 (otherwise
//! [`ErrorCode::BadRequest`]). Body layout:
//!
//! | field       | type            | meaning                                   |
//! |-------------|-----------------|-------------------------------------------|
//! | `session`   | `u64`           | session id (same ownership rules as `Knn`)|
//! | `k`         | `u32`           | result count                              |
//! | `alpha`     | `f64`           | Rocchio anchor coefficient                |
//! | `beta`      | `f64`           | Rocchio positive-centroid coefficient     |
//! | `gamma`     | `f64`           | Rocchio negative-centroid coefficient     |
//! | `flags`     | `u8`            | bit 0 = clamp derived components to ≥ 0; bit 1 = request a trace trailer (v3+, see *Protocol v3*; ignored below v3) |
//! | `n`         | `u32`           | dimensionality of every vector below      |
//! | `anchor`    | `n × f64`       | anchor point                              |
//! | `p`         | `u32`           | positive-example count                    |
//! | `positives` | `p × (n × f64)` | positive examples, back to back           |
//! | `m`         | `u32`           | negative-example count                    |
//! | `negatives` | `m × (n × f64)` | negative examples, back to back           |
//!
//! The reply is an ordinary `0x82 KnnResult`. Semantics are
//! **lower-then-serve**: the server derives the Rocchio anchor
//! `q' = α·anchor + β·mean(positives) − γ·mean(negatives)` (empty sets
//! drop their term; the clamp flag floors each component at zero) once
//! at admission, then proceeds exactly as `Knn` with `q'` — session
//! anchoring, module prediction, batching, sharding, and the router's
//! scatter (`ShardKnn` carries only the derived anchor, so shard
//! servers never see examples and need no v2). The results are
//! therefore **bit-identical** to a v1 `Knn` carrying the derived
//! anchor, and to a flat scan against it. A `KnnV2` with `α = 0` and no
//! examples is refused with [`ErrorCode::EmptyExampleSet`]; non-finite
//! vector components or coefficients with
//! [`ErrorCode::NonFiniteComponent`]; mismatched example lengths are a
//! [`DecodeError`]-level [`ErrorCode::BadFrame`] (the layout fixes one
//! `n` for every vector).
//!
//! # Protocol v3: request tracing
//!
//! Version 3 adds **end-to-end request tracing**: a client that
//! negotiated version ≥ 3 may set bit 1 of the `KnnV2` `flags` byte to
//! ask the server to record stage-level timings for that request and
//! return them on the reply. Tracing is observational only —
//! **normative invariant**: a traced reply's flags (other than
//! [`KNN_TRACED`]), cycles, missing shards, and neighbors are
//! bit-identical to the untraced reply the same request would have
//! drawn. Servers below v3, and connections negotiated below v3,
//! ignore the bit entirely (it was reserved-zero in v2).
//!
//! **Trace trailer** — when (and only when) [`KNN_TRACED`] (bit 3) is
//! set in a `0x82 KnnResult`, the body carries a trace trailer between
//! the (optional) missing-shard block and the neighbor count:
//!
//! | field       | type       | meaning                                   |
//! |-------------|------------|-------------------------------------------|
//! | `version`   | `u8`       | trailer layout version, currently [`TRACE_VERSION`] = 1; other values are malformed |
//! | `trace_id`  | `u64`      | server-assigned id, unique per traced request per server |
//! | `wall_ns`   | `u64`      | admission → reply encode, nanoseconds     |
//! | `gather_ns` | `u64`      | admission → last shard slot resolved      |
//! | `merge_ns`  | `u64`      | last shard slot resolved → reply encode   |
//! | `s`         | `u32`      | span count (one per shard the request touched) |
//! | `spans`     | `s ×` span | per-shard spans, layout below             |
//!
//! Each 25-byte **shard span**:
//!
//! | field        | type  | meaning                                        |
//! |--------------|-------|------------------------------------------------|
//! | `shard`      | `u32` | shard index                                    |
//! | `queue_ns`   | `u64` | admission → this shard's work began (batch dispatch, or a pool worker picking the call up) |
//! | `busy_ns`    | `u64` | work began → slot resolved (the coalesced scan pass, or the downstream round trip) |
//! | `batch_fill` | `u32` | requests in the coalesced pass that served this shard (0 = not batched: a router leg) |
//! | `flags`      | `u8`  | [`SPAN_HEDGE_FIRED`] \| [`SPAN_HEDGE_WON`] \| [`SPAN_FAST_DEGRADED`] \| [`SPAN_FAILED`]; other bits reserved-zero |
//!
//! All times come from one monotonic clock per server, measured as
//! offsets from the request's admission instant, so the decomposition
//! is **self-consistent by construction**:
//! `wall_ns = gather_ns + merge_ns`, and for every span
//! `queue_ns + busy_ns ≤ gather_ns` (a hedged span reports the winning
//! leg; a failed span reports the failing leg with [`SPAN_FAILED`]).
//!
//! **GetTraces / TraceList** — servers keep a bounded ring of recent
//! **slow** traces (every traced reply whose `wall_ns` exceeds the
//! configured slow-query threshold is recorded; the ring evicts
//! oldest-first). `0x0C GetTraces { u32 max }` (valid only after
//! negotiating ≥ 3, [`ErrorCode::BadRequest`] otherwise) **drains** up
//! to `max` of them, oldest first (`max = 0` drains all); the `0x8B
//! TraceList` reply carries `u32 n` followed by `n` trace reports, each
//! laid out exactly like the trailer above *without* the leading
//! version byte (the list is versioned as a whole by the negotiated
//! protocol version). Draining is destructive: two consecutive
//! `GetTraces` calls return disjoint traces.
//!
//! # Conversation rules
//!
//! The protocol is strict request/response per connection: a client
//! sends one request frame and reads exactly one response frame before
//! the next request. (The one sanctioned overlap: a `Feedback` frame
//! may be *sent* and its `FeedbackAck` collected later — but no other
//! request may be issued in between; see
//! [`Client::send_feedback`](crate::Client::send_feedback).) Any
//! request may be answered by `0xEE Error` instead of its normal reply.
//!
//! [`KnnResult`](Response::KnnResult) flags: bit 0 ([`KNN_DONE`]) — the
//! session's current query finished on this round (stable ranking or the
//! cycle cap) and its parameters were committed to the shared module;
//! bit 1 ([`KNN_CONVERGED`]) — it finished by converging rather than by
//! hitting the cap. A reply without `KNN_DONE` invites a `Feedback`
//! frame judging these results. `Knn.k` is clamped server-side to the
//! collection size; a repeated `Knn` with the session's current anchor
//! query re-searches under the session's learned parameters, while a
//! new query point re-anchors the session.
//!
//! # Session ownership
//!
//! Session ids are **sequential, not capabilities**: knowing an id
//! grants nothing. Every `Knn`/`Feedback`/`Close` is checked against
//! the connection that issued the `OpenSession`; a foreign connection
//! gets [`ErrorCode::UnknownSession`] — indistinguishable from a
//! missing id, so ids cannot even be probed for existence. Sessions die
//! with their connection (server-side state is reaped on disconnect);
//! `Close` is the polite form.
//!
//! # Error codes
//!
//! | code | name             | meaning / recovery                                        |
//! |------|------------------|-----------------------------------------------------------|
//! | 1    | `BadFrame`       | malformed frame or body; oversized frames also drop the connection |
//! | 2    | `UnknownOpcode`  | first payload byte unknown; connection continues          |
//! | 3    | `UnknownSession` | id not registered **or not owned by this connection**     |
//! | 4    | `DimMismatch`    | query length ≠ served collection dim                      |
//! | 5    | `BadRequest`     | valid frame, wrong session state (e.g. `Feedback` with no un-judged results) |
//! | 6    | `Busy`           | admission queue full — well-formed backpressure, retry after a pause |
//! | 7    | `Internal`       | server-side failure (shutdown race, scan error)           |
//! | 8    | `ShardUnavailable` | a downstream shard failed and the failure policy refused a degraded answer; retry after the shard recovers |
//! | 9    | `BadWeight`      | a distance weight is non-finite or not strictly positive  |
//! | 10   | `NonFiniteComponent` | a query/example component or Rocchio coefficient is NaN or infinite |
//! | 11   | `EmptyExampleSet`| a `KnnV2` with `α = 0` and no examples — nothing to derive an anchor from |
//! | 12   | `PrecisionConflict` | requests pin conflicting scan precisions for one pass  |
//!
//! Codes 9–12 are the typed request-validation errors introduced with
//! protocol v2; they mirror the in-process `RequestError` variants
//! one-to-one, so a client can branch on the failure without parsing
//! message strings. A v2 server may answer them to v1 frames too (e.g.
//! bad `ShardKnn` weights), which is compatible: v1 defined the error
//! *frame*, not a closed code set, and unknown codes decode as
//! [`DecodeError`]-level failures only in clients older than the code —
//! v1 traffic that was valid before never draws them.

use fbp_vecdb::Neighbor;
use feedbackbypass::RequestError;
use std::io::{self, Read, Write};

/// Largest frame either side accepts by default (1 MiB — a 16k-d f64
/// query is ~128 KiB, so this is generous without letting a bad length
/// prefix allocate gigabytes).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Highest protocol version this build speaks. Version 1 is the
/// handshake-free original; version 2 adds [`Request::Hello`] /
/// [`Response::HelloAck`] negotiation and the multi-example
/// [`Request::KnnV2`] frame (see the module docs, *Protocol v2*);
/// version 3 adds request tracing — the `KnnV2` trace flag, the
/// [`KNN_TRACED`] reply trailer, and [`Request::GetTraces`] /
/// [`Response::TraceList`] (see *Protocol v3*).
pub const PROTOCOL_VERSION: u8 = 3;

/// [`Response::KnnResult`] flag: the session's query finished.
pub const KNN_DONE: u8 = 0b01;
/// [`Response::KnnResult`] flag: it finished by converging.
pub const KNN_CONVERGED: u8 = 0b10;
/// [`Response::KnnResult`] flag: the answer was merged from a surviving
/// shard subset (the router's `Degraded` failure policy); the body then
/// carries the missing-shard id list and the neighbors are exactly the
/// flat scan over the surviving shards' rows.
pub const KNN_DEGRADED: u8 = 0b100;
/// [`Response::KnnResult`] flag (v3): the body carries a trace trailer
/// between the (optional) missing-shard block and the neighbor count —
/// the stage-level timing report the request opted into. Everything
/// else about the reply is bit-identical to the untraced answer.
pub const KNN_TRACED: u8 = 0b1000;

/// Trace trailer layout version (the trailer's leading byte). Decoders
/// must refuse other values as malformed.
pub const TRACE_VERSION: u8 = 1;

/// [`ShardSpan`] flag: a hedge (duplicate) call was fired at this shard
/// while its primary leg straggled.
pub const SPAN_HEDGE_FIRED: u8 = 0b0001;
/// [`ShardSpan`] flag: the hedge leg's answer beat the primary's — the
/// span's timings describe the winning (hedge) leg.
pub const SPAN_HEDGE_WON: u8 = 0b0010;
/// [`ShardSpan`] flag: the shard was ejected from the scatter set at
/// admission and skipped without paying its timeout (a fast degrade).
pub const SPAN_FAST_DEGRADED: u8 = 0b0100;
/// [`ShardSpan`] flag: the shard's slot resolved as a failure; the
/// span's timings describe the failing leg.
pub const SPAN_FAILED: u8 = 0b1000;

/// Protocol error categories carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed frame: empty payload, truncated body, trailing bytes,
    /// or a length prefix exceeding the configured maximum.
    BadFrame = 1,
    /// First payload byte is not a known opcode.
    UnknownOpcode = 2,
    /// The session id is not (or no longer) registered.
    UnknownSession = 3,
    /// Query dimensionality disagrees with the served collection.
    DimMismatch = 4,
    /// Request is valid on the wire but not in the current session state
    /// (e.g. `Feedback` before any `Knn` results).
    BadRequest = 5,
    /// The batch queue is full; retry after a pause.
    Busy = 6,
    /// Server-side failure (shutdown race, dispatcher gone).
    Internal = 7,
    /// A downstream shard failed and the failure policy refused to
    /// answer degraded (router tier only).
    ShardUnavailable = 8,
    /// A distance weight is non-finite or not strictly positive (v2).
    BadWeight = 9,
    /// A query/example component or Rocchio coefficient is NaN or
    /// infinite (v2).
    NonFiniteComponent = 10,
    /// A `KnnV2` with `α = 0` and no examples: nothing to derive an
    /// anchor from (v2).
    EmptyExampleSet = 11,
    /// Requests pin conflicting scan precisions for one pass (v2).
    PrecisionConflict = 12,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnknownOpcode,
            3 => ErrorCode::UnknownSession,
            4 => ErrorCode::DimMismatch,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Busy,
            7 => ErrorCode::Internal,
            8 => ErrorCode::ShardUnavailable,
            9 => ErrorCode::BadWeight,
            10 => ErrorCode::NonFiniteComponent,
            11 => ErrorCode::EmptyExampleSet,
            12 => ErrorCode::PrecisionConflict,
            _ => return None,
        })
    }
}

/// The wire error code a typed [`RequestError`] surfaces as — the same
/// mapping both the shard server and the router apply when a `KnnV2`
/// spec fails validation, so in-process and over-the-wire callers see
/// the same category for the same defect.
pub fn error_code_for(e: &RequestError) -> ErrorCode {
    match e {
        RequestError::DimMismatch { .. } => ErrorCode::DimMismatch,
        RequestError::BadWeight { .. } => ErrorCode::BadWeight,
        RequestError::NonFiniteComponent { .. } => ErrorCode::NonFiniteComponent,
        RequestError::EmptyExampleSet => ErrorCode::EmptyExampleSet,
        RequestError::PrecisionConflict => ErrorCode::PrecisionConflict,
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownOpcode => "unknown-opcode",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::DimMismatch => "dim-mismatch",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Busy => "busy",
            ErrorCode::Internal => "internal",
            ErrorCode::ShardUnavailable => "shard-unavailable",
            ErrorCode::BadWeight => "bad-weight",
            ErrorCode::NonFiniteComponent => "non-finite-component",
            ErrorCode::EmptyExampleSet => "empty-example-set",
            ErrorCode::PrecisionConflict => "precision-conflict",
        };
        f.write_str(name)
    }
}

/// One shard's contribution to a traced request (see the module docs,
/// *Protocol v3*, for the normative 25-byte wire layout). All times are
/// nanosecond offsets measured from the request's admission on one
/// monotonic clock, so `queue_ns + busy_ns ≤` the report's `gather_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSpan {
    /// Shard index.
    pub shard: u32,
    /// Admission → this shard's work began (batch dispatch on a shard
    /// server; a pool worker picking the call up on the router).
    pub queue_ns: u64,
    /// Work began → the shard's slot resolved (the coalesced scan pass,
    /// or the downstream round trip).
    pub busy_ns: u64,
    /// Requests in the coalesced pass that served this shard; 0 when
    /// the leg was not batched (a router downstream call).
    pub batch_fill: u32,
    /// [`SPAN_HEDGE_FIRED`] | [`SPAN_HEDGE_WON`] | [`SPAN_FAST_DEGRADED`]
    /// | [`SPAN_FAILED`]; other bits reserved-zero.
    pub flags: u8,
}

/// Stage-level timing report for one traced request — the [`KNN_TRACED`]
/// trailer's payload and the unit [`Response::TraceList`] carries (see
/// the module docs, *Protocol v3*). Self-consistent by construction:
/// `wall_ns = gather_ns + merge_ns`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Server-assigned id, unique per traced request per server.
    pub trace_id: u64,
    /// Admission → reply encode.
    pub wall_ns: u64,
    /// Admission → last shard slot resolved (the scatter-gather
    /// critical path, covering every span's queue and busy time).
    pub gather_ns: u64,
    /// Last shard slot resolved → reply encode.
    pub merge_ns: u64,
    /// One span per shard the request touched.
    pub spans: Vec<ShardSpan>,
}

/// One client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a new session; the reply carries its id and the served
    /// collection's dimensionality.
    OpenSession,
    /// Search request: `k` nearest neighbors of `query` under the
    /// session's current learned parameters.
    Knn {
        /// Session id from [`Response::SessionOpened`].
        session: u64,
        /// Result count.
        k: u32,
        /// Query point (must match the collection's dimensionality).
        query: Vec<f64>,
    },
    /// Relevance judgment of the session's last un-judged `Knn` round.
    Feedback {
        /// Session id.
        session: u64,
        /// Result ids the user marked relevant.
        relevant: Vec<u32>,
    },
    /// Request a [`StatsSnapshot`].
    SnapshotStats,
    /// Drop a session.
    Close {
        /// Session id.
        session: u64,
    },
    /// Sessionless shard-local k-best under an explicit metric — the
    /// router tier's scatter frame (see the module docs).
    ShardKnn {
        /// Result count (clamped server-side to the shard's rows).
        k: u32,
        /// Cross-shard early-abandon cap in the scan's selection space
        /// (`f64::INFINITY` = unseeded; always sound).
        seed: f64,
        /// Query point (must match the shard's dimensionality).
        point: Vec<f64>,
        /// Per-dimension metric weights; empty means uniform.
        weights: Vec<f64>,
    },
    /// Probe the served slice: rows, global row offset, dimensionality.
    ShardInfo,
    /// Fetch the serialized learned module.
    SnapshotModule,
    /// Replace the served learned module with a serialized image.
    RestoreModule {
        /// The `simplex-tree` persistence image
        /// (`FeedbackBypass::to_bytes`).
        image: Vec<u8>,
    },
    /// Version negotiation (v2+): announce the client's highest
    /// supported protocol version; the [`Response::HelloAck`] carries
    /// the negotiated `min(client, server)`. Optional — a connection
    /// that never says hello stays at version 1.
    Hello {
        /// Highest protocol version the client speaks (≥ 1).
        version: u8,
    },
    /// Multi-example search (v2+, after negotiation): the server
    /// Rocchio-derives the anchor from the example sets once at
    /// admission, then serves exactly like [`Request::Knn`] with the
    /// derived anchor — replies with an ordinary
    /// [`Response::KnnResult`], bit-identical to a v1 `Knn` carrying
    /// the derived anchor.
    KnnV2 {
        /// Session id from [`Response::SessionOpened`].
        session: u64,
        /// Result count.
        k: u32,
        /// Rocchio anchor coefficient `α`.
        alpha: f64,
        /// Rocchio positive-centroid coefficient `β`.
        beta: f64,
        /// Rocchio negative-centroid coefficient `γ`.
        gamma: f64,
        /// Clamp every derived component to `max(0, ·)`.
        clamp: bool,
        /// Request a trace trailer on the reply (v3; flags-byte bit 1).
        /// Honored only on connections negotiated to version ≥ 3 —
        /// otherwise the bit is ignored and the reply is untraced.
        trace: bool,
        /// Anchor point (dimensionality of every vector in the frame).
        anchor: Vec<f64>,
        /// Positive examples, each `anchor.len()` long.
        positives: Vec<Vec<f64>>,
        /// Negative examples, each `anchor.len()` long.
        negatives: Vec<Vec<f64>>,
    },
    /// Drain up to `max` reports from the server's slow-query trace
    /// ring (v3+, after negotiation; `max = 0` drains all). Draining is
    /// destructive — consecutive calls return disjoint traces.
    GetTraces {
        /// Upper bound on reports returned; 0 = no bound.
        max: u32,
    },
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::OpenSession`].
    SessionOpened {
        /// Fresh session id.
        session: u64,
        /// Collection dimensionality every `Knn` query must match.
        dim: u32,
    },
    /// Reply to [`Request::Knn`].
    KnnResult {
        /// [`KNN_DONE`] | [`KNN_CONVERGED`] | [`KNN_DEGRADED`].
        flags: u8,
        /// Feedback cycles the session's current query has run.
        cycles: u32,
        /// Shard ids missing from a degraded merge. On the wire only
        /// when `flags & KNN_DEGRADED`; must be empty otherwise.
        missing_shards: Vec<u32>,
        /// Stage-level timing report. On the wire (as the v3 trace
        /// trailer) only when `flags & KNN_TRACED`; must be `None`
        /// otherwise. Boxed: traced replies are the rare case and the
        /// report dwarfs the rest of the variant.
        trace: Option<Box<TraceReport>>,
        /// Neighbors, ascending `(dist, index)`.
        neighbors: Vec<Neighbor>,
    },
    /// Reply to [`Request::Feedback`].
    FeedbackAck {
        /// The query finished (converged or nothing left to learn).
        done: bool,
        /// It finished by converging.
        converged: bool,
        /// Feedback cycles run so far.
        cycles: u32,
    },
    /// Reply to [`Request::SnapshotStats`]. Boxed: the snapshot (with
    /// its per-downstream health rows) dwarfs every other variant, and
    /// stats replies are far too rare to pay for inline.
    Stats(Box<StatsSnapshot>),
    /// Reply to [`Request::Close`].
    Closed,
    /// Reply to [`Request::ShardKnn`]: the shard's exact local k-best,
    /// still in selection space (keyed entries ascend by `(key,
    /// index)`, indices globally offset).
    ShardPartial {
        /// True when the keys are finished distances (a Scalar-mode
        /// shard server) rather than surrogate keys.
        finished: bool,
        /// `(key, global index)` entries ascending by `(key, index)`.
        entries: Vec<(f64, u32)>,
    },
    /// Reply to [`Request::ShardInfo`].
    ShardInfoResult {
        /// Rows the shard serves.
        rows: u64,
        /// Global index of the shard's first row (`row_offset`).
        offset: u64,
        /// Served dimensionality.
        dim: u32,
    },
    /// Reply to [`Request::SnapshotModule`].
    ModuleImage {
        /// Serialized learned module.
        image: Vec<u8>,
    },
    /// Reply to [`Request::RestoreModule`].
    ModuleRestored,
    /// Reply to [`Request::Hello`] (v2+): the negotiated connection
    /// version, `min(client, server)`.
    HelloAck {
        /// Version every subsequent frame on this connection is
        /// interpreted under.
        version: u8,
    },
    /// Reply to [`Request::GetTraces`] (v3+): the drained slow-query
    /// trace reports, oldest first.
    TraceList {
        /// Drained reports (each the trailer layout without its leading
        /// version byte).
        traces: Vec<TraceReport>,
    },
    /// Any request can fail with a coded error instead of its reply.
    Error {
        /// Category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One downstream's circuit-breaker position in the router's health
/// state machine (`Healthy → Suspect → Ejected → Probing → Healthy`),
/// as carried in the `0x84` stats body. The numeric values are the
/// normative wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum HealthState {
    /// Taking traffic; no recent consecutive failures.
    #[default]
    Healthy = 0,
    /// Taking traffic, but at least one consecutive failure is on the
    /// books — the state between the first failure and the trip.
    Suspect = 1,
    /// Removed from the scatter set; requests fast-degrade (or
    /// fast-refuse under `Strict`) instead of paying `shard_timeout`.
    Ejected = 2,
    /// A re-admission probe is in flight; still out of the scatter set.
    Probing = 3,
}

impl HealthState {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => HealthState::Healthy,
            1 => HealthState::Suspect,
            2 => HealthState::Ejected,
            3 => HealthState::Probing,
            _ => return None,
        })
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Suspect => write!(f, "suspect"),
            HealthState::Ejected => write!(f, "ejected"),
            HealthState::Probing => write!(f, "probing"),
        }
    }
}

/// Per-downstream health counters, one row of the `0x84` stats body's
/// trailing health block (see the module docs for the normative
/// layout). A plain shard server reports zero rows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DownstreamHealth {
    /// Downstream shard index.
    pub shard: u32,
    /// Current circuit-breaker state.
    pub state: HealthState,
    /// Times this downstream tripped from taking traffic to `Ejected`.
    pub ejections: u64,
    /// Times a probe sequence returned it to `Healthy` (tiling
    /// re-validated, module re-pushed).
    pub readmissions: u64,
    /// Re-admission probes that failed (including tiling mismatches and
    /// failed module pushes).
    pub probe_failures: u64,
    /// Scatters that skipped this downstream while it was ejected —
    /// each one is a request that did **not** pay `shard_timeout` for
    /// a dead shard.
    pub fast_degrades: u64,
}

/// Serving metrics at one instant (the `0x84` body, fields in order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Client k-NN requests admitted to the scatter stage (each rides
    /// one pass per shard).
    pub requests: u64,
    /// Per-shard coalesced scan passes issued.
    pub passes: u64,
    /// Collection shards the server is configured with (1 = flat).
    pub shards: u64,
    /// Mean requests per per-shard pass
    /// (`requests × shards / passes`) — the fill the batching policy
    /// controls.
    pub mean_batch_fill: f64,
    /// Median queue wait (enqueue → pass dispatch), microseconds.
    pub queue_wait_p50_us: f64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_wait_p99_us: f64,
    /// Sessions currently registered.
    pub sessions_open: u64,
    /// Protocol errors answered or connections dropped for framing.
    pub protocol_errors: u64,
    /// Downstream calls abandoned on a timeout (router tier; zero on a
    /// shard server — likewise for the five fields below).
    pub downstream_timeouts: u64,
    /// Downstream call attempts retried after an I/O failure.
    pub downstream_retries: u64,
    /// Downstream connections (re-)established after a failure.
    pub downstream_reconnects: u64,
    /// Hedge requests fired at straggling shards.
    pub hedges_fired: u64,
    /// Hedge requests whose answer arrived first.
    pub hedges_won: u64,
    /// Degraded (surviving-subset) answers served.
    pub degraded_replies: u64,
    /// Rows the scan path visited (shard server; zero on a router —
    /// likewise for the four fields below).
    pub scan_rows_visited: u64,
    /// Row blocks the scan early-abandoned partway through.
    pub scan_blocks_abandoned: u64,
    /// Candidates the f32 pre-filter discarded before rescoring.
    pub scan_candidates_filtered: u64,
    /// Candidates rescored at full f64 precision.
    pub scan_candidates_rescored: u64,
    /// Scan passes whose selection bound started from a cross-request
    /// or cross-shard seed instead of `+∞`.
    pub scan_seed_prunes: u64,
    /// Partitions a partition-pruning pass skipped outright (zero when
    /// the server serves flat; the sub-linearity witness otherwise).
    pub scan_partitions_pruned: u64,
    /// Per-downstream health rows (router tier; empty on a shard
    /// server) — state plus ejection/re-admission counters.
    pub health: Vec<DownstreamHealth>,
}

impl StatsSnapshot {
    /// Total scatter-set ejections across the downstreams.
    pub fn ejections(&self) -> u64 {
        self.health.iter().map(|h| h.ejections).sum()
    }

    /// Total probed re-admissions across the downstreams.
    pub fn readmissions(&self) -> u64 {
        self.health.iter().map(|h| h.readmissions).sum()
    }

    /// Total failed re-admission probes across the downstreams.
    pub fn probe_failures(&self) -> u64 {
        self.health.iter().map(|h| h.probe_failures).sum()
    }

    /// Total scatters that skipped an ejected downstream instead of
    /// paying its `shard_timeout`.
    pub fn fast_degrades(&self) -> u64 {
        self.health.iter().map(|h| h.fast_degrades).sum()
    }
}

/// Decode failure for a well-framed payload.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// Empty payload (no opcode byte).
    Empty,
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Body shorter than its fixed layout requires.
    Truncated,
    /// Body longer than its layout (lengths must account for every byte).
    TrailingBytes,
    /// A length field disagrees with the remaining body size.
    BadLength,
    /// A string field is not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty frame payload"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::Truncated => write!(f, "truncated message body"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after message body"),
            DecodeError::BadLength => write!(f, "length field disagrees with body size"),
            DecodeError::BadUtf8 => write!(f, "non-UTF-8 string field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Byte-wise reader over one frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `n` length-checked against the remaining bytes at `per` bytes per
    /// element, so a forged count cannot drive a huge allocation.
    fn counted(&mut self, per: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.checked_mul(per).ok_or(DecodeError::BadLength)? > self.buf.len() - self.pos {
            return Err(DecodeError::BadLength);
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

/// Append one trace report (without a leading version byte) — the
/// shared body of the [`KNN_TRACED`] trailer and of each
/// [`Response::TraceList`] element.
fn write_trace(out: &mut Vec<u8>, t: &TraceReport) {
    out.extend_from_slice(&t.trace_id.to_le_bytes());
    out.extend_from_slice(&t.wall_ns.to_le_bytes());
    out.extend_from_slice(&t.gather_ns.to_le_bytes());
    out.extend_from_slice(&t.merge_ns.to_le_bytes());
    out.extend_from_slice(&(t.spans.len() as u32).to_le_bytes());
    for s in &t.spans {
        out.extend_from_slice(&s.shard.to_le_bytes());
        out.extend_from_slice(&s.queue_ns.to_le_bytes());
        out.extend_from_slice(&s.busy_ns.to_le_bytes());
        out.extend_from_slice(&s.batch_fill.to_le_bytes());
        out.push(s.flags);
    }
}

/// Parse one trace report (the [`write_trace`] layout; span counts are
/// budget-checked against the remaining bytes like every other count).
fn read_trace(r: &mut Reader) -> Result<TraceReport, DecodeError> {
    let trace_id = r.u64()?;
    let wall_ns = r.u64()?;
    let gather_ns = r.u64()?;
    let merge_ns = r.u64()?;
    let n = r.counted(25)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(ShardSpan {
            shard: r.u32()?,
            queue_ns: r.u64()?,
            busy_ns: r.u64()?,
            batch_fill: r.u32()?,
            flags: r.u8()?,
        });
    }
    Ok(TraceReport {
        trace_id,
        wall_ns,
        gather_ns,
        merge_ns,
        spans,
    })
}

impl Request {
    /// Serialize into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::OpenSession => out.push(0x01),
            Request::Knn { session, k, query } => {
                out.push(0x02);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&(query.len() as u32).to_le_bytes());
                for v in query {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Request::Feedback { session, relevant } => {
                out.push(0x03);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&(relevant.len() as u32).to_le_bytes());
                for id in relevant {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
            Request::SnapshotStats => out.push(0x04),
            Request::Close { session } => {
                out.push(0x05);
                out.extend_from_slice(&session.to_le_bytes());
            }
            Request::ShardKnn {
                k,
                seed,
                point,
                weights,
            } => {
                out.push(0x06);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
                out.extend_from_slice(&(point.len() as u32).to_le_bytes());
                for v in point {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&(weights.len() as u32).to_le_bytes());
                for w in weights {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            Request::ShardInfo => out.push(0x07),
            Request::SnapshotModule => out.push(0x08),
            Request::RestoreModule { image } => {
                out.push(0x09);
                out.extend_from_slice(&(image.len() as u32).to_le_bytes());
                out.extend_from_slice(image);
            }
            Request::Hello { version } => {
                out.push(0x0A);
                out.push(*version);
            }
            Request::KnnV2 {
                session,
                k,
                alpha,
                beta,
                gamma,
                clamp,
                trace,
                anchor,
                positives,
                negatives,
            } => {
                out.push(0x0B);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&alpha.to_le_bytes());
                out.extend_from_slice(&beta.to_le_bytes());
                out.extend_from_slice(&gamma.to_le_bytes());
                out.push(u8::from(*clamp) | (u8::from(*trace) << 1));
                out.extend_from_slice(&(anchor.len() as u32).to_le_bytes());
                for v in anchor {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                for set in [positives, negatives] {
                    out.extend_from_slice(&(set.len() as u32).to_le_bytes());
                    for ex in set {
                        debug_assert_eq!(ex.len(), anchor.len(), "examples share the anchor dim");
                        for v in ex {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
            }
            Request::GetTraces { max } => {
                out.push(0x0C);
                out.extend_from_slice(&max.to_le_bytes());
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let op = r.u8().map_err(|_| DecodeError::Empty)?;
        let req = match op {
            0x01 => Request::OpenSession,
            0x02 => {
                let session = r.u64()?;
                let k = r.u32()?;
                let n = r.counted(8)?;
                let mut query = Vec::with_capacity(n);
                for _ in 0..n {
                    query.push(r.f64()?);
                }
                Request::Knn { session, k, query }
            }
            0x03 => {
                let session = r.u64()?;
                let n = r.counted(4)?;
                let mut relevant = Vec::with_capacity(n);
                for _ in 0..n {
                    relevant.push(r.u32()?);
                }
                Request::Feedback { session, relevant }
            }
            0x04 => Request::SnapshotStats,
            0x05 => Request::Close { session: r.u64()? },
            0x06 => {
                let k = r.u32()?;
                let seed = r.f64()?;
                let n = r.counted(8)?;
                let mut point = Vec::with_capacity(n);
                for _ in 0..n {
                    point.push(r.f64()?);
                }
                let wn = r.counted(8)?;
                let mut weights = Vec::with_capacity(wn);
                for _ in 0..wn {
                    weights.push(r.f64()?);
                }
                Request::ShardKnn {
                    k,
                    seed,
                    point,
                    weights,
                }
            }
            0x07 => Request::ShardInfo,
            0x08 => Request::SnapshotModule,
            0x09 => {
                let n = r.counted(1)?;
                Request::RestoreModule {
                    image: r.take(n)?.to_vec(),
                }
            }
            0x0A => Request::Hello { version: r.u8()? },
            0x0B => {
                let session = r.u64()?;
                let k = r.u32()?;
                let alpha = r.f64()?;
                let beta = r.f64()?;
                let gamma = r.f64()?;
                let flags = r.u8()?;
                let clamp = flags & 0b01 != 0;
                let trace = flags & 0b10 != 0;
                let n = r.counted(8)?;
                let mut anchor = Vec::with_capacity(n);
                for _ in 0..n {
                    anchor.push(r.f64()?);
                }
                // Each example is n × f64; `per` is floored at 1 byte
                // so a zero-dim frame cannot smuggle a huge count past
                // the budget check.
                let read_set = |r: &mut Reader| -> Result<Vec<Vec<f64>>, DecodeError> {
                    let count = r.counted((n * 8).max(1))?;
                    let mut set = Vec::with_capacity(count);
                    for _ in 0..count {
                        let mut ex = Vec::with_capacity(n);
                        for _ in 0..n {
                            ex.push(r.f64()?);
                        }
                        set.push(ex);
                    }
                    Ok(set)
                };
                let positives = read_set(&mut r)?;
                let negatives = read_set(&mut r)?;
                Request::KnnV2 {
                    session,
                    k,
                    alpha,
                    beta,
                    gamma,
                    clamp,
                    trace,
                    anchor,
                    positives,
                    negatives,
                }
            }
            0x0C => Request::GetTraces { max: r.u32()? },
            op => return Err(DecodeError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::SessionOpened { session, dim } => {
                out.push(0x81);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&dim.to_le_bytes());
            }
            Response::KnnResult {
                flags,
                cycles,
                missing_shards,
                trace,
                neighbors,
            } => {
                out.push(0x82);
                out.push(*flags);
                out.extend_from_slice(&cycles.to_le_bytes());
                if flags & KNN_DEGRADED != 0 {
                    out.extend_from_slice(&(missing_shards.len() as u32).to_le_bytes());
                    for id in missing_shards {
                        out.extend_from_slice(&id.to_le_bytes());
                    }
                } else {
                    debug_assert!(
                        missing_shards.is_empty(),
                        "missing_shards require KNN_DEGRADED"
                    );
                }
                if flags & KNN_TRACED != 0 {
                    let t = trace.as_ref().expect("KNN_TRACED requires a trace");
                    out.push(TRACE_VERSION);
                    write_trace(&mut out, t);
                } else {
                    debug_assert!(trace.is_none(), "a trace requires KNN_TRACED");
                }
                out.extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
                for n in neighbors {
                    out.extend_from_slice(&n.index.to_le_bytes());
                    out.extend_from_slice(&n.dist.to_le_bytes());
                }
            }
            Response::FeedbackAck {
                done,
                converged,
                cycles,
            } => {
                out.push(0x83);
                out.push(u8::from(*done));
                out.push(u8::from(*converged));
                out.extend_from_slice(&cycles.to_le_bytes());
            }
            Response::Stats(s) => {
                out.push(0x84);
                out.extend_from_slice(&s.requests.to_le_bytes());
                out.extend_from_slice(&s.passes.to_le_bytes());
                out.extend_from_slice(&s.shards.to_le_bytes());
                out.extend_from_slice(&s.mean_batch_fill.to_le_bytes());
                out.extend_from_slice(&s.queue_wait_p50_us.to_le_bytes());
                out.extend_from_slice(&s.queue_wait_p99_us.to_le_bytes());
                out.extend_from_slice(&s.sessions_open.to_le_bytes());
                out.extend_from_slice(&s.protocol_errors.to_le_bytes());
                out.extend_from_slice(&s.downstream_timeouts.to_le_bytes());
                out.extend_from_slice(&s.downstream_retries.to_le_bytes());
                out.extend_from_slice(&s.downstream_reconnects.to_le_bytes());
                out.extend_from_slice(&s.hedges_fired.to_le_bytes());
                out.extend_from_slice(&s.hedges_won.to_le_bytes());
                out.extend_from_slice(&s.degraded_replies.to_le_bytes());
                out.extend_from_slice(&s.scan_rows_visited.to_le_bytes());
                out.extend_from_slice(&s.scan_blocks_abandoned.to_le_bytes());
                out.extend_from_slice(&s.scan_candidates_filtered.to_le_bytes());
                out.extend_from_slice(&s.scan_candidates_rescored.to_le_bytes());
                out.extend_from_slice(&s.scan_seed_prunes.to_le_bytes());
                out.extend_from_slice(&s.scan_partitions_pruned.to_le_bytes());
                out.extend_from_slice(&(s.health.len() as u32).to_le_bytes());
                for h in &s.health {
                    out.extend_from_slice(&h.shard.to_le_bytes());
                    out.push(h.state as u8);
                    out.extend_from_slice(&h.ejections.to_le_bytes());
                    out.extend_from_slice(&h.readmissions.to_le_bytes());
                    out.extend_from_slice(&h.probe_failures.to_le_bytes());
                    out.extend_from_slice(&h.fast_degrades.to_le_bytes());
                }
            }
            Response::Closed => out.push(0x85),
            Response::ShardPartial { finished, entries } => {
                out.push(0x86);
                out.push(u8::from(*finished));
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (key, index) in entries {
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(&index.to_le_bytes());
                }
            }
            Response::ShardInfoResult { rows, offset, dim } => {
                out.push(0x87);
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&dim.to_le_bytes());
            }
            Response::ModuleImage { image } => {
                out.push(0x88);
                out.extend_from_slice(&(image.len() as u32).to_le_bytes());
                out.extend_from_slice(image);
            }
            Response::ModuleRestored => out.push(0x89),
            Response::HelloAck { version } => {
                out.push(0x8A);
                out.push(*version);
            }
            Response::TraceList { traces } => {
                out.push(0x8B);
                out.extend_from_slice(&(traces.len() as u32).to_le_bytes());
                for t in traces {
                    write_trace(&mut out, t);
                }
            }
            Response::Error { code, message } => {
                out.push(0xEE);
                out.push(*code as u8);
                out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let op = r.u8().map_err(|_| DecodeError::Empty)?;
        let resp = match op {
            0x81 => Response::SessionOpened {
                session: r.u64()?,
                dim: r.u32()?,
            },
            0x82 => {
                let flags = r.u8()?;
                let cycles = r.u32()?;
                let mut missing_shards = Vec::new();
                if flags & KNN_DEGRADED != 0 {
                    let m = r.counted(4)?;
                    missing_shards.reserve(m);
                    for _ in 0..m {
                        missing_shards.push(r.u32()?);
                    }
                }
                let trace = if flags & KNN_TRACED != 0 {
                    // An unknown trailer version cannot be skipped (the
                    // trailer carries no byte length), so it is
                    // malformed — same handling as an unknown enum byte.
                    if r.u8()? != TRACE_VERSION {
                        return Err(DecodeError::Truncated);
                    }
                    Some(Box::new(read_trace(&mut r)?))
                } else {
                    None
                };
                let n = r.counted(12)?;
                let mut neighbors = Vec::with_capacity(n);
                for _ in 0..n {
                    neighbors.push(Neighbor {
                        index: r.u32()?,
                        dist: r.f64()?,
                    });
                }
                Response::KnnResult {
                    flags,
                    cycles,
                    missing_shards,
                    trace,
                    neighbors,
                }
            }
            0x83 => Response::FeedbackAck {
                done: r.u8()? != 0,
                converged: r.u8()? != 0,
                cycles: r.u32()?,
            },
            0x84 => {
                let mut s = StatsSnapshot {
                    requests: r.u64()?,
                    passes: r.u64()?,
                    shards: r.u64()?,
                    mean_batch_fill: r.f64()?,
                    queue_wait_p50_us: r.f64()?,
                    queue_wait_p99_us: r.f64()?,
                    sessions_open: r.u64()?,
                    protocol_errors: r.u64()?,
                    downstream_timeouts: r.u64()?,
                    downstream_retries: r.u64()?,
                    downstream_reconnects: r.u64()?,
                    hedges_fired: r.u64()?,
                    hedges_won: r.u64()?,
                    degraded_replies: r.u64()?,
                    scan_rows_visited: r.u64()?,
                    scan_blocks_abandoned: r.u64()?,
                    scan_candidates_filtered: r.u64()?,
                    scan_candidates_rescored: r.u64()?,
                    scan_seed_prunes: r.u64()?,
                    scan_partitions_pruned: r.u64()?,
                    health: Vec::new(),
                };
                let n = r.counted(37)?;
                s.health.reserve(n);
                for _ in 0..n {
                    s.health.push(DownstreamHealth {
                        shard: r.u32()?,
                        state: HealthState::from_u8(r.u8()?).ok_or(DecodeError::Truncated)?,
                        ejections: r.u64()?,
                        readmissions: r.u64()?,
                        probe_failures: r.u64()?,
                        fast_degrades: r.u64()?,
                    });
                }
                Response::Stats(Box::new(s))
            }
            0x85 => Response::Closed,
            0x86 => {
                let finished = r.u8()? != 0;
                let n = r.counted(12)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((r.f64()?, r.u32()?));
                }
                Response::ShardPartial { finished, entries }
            }
            0x87 => Response::ShardInfoResult {
                rows: r.u64()?,
                offset: r.u64()?,
                dim: r.u32()?,
            },
            0x88 => {
                let n = r.counted(1)?;
                Response::ModuleImage {
                    image: r.take(n)?.to_vec(),
                }
            }
            0x89 => Response::ModuleRestored,
            0x8A => Response::HelloAck { version: r.u8()? },
            0x8B => {
                // Every report is at least 36 bytes (four u64s + span
                // count), the budget unit for the forged-count check.
                let n = r.counted(36)?;
                let mut traces = Vec::with_capacity(n);
                for _ in 0..n {
                    traces.push(read_trace(&mut r)?);
                }
                Response::TraceList { traces }
            }
            0xEE => {
                let code = ErrorCode::from_u8(r.u8()?).ok_or(DecodeError::Truncated)?;
                let n = r.counted(1)?;
                let bytes = r.take(n)?;
                let message = std::str::from_utf8(bytes)
                    .map_err(|_| DecodeError::BadUtf8)?
                    .to_owned();
                Response::Error { code, message }
            }
            op => return Err(DecodeError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Frame-layer read failure.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (includes truncation: `UnexpectedEof` mid-frame).
    Io(io::Error),
    /// The length prefix exceeds the configured maximum.
    Oversized {
        /// Claimed payload length.
        len: u32,
        /// Accepted maximum.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte maximum")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame (length prefix + payload) with a single `write_all`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Read one frame payload. Returns `Ok(None)` on a clean end-of-stream
/// (EOF before any byte of a frame) or when `keep_waiting` reports false
/// while the reader is between frames (the server's shutdown poll; reads
/// park in `read_timeout`-sized slices). EOF *inside* a frame is a
/// truncation and surfaces as `FrameError::Io(UnexpectedEof)`.
pub fn read_frame(
    r: &mut impl Read,
    max_len: u32,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    if !read_exact_polling(r, &mut header, true, keep_waiting)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header);
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    if !read_exact_polling(r, &mut payload, false, keep_waiting)? {
        // Shutdown raced a half-read frame; treat like truncation.
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "shutdown during frame body",
        )));
    }
    Ok(Some(payload))
}

/// `read_exact` that tolerates read-timeout wakeups, consulting
/// `keep_waiting` at each one. Returns `Ok(false)` on clean stop: EOF or
/// `keep_waiting() == false` before the first byte (only when
/// `clean_stop` — i.e. at a frame boundary).
fn read_exact_polling(
    r: &mut impl Read,
    buf: &mut [u8],
    clean_stop: bool,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && clean_stop {
                    return Ok(false);
                }
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                )));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !keep_waiting() {
                    if filled == 0 && clean_stop {
                        return Ok(false);
                    }
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "shutdown mid-frame",
                    )));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::OpenSession);
        roundtrip_req(Request::Knn {
            session: 7,
            k: 50,
            query: vec![0.25, -1.5, 3.75],
        });
        roundtrip_req(Request::Feedback {
            session: 7,
            relevant: vec![1, 5, 9],
        });
        roundtrip_req(Request::SnapshotStats);
        roundtrip_req(Request::Close { session: 7 });
        roundtrip_req(Request::ShardKnn {
            k: 10,
            seed: f64::INFINITY,
            point: vec![0.5, 0.25],
            weights: vec![1.0, 2.0],
        });
        roundtrip_req(Request::ShardKnn {
            k: 3,
            seed: 0.125,
            point: vec![0.5, 0.25],
            weights: vec![],
        });
        roundtrip_req(Request::ShardInfo);
        roundtrip_req(Request::SnapshotModule);
        roundtrip_req(Request::RestoreModule {
            image: vec![0xAB; 37],
        });
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_req(Request::KnnV2 {
            session: 11,
            k: 25,
            alpha: 1.0,
            beta: 0.75,
            gamma: 0.25,
            clamp: true,
            trace: false,
            anchor: vec![0.5, 0.25, -1.0],
            positives: vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]],
            negatives: vec![vec![0.9, 0.8, 0.7]],
        });
        // Both example sets empty: the trivial one-anchor query in v2
        // clothing — and a traced one, exercising flags-byte bit 1.
        roundtrip_req(Request::KnnV2 {
            session: 1,
            k: 5,
            alpha: 1.0,
            beta: 0.75,
            gamma: 0.25,
            clamp: false,
            trace: true,
            anchor: vec![2.0, 3.0],
            positives: vec![],
            negatives: vec![],
        });
        roundtrip_req(Request::GetTraces { max: 0 });
        roundtrip_req(Request::GetTraces { max: 16 });
    }

    #[test]
    fn knn_v2_trace_flag_is_bit_1_of_the_flags_byte() {
        // The clamp and trace bits share one byte; every combination
        // must encode to exactly that bit pattern (old v2 encoders only
        // ever wrote 0 or 1 here).
        for (clamp, trace) in [(false, false), (true, false), (false, true), (true, true)] {
            let frame = Request::KnnV2 {
                session: 1,
                k: 5,
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                clamp,
                trace,
                anchor: vec![1.0],
                positives: vec![],
                negatives: vec![],
            }
            .encode();
            // opcode + session + k + 3 coefficients = 1 + 8 + 4 + 24.
            let flags_at = 1 + 8 + 4 + 24;
            assert_eq!(
                frame[flags_at],
                u8::from(clamp) | (u8::from(trace) << 1),
                "clamp={clamp} trace={trace}"
            );
        }
    }

    #[test]
    fn knn_v2_forged_example_count_is_rejected() {
        // A KnnV2 frame claiming more examples than its bytes carry
        // must fail the count-budget check, not allocate.
        let mut forged = Request::KnnV2 {
            session: 1,
            k: 5,
            alpha: 1.0,
            beta: 0.75,
            gamma: 0.25,
            clamp: false,
            trace: false,
            anchor: vec![0.5, 0.5],
            positives: vec![],
            negatives: vec![],
        }
        .encode();
        // Overwrite the positive count (4 bytes right after the anchor)
        // with a huge value.
        let pos_count_at = forged.len() - 8;
        forged[pos_count_at..pos_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&forged), Err(DecodeError::BadLength));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::SessionOpened {
            session: 3,
            dim: 64,
        });
        roundtrip_resp(Response::KnnResult {
            flags: KNN_DONE | KNN_CONVERGED,
            cycles: 4,
            missing_shards: vec![],
            trace: None,
            neighbors: vec![
                Neighbor {
                    index: 2,
                    dist: 0.125,
                },
                Neighbor {
                    index: 9,
                    dist: 2.5,
                },
            ],
        });
        // Degraded replies carry the missing-shard list on the wire.
        roundtrip_resp(Response::KnnResult {
            flags: KNN_DEGRADED,
            cycles: 1,
            missing_shards: vec![1, 2],
            trace: None,
            neighbors: vec![Neighbor {
                index: 4,
                dist: 0.5,
            }],
        });
        // Traced replies carry the trailer; a degraded *and* traced
        // reply carries both blocks in order.
        let report = TraceReport {
            trace_id: 42,
            wall_ns: 1_500_000,
            gather_ns: 1_200_000,
            merge_ns: 300_000,
            spans: vec![
                ShardSpan {
                    shard: 0,
                    queue_ns: 200_000,
                    busy_ns: 900_000,
                    batch_fill: 3,
                    flags: 0,
                },
                ShardSpan {
                    shard: 1,
                    queue_ns: 150_000,
                    busy_ns: 1_000_000,
                    batch_fill: 0,
                    flags: SPAN_HEDGE_FIRED | SPAN_HEDGE_WON,
                },
            ],
        };
        roundtrip_resp(Response::KnnResult {
            flags: KNN_TRACED,
            cycles: 2,
            missing_shards: vec![],
            trace: Some(Box::new(report.clone())),
            neighbors: vec![Neighbor {
                index: 7,
                dist: 0.25,
            }],
        });
        roundtrip_resp(Response::KnnResult {
            flags: KNN_DEGRADED | KNN_TRACED,
            cycles: 0,
            missing_shards: vec![2],
            trace: Some(Box::new(TraceReport {
                spans: vec![ShardSpan {
                    shard: 2,
                    flags: SPAN_FAST_DEGRADED | SPAN_FAILED,
                    ..Default::default()
                }],
                ..report.clone()
            })),
            neighbors: vec![],
        });
        roundtrip_resp(Response::TraceList { traces: vec![] });
        roundtrip_resp(Response::TraceList {
            traces: vec![report.clone(), TraceReport::default()],
        });
        roundtrip_resp(Response::FeedbackAck {
            done: true,
            converged: false,
            cycles: 20,
        });
        roundtrip_resp(Response::Stats(Box::new(StatsSnapshot {
            requests: 100,
            passes: 12,
            shards: 4,
            mean_batch_fill: 8.333,
            queue_wait_p50_us: 450.0,
            queue_wait_p99_us: 2100.5,
            sessions_open: 32,
            protocol_errors: 1,
            downstream_timeouts: 3,
            downstream_retries: 5,
            downstream_reconnects: 2,
            hedges_fired: 7,
            hedges_won: 4,
            degraded_replies: 6,
            scan_rows_visited: 120_000,
            scan_blocks_abandoned: 310,
            scan_candidates_filtered: 4_096,
            scan_candidates_rescored: 512,
            scan_seed_prunes: 9,
            scan_partitions_pruned: 17,
            health: Vec::new(),
        })));
        // Router stats carry per-downstream health rows; every state
        // must survive the trip.
        roundtrip_resp(Response::Stats(Box::new(StatsSnapshot {
            requests: 9,
            shards: 4,
            health: vec![
                DownstreamHealth {
                    shard: 0,
                    state: HealthState::Healthy,
                    ..Default::default()
                },
                DownstreamHealth {
                    shard: 1,
                    state: HealthState::Suspect,
                    ejections: 1,
                    readmissions: 1,
                    probe_failures: 2,
                    fast_degrades: 17,
                },
                DownstreamHealth {
                    shard: 2,
                    state: HealthState::Ejected,
                    ejections: 3,
                    ..Default::default()
                },
                DownstreamHealth {
                    shard: 3,
                    state: HealthState::Probing,
                    probe_failures: 9,
                    ..Default::default()
                },
            ],
            ..Default::default()
        })));
        roundtrip_resp(Response::Closed);
        roundtrip_resp(Response::ShardPartial {
            finished: false,
            entries: vec![(0.25, 3), (0.5, 1), (0.5, 2)],
        });
        roundtrip_resp(Response::ShardInfoResult {
            rows: 300,
            offset: 600,
            dim: 24,
        });
        roundtrip_resp(Response::ModuleImage {
            image: vec![0xCD; 64],
        });
        roundtrip_resp(Response::ModuleRestored);
        roundtrip_resp(Response::Error {
            code: ErrorCode::DimMismatch,
            message: "expected 64, got 3".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::ShardUnavailable,
            message: "shards [1] unavailable".into(),
        });
        roundtrip_resp(Response::HelloAck {
            version: PROTOCOL_VERSION,
        });
        for code in [
            ErrorCode::BadWeight,
            ErrorCode::NonFiniteComponent,
            ErrorCode::EmptyExampleSet,
            ErrorCode::PrecisionConflict,
        ] {
            roundtrip_resp(Response::Error {
                code,
                message: format!("{code}"),
            });
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert_eq!(Request::decode(&[]), Err(DecodeError::Empty));
        assert_eq!(
            Request::decode(&[0x7F]),
            Err(DecodeError::UnknownOpcode(0x7F))
        );
        // Truncated Knn body: the element count no longer fits the
        // remaining bytes.
        let mut knn = Request::Knn {
            session: 1,
            k: 5,
            query: vec![1.0, 2.0],
        }
        .encode();
        knn.truncate(knn.len() - 3);
        assert_eq!(Request::decode(&knn), Err(DecodeError::BadLength));
        // Truncated fixed-layout body.
        let mut close = Request::Close { session: 9 }.encode();
        close.truncate(close.len() - 2);
        assert_eq!(Request::decode(&close), Err(DecodeError::Truncated));
        // Trailing garbage.
        let mut open = Request::OpenSession.encode();
        open.push(0);
        assert_eq!(Request::decode(&open), Err(DecodeError::TrailingBytes));
        // Forged element count larger than the body.
        let mut forged = vec![0x03];
        forged.extend_from_slice(&1u64.to_le_bytes());
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&forged), Err(DecodeError::BadLength));
    }

    #[test]
    fn malformed_trace_trailers_are_rejected() {
        let traced = Response::KnnResult {
            flags: KNN_TRACED,
            cycles: 0,
            missing_shards: vec![],
            trace: Some(Box::new(TraceReport {
                trace_id: 1,
                wall_ns: 10,
                gather_ns: 8,
                merge_ns: 2,
                spans: vec![ShardSpan::default()],
            })),
            neighbors: vec![],
        };
        // An unknown trailer version cannot be skipped: malformed.
        let mut wrong_version = traced.encode();
        // The version byte sits right after opcode + flags + cycles.
        assert_eq!(wrong_version[1 + 1 + 4], TRACE_VERSION);
        wrong_version[1 + 1 + 4] = TRACE_VERSION + 1;
        assert!(Response::decode(&wrong_version).is_err());
        // A forged span count larger than the body must fail the
        // budget check, not allocate.
        let mut forged = traced.encode();
        let span_count_at = 1 + 1 + 4 + 1 + 32;
        forged[span_count_at..span_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Response::decode(&forged), Err(DecodeError::BadLength));
        // Same for a forged TraceList report count.
        let mut list = Response::TraceList {
            traces: vec![TraceReport::default()],
        }
        .encode();
        list[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Response::decode(&list), Err(DecodeError::BadLength));
    }

    #[test]
    fn frames_roundtrip_and_enforce_max_len() {
        let payload = Request::Knn {
            session: 1,
            k: 3,
            query: vec![0.5; 16],
        }
        .encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut rd = &wire[..];
        let got = read_frame(&mut rd, DEFAULT_MAX_FRAME_LEN, &mut || true)
            .unwrap()
            .unwrap();
        assert_eq!(got, payload);
        // Clean EOF between frames.
        assert!(read_frame(&mut rd, DEFAULT_MAX_FRAME_LEN, &mut || true)
            .unwrap()
            .is_none());
        // Oversized prefix is refused before allocating.
        let mut big = &(u32::MAX.to_le_bytes())[..];
        match read_frame(&mut big, 1024, &mut || true) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // EOF mid-frame is a truncation error, not a clean close.
        let mut cut = &wire[..wire.len() - 2];
        assert!(matches!(
            read_frame(&mut cut, DEFAULT_MAX_FRAME_LEN, &mut || true),
            Err(FrameError::Io(_))
        ));
    }
}
