//! The adaptive micro-batchers: one bounded request queue **per
//! collection shard**, each drained by its own dispatcher thread into
//! per-shard scan passes, with a gather cell per request that assembles
//! the reply once every shard has delivered its partial.
//!
//! Connection threads admit each `Knn` request once (a [`Gather`] cell
//! holding the request and its reply completion), scatter one handle to
//! every shard's [`Batcher`], and go straight back to reading their
//! sockets. Every shard dispatcher runs the same collection policy, from
//! the first queued request: wait for more **only while the batch is
//! below [`target_fill`](crate::ServerConfig::target_fill)**, and within
//! that window dispatch early when
//! [`max_wait`](crate::ServerConfig::max_wait) has elapsed since the
//! **oldest** queued request or when no new request arrived for
//! [`idle_gap`](crate::ServerConfig::idle_gap); at dispatch it drains up
//! to [`max_batch`](crate::ServerConfig::max_batch) requests into one
//! per-shard multi-query pass
//! ([`ShardedBypass::scan_shard`](feedbackbypass::ShardedBypass::scan_shard)).
//! Under light load a lone request pays at most one idle gap of extra
//! latency; in the bursty think-time regime the gap cutoff dispatches
//! the moment a burst ends; under saturation each batcher is
//! work-conserving and its fill self-tunes to
//! `arrival rate × per-shard pass time`.
//!
//! Shards batch **independently** — shard 0 may serve requests {A, B}
//! in one pass while shard 1 serves A and B in two — and the reply is
//! still exact: a [`ShardPartial`] is the shard's k-best for its request
//! in key space regardless of batch-mates, and the gather merges
//! partials by the deterministic `(key, index)` order
//! ([`ShardedBypass::gather`](feedbackbypass::ShardedBypass::gather)).
//! The dispatcher thread that delivers the **last** partial runs the
//! merge and the reply completion (session bookkeeping, encoding, the
//! socket write), so no extra thread ever sits on the latency path.
//!
//! A dropped client (disconnect mid-request) merely makes its
//! completion's socket write fail — ignored, so abandoned entries can
//! never wedge a queue. On shutdown every queue stops accepting, each
//! dispatcher drains what remains, and exits; a gather whose scatter was
//! cut short by shutdown is completed with an error by the enqueuing
//! thread, so every admitted request resolves exactly once.

use crate::metrics::Metrics;
use crate::protocol::ShardSpan;
use crate::trace::RequestTrace;
use fbp_vecdb::{
    merge_partials, Neighbor, PartitionedCollection, ScanMode, ShardPartial, ShardedCollection,
    ShardedScan, WeightedEuclidean,
};
use feedbackbypass::{KnnRequest, ShardedBypass};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Completion callback of one gathered request: invoked exactly once
/// with the merged neighbors (or the first shard error) by whichever
/// shard dispatcher delivered the last partial. It finishes the reply —
/// session bookkeeping, encoding, the socket write — right on that
/// dispatcher thread; the connection thread meanwhile just stays parked
/// in its next read.
pub(crate) type KnnCompletion = Box<dyn FnOnce(Result<Vec<Neighbor>, String>) + Send>;

/// Per-request gather cell: the request (read-only, shared by every
/// shard's pass), one partial slot per shard, and the reply completion.
pub(crate) struct Gather {
    /// The serving request (point, weights, per-request k).
    pub req: KnnRequest,
    /// The request's resolved result count (clamped at admission).
    pub k: usize,
    /// The request's metric, built **once at admission** and shared by
    /// every shard pass and the final merge — the per-shard dispatch
    /// no longer rebuilds it per pass.
    pub metric: WeightedEuclidean,
    /// Cross-shard pruning seed: the tightest known upper bound on this
    /// request's global k-th key (f64 bits, starts at `+∞`), tightened
    /// from every delivered partial's [`ShardPartial::bound_key`]. A
    /// shard pass that runs *after* another shard finished prunes
    /// against a near-global bound instead of its looser local one —
    /// on a host where shard passes serialize this recovers most of
    /// the flat pass's early-abandon power, and it can never change
    /// the merged answer (the bound is provably ≥ the global k-th).
    seed: AtomicU64,
    /// Span collector for a traced request (`None` on the untraced hot
    /// path — dispatchers pay one branch per stage). The trace can
    /// never change the merged answer: it only observes timestamps.
    pub trace: Option<Arc<RequestTrace>>,
    state: Mutex<GatherState>,
}

struct GatherState {
    /// Delivered partials by shard index (`None` for errored shards).
    partials: Vec<Option<ShardPartial>>,
    /// Per-shard delivery marker (a shard delivers exactly once; the
    /// marker makes duplicate deliveries harmless instead of fatal).
    delivered: Vec<bool>,
    /// First shard error, if any (the reply becomes this error).
    error: Option<String>,
    /// Shards still outstanding.
    remaining: usize,
    /// Taken by the completing delivery.
    reply: Option<KnnCompletion>,
}

impl Gather {
    /// New cell awaiting `shards` partials.
    pub(crate) fn new(
        req: KnnRequest,
        metric: WeightedEuclidean,
        k: usize,
        shards: usize,
        trace: Option<Arc<RequestTrace>>,
        reply: KnnCompletion,
    ) -> Arc<Self> {
        Arc::new(Gather {
            req,
            k,
            metric,
            seed: AtomicU64::new(f64::INFINITY.to_bits()),
            trace,
            state: Mutex::new(GatherState {
                partials: (0..shards).map(|_| None).collect(),
                delivered: vec![false; shards],
                error: None,
                remaining: shards,
                reply: Some(reply),
            }),
        })
    }

    /// The current pruning seed for this request (`+∞` until some
    /// shard delivered a full k-best).
    pub(crate) fn seed(&self) -> f64 {
        f64::from_bits(self.seed.load(Ordering::Relaxed))
    }

    /// Tighten the seed to `min(current, bound)` (lock-free; seeds only
    /// ever decrease).
    fn offer_seed(&self, bound: f64) {
        let mut cur = self.seed.load(Ordering::Relaxed);
        while bound < f64::from_bits(cur) {
            match self.seed.compare_exchange_weak(
                cur,
                bound.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Deliver shard `shard`'s outcome. The delivery that brings
    /// `remaining` to zero merges the partials (outside the cell's lock)
    /// and fires the reply; every other delivery just records and
    /// returns. Duplicate deliveries for one shard are a logic error
    /// upstream and are ignored defensively.
    pub(crate) fn complete_shard(&self, shard: usize, outcome: Result<ShardPartial, String>) {
        if let Ok(partial) = &outcome {
            if let Some(bound) = partial.bound_key(self.k) {
                self.offer_seed(bound);
            }
        }
        let fire = {
            let mut g = self.state.lock().expect("gather lock");
            if g.delivered[shard] {
                return; // duplicate delivery; first one counted
            }
            g.delivered[shard] = true;
            match outcome {
                Ok(partial) => g.partials[shard] = Some(partial),
                Err(e) => {
                    if g.error.is_none() {
                        g.error = Some(e);
                    }
                }
            }
            g.remaining -= 1;
            if g.remaining == 0 {
                g.reply
                    .take()
                    .map(|reply| (reply, g.error.take(), std::mem::take(&mut g.partials)))
            } else {
                None
            }
        };
        if let Some((reply, error, partials)) = fire {
            // The last slot just resolved: everything from here (merge,
            // session bookkeeping, reply encode + write) is merge time.
            if let Some(trace) = &self.trace {
                trace.note_gathered();
            }
            let outcome = match error {
                Some(e) => Err(e),
                // The merge reuses the admission-built metric — no
                // per-reply metric reconstruction.
                None => Ok(merge_partials(
                    partials.iter().flatten(),
                    self.k,
                    &self.metric,
                )),
            };
            reply(outcome);
        }
    }
}

/// Why an enqueue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EnqueueError {
    /// The server is shutting down.
    ShuttingDown,
}

struct Inner<T> {
    queue: VecDeque<(Instant, T)>,
    shutdown: bool,
}

/// Bounded-by-admission queue + wakeup plumbing shared by connection
/// threads and one shard's dispatcher. Capacity is enforced at the
/// *admission* layer (`Shared::inflight` in the server), not here: every
/// admitted request lands once in every shard's queue, so a per-queue
/// bound would either double-count the global bound or leave a request
/// half-scattered on overflow.
pub(crate) struct Batcher<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    max_batch: usize,
    target_fill: usize,
    max_wait: Duration,
    idle_gap: Duration,
}

impl<T> Batcher<T> {
    pub(crate) fn new(
        max_batch: usize,
        target_fill: usize,
        max_wait: Duration,
        idle_gap: Duration,
    ) -> Self {
        let max_batch = max_batch.max(1);
        Batcher {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            max_batch,
            target_fill: target_fill.clamp(1, max_batch),
            max_wait,
            idle_gap,
        }
    }

    /// Enqueue one item (stamped now); fails only once shutting down.
    pub(crate) fn enqueue(&self, item: T) -> Result<(), EnqueueError> {
        let mut g = self.inner.lock().expect("batcher lock");
        if g.shutdown {
            return Err(EnqueueError::ShuttingDown);
        }
        g.queue.push_back((Instant::now(), item));
        self.cv.notify_one();
        Ok(())
    }

    /// Stop accepting and wake the dispatcher so it can drain and exit.
    pub(crate) fn shutdown(&self) {
        self.inner.lock().expect("batcher lock").shutdown = true;
        self.cv.notify_all();
    }

    /// Block until a batch is ready, returning each item with its
    /// enqueue instant. Returns `None` once shut down **and** drained.
    ///
    /// Collection policy, from the first queued item: wait for more
    /// **only while the batch is below `target_fill`**, and within that,
    /// dispatch as soon as one of
    ///
    /// * `max_wait` elapsed since the oldest queued item, or
    /// * no new item arrived for `idle_gap` — think-time traffic is
    ///   bursty (replies fan out together, sessions think together, the
    ///   next requests land together), so a quiet gap means the burst is
    ///   over and further waiting buys latency, not fill.
    ///
    /// At or above `target_fill` the batcher is work-conserving: it
    /// drains up to `max_batch` immediately. Under saturation the fill
    /// then self-tunes to `arrival rate × pass time` — items that landed
    /// during the previous pass ride the next one with no added wait.
    pub(crate) fn next_batch(&self) -> Option<Vec<(Instant, T)>> {
        let mut g = self.inner.lock().expect("batcher lock");
        // Park until the first item (or shutdown).
        while g.queue.is_empty() {
            if g.shutdown {
                return None;
            }
            g = self.cv.wait(g).expect("batcher lock");
        }
        // Collect the burst. Shutdown cuts every wait short.
        let deadline = g.queue.front().expect("non-empty").0 + self.max_wait;
        'collect: while g.queue.len() < self.target_fill && !g.shutdown {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let gap_end = std::cmp::min(now + self.idle_gap, deadline);
            let len_before = g.queue.len();
            // Wait out one idle gap; a new arrival restarts the clock.
            loop {
                if g.queue.len() > len_before {
                    continue 'collect;
                }
                if g.shutdown {
                    break 'collect;
                }
                let Some(remaining) = gap_end
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    break 'collect; // gap (or deadline) ran out quiet
                };
                let (guard, _timeout) = self.cv.wait_timeout(g, remaining).expect("batcher lock");
                g = guard;
            }
        }
        let take = g.queue.len().min(self.max_batch);
        Some(g.queue.drain(..take).collect())
    }
}

/// One shard's dispatcher loop: drain batches from this shard's queue,
/// run each as one per-shard scan pass, deliver every request's partial
/// to its gather cell (the last shard to deliver fires the merged
/// reply). Runs until the batcher shuts down and empties.
pub(crate) fn run_shard_dispatcher(
    shard: usize,
    batcher: Arc<Batcher<Arc<Gather>>>,
    coll: Arc<ShardedCollection>,
    partitions: Option<Arc<Vec<PartitionedCollection>>>,
    bypass: ShardedBypass,
    scan_mode: ScanMode,
    metrics: Arc<Metrics>,
) {
    let log_timing = std::env::var("FBP_SERVE_TRACE").is_ok();
    let (mut t_scan, mut t_complete, mut t_idle, mut n_req) = (0u128, 0u128, 0u128, 0u64);
    let mut last_done = Instant::now();
    while let Some(batch) = batcher.next_batch() {
        let dispatched = Instant::now();
        t_idle += dispatched.duration_since(last_done).as_nanos();
        let waits: Vec<Duration> = batch
            .iter()
            .map(|(enqueued, _)| dispatched.saturating_duration_since(*enqueued))
            .collect();
        let gathers: Vec<Arc<Gather>> = batch.into_iter().map(|(_, g)| g).collect();
        // Each request's point, metric, and k were resolved once at
        // admission; the pass borrows them instead of rebuilding the
        // metric per shard dispatch.
        let points: Vec<&[f64]> = gathers.iter().map(|g| g.req.point.as_slice()).collect();
        let pass_metrics: Vec<&WeightedEuclidean> = gathers.iter().map(|g| &g.metric).collect();
        let ks: Vec<usize> = gathers.iter().map(|g| g.k).collect();
        // Cross-shard bound propagation: requests whose gathers already
        // hold another shard's k-th key prune against it from row one.
        let seeds: Vec<f64> = gathers.iter().map(|g| g.seed()).collect();
        // The scan is rebuilt per pass (it is a couple of words); the
        // scan_shard precision rule upgrades it to the f32 mirrors
        // whenever every shard carries one, and the per-shard thread
        // budget is an even share of the machine so S concurrent shard
        // dispatchers cannot oversubscribe the host.
        let scan = ShardedScan::with_mode(&coll, scan_mode).with_scan_stats(metrics.scan_stats());
        // Partition layouts (when the server opted in) redirect every
        // shard pass through the pruning scan; the delivered partials —
        // and therefore the gathered replies — are bit-identical.
        let scan = match &partitions {
            Some(parts) => scan.with_partitions(parts),
            None => scan,
        };
        let partials =
            bypass.scan_shard_prepared(&scan, shard, &points, &pass_metrics, &ks, Some(&seeds));
        let scanned = Instant::now();
        t_scan += scanned.duration_since(dispatched).as_nanos();
        n_req += waits.len() as u64;
        metrics.record_pass(&waits);
        // Traced requests get their span stamped *before* delivery, so
        // the delivery that completes the gather already sees it.
        let fill = gathers.len() as u32;
        for gather in &gathers {
            if let Some(trace) = &gather.trace {
                trace.add_span(ShardSpan {
                    shard: shard as u32,
                    queue_ns: dispatched.saturating_duration_since(trace.t0()).as_nanos() as u64,
                    busy_ns: scanned.saturating_duration_since(dispatched).as_nanos() as u64,
                    batch_fill: fill,
                    flags: 0,
                });
            }
        }
        for (gather, partial) in gathers.iter().zip(partials) {
            gather.complete_shard(shard, Ok(partial));
        }
        t_complete += scanned.elapsed().as_nanos();
        last_done = Instant::now();
    }
    if log_timing && n_req > 0 {
        eprintln!(
            "[dispatcher shard {}] {} req: scan {:.0}us/req, complete {:.0}us/req, idle {:.1}ms total",
            shard,
            n_req,
            t_scan as f64 / 1000.0 / n_req as f64,
            t_complete as f64 / 1000.0 / n_req as f64,
            t_idle as f64 / 1e6,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_fills_to_max_batch_without_waiting() {
        let b = Batcher::new(4, 4, Duration::from_secs(10), Duration::from_secs(10));
        for i in 0..6 {
            b.enqueue(i).unwrap();
        }
        // 6 queued, max_batch 4: the first batch takes 4 immediately
        // with no deadline wait.
        let first = b.next_batch().unwrap();
        assert_eq!(first.len(), 4);
        assert_eq!(first[0].1, 0, "FIFO order");
    }

    #[test]
    fn deadline_drains_partial_batch() {
        let b = Batcher::new(64, 64, Duration::from_millis(5), Duration::from_millis(5));
        b.enqueue(1).unwrap();
        b.enqueue(2).unwrap();
        let t0 = Instant::now();
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "deadline overshot"
        );
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let b = Batcher::new(4, 4, Duration::from_secs(10), Duration::from_secs(10));
        b.enqueue(7).unwrap();
        b.shutdown();
        assert_eq!(b.enqueue(8), Err(EnqueueError::ShuttingDown));
        assert_eq!(b.next_batch().unwrap().len(), 1);
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn gather_fires_once_after_all_shards_any_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fired = Arc::new(AtomicUsize::new(0));
        let got = Arc::new(Mutex::new(None));
        let req = KnnRequest::uniform(vec![0.0, 0.0]);
        let req_metric = req.metric(2).unwrap();
        let gather = Gather::new(
            req,
            req_metric,
            5,
            3,
            None,
            Box::new({
                let fired = Arc::clone(&fired);
                let got = Arc::clone(&got);
                move |outcome| {
                    fired.fetch_add(1, Ordering::SeqCst);
                    *got.lock().unwrap() = Some(outcome);
                }
            }),
        );
        // Build real partials through the public scatter API.
        let mut b = fbp_vecdb::CollectionBuilder::new();
        for i in 0..6 {
            b.push_unlabelled(&[i as f64, 0.0]).unwrap();
        }
        let sc = ShardedCollection::split(&b.build(), 3);
        let scan = ShardedScan::with_mode(&sc, ScanMode::Batched);
        let metric = fbp_vecdb::WeightedEuclidean::uniform(2);
        let q: &[f64] = &[0.0, 0.0];
        let parts: Vec<ShardPartial> = (0..3)
            .map(|s| {
                scan.scan_shard_weighted(s, &[q], std::slice::from_ref(&metric), &[5], None)
                    .remove(0)
            })
            .collect();
        // Out-of-order delivery; the reply fires exactly once, on the
        // last shard.
        gather.complete_shard(2, Ok(parts[2].clone()));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        gather.complete_shard(0, Ok(parts[0].clone()));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        gather.complete_shard(1, Ok(parts[1].clone()));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        let merged = got.lock().unwrap().take().unwrap().unwrap();
        assert_eq!(merged.len(), 5);
        assert_eq!(merged[0].index, 0);
        assert!(merged.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn gather_propagates_shard_errors() {
        let got = Arc::new(Mutex::new(None));
        let req = KnnRequest::uniform(vec![0.0]);
        let req_metric = req.metric(1).unwrap();
        let gather = Gather::new(
            req,
            req_metric,
            5,
            2,
            None,
            Box::new({
                let got = Arc::clone(&got);
                move |outcome| *got.lock().unwrap() = Some(outcome)
            }),
        );
        let mut b = fbp_vecdb::CollectionBuilder::new();
        b.push_unlabelled(&[0.5]).unwrap();
        let sc = ShardedCollection::split(&b.build(), 2);
        let scan = ShardedScan::with_mode(&sc, ScanMode::Batched);
        let metric = fbp_vecdb::WeightedEuclidean::uniform(1);
        let q: &[f64] = &[0.0];
        let part = scan
            .scan_shard_weighted(0, &[q], std::slice::from_ref(&metric), &[5], None)
            .remove(0);
        gather.complete_shard(0, Ok(part));
        gather.complete_shard(1, Err("pass failed".into()));
        let outcome = got.lock().unwrap().take().unwrap();
        match outcome {
            Err(msg) => assert_eq!(msg, "pass failed"),
            Ok(_) => panic!("expected the shard error to win"),
        }
    }
}
