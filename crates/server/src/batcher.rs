//! The adaptive micro-batcher: a bounded request queue drained by one
//! dispatcher thread into coalesced [`SharedBypass::knn_batch`] passes.
//!
//! Connection threads enqueue their sessions' pending k-NN requests
//! (each carrying a completion that writes its reply) and go straight
//! back to reading their sockets. The dispatcher sleeps until a
//! request arrives, then collects more **only while the batch is below
//! [`target_fill`](crate::ServerConfig::target_fill)**, and within that
//! window dispatches early when
//! [`max_wait`](crate::ServerConfig::max_wait) has elapsed since the
//! **oldest** queued request or when no new request arrived for
//! [`idle_gap`](crate::ServerConfig::idle_gap); at dispatch it drains up
//! to [`max_batch`](crate::ServerConfig::max_batch) requests into one
//! multi-query scan pass. Under light load a lone request pays at most
//! one idle gap of extra latency; in the bursty think-time regime the
//! gap cutoff dispatches the moment a burst ends; under saturation the
//! batcher is work-conserving and the fill self-tunes to
//! `arrival rate × pass time`. That is the adaptivity: batch fill
//! tracks the offered concurrency with no tuning beyond the bounds.
//!
//! A dropped client (disconnect mid-request) merely makes its
//! completion's socket write fail — ignored, so abandoned entries can
//! never wedge the queue. On shutdown the queue stops accepting, the
//! dispatcher drains what remains, and exits.

use crate::metrics::Metrics;
use fbp_vecdb::{Collection, MultiQueryScan, Neighbor, ScanMode};
use feedbackbypass::{KnnRequest, SharedBypass};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Completion callback of one queued request: the dispatcher invokes it
/// with the request's slice of the pass (or the pass error) and it
/// finishes the reply — session bookkeeping, encoding, the socket write
/// — right on the dispatcher thread. Keeping the reply off a parked
/// connection thread saves a wake/context-switch per request on the
/// latency path; the connection thread meanwhile just stays parked in
/// its next read.
pub(crate) type KnnCompletion = Box<dyn FnOnce(Result<Vec<Neighbor>, String>) + Send>;

/// One queued k-NN request.
pub(crate) struct PendingKnn {
    /// The serving request (point, weights, per-request k).
    pub req: KnnRequest,
    /// Enqueue instant, for queue-wait accounting.
    pub enqueued: Instant,
    /// Reply completion (runs on the dispatcher thread).
    pub reply: KnnCompletion,
}

/// Why an enqueue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EnqueueError {
    /// The bounded queue is at capacity.
    Full,
    /// The server is shutting down.
    ShuttingDown,
}

struct Inner {
    queue: VecDeque<PendingKnn>,
    shutdown: bool,
}

/// Bounded queue + wakeup plumbing shared by connection threads and the
/// dispatcher.
pub(crate) struct Batcher {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
    max_batch: usize,
    target_fill: usize,
    max_wait: Duration,
    idle_gap: Duration,
}

impl Batcher {
    pub(crate) fn new(
        capacity: usize,
        max_batch: usize,
        target_fill: usize,
        max_wait: Duration,
        idle_gap: Duration,
    ) -> Self {
        let max_batch = max_batch.max(1);
        Batcher {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            max_batch,
            target_fill: target_fill.clamp(1, max_batch),
            max_wait,
            idle_gap,
        }
    }

    /// Enqueue one request; fails fast when full or shutting down.
    pub(crate) fn enqueue(&self, pending: PendingKnn) -> Result<(), EnqueueError> {
        let mut g = self.inner.lock().expect("batcher lock");
        if g.shutdown {
            return Err(EnqueueError::ShuttingDown);
        }
        if g.queue.len() >= self.capacity {
            return Err(EnqueueError::Full);
        }
        g.queue.push_back(pending);
        self.cv.notify_one();
        Ok(())
    }

    /// Stop accepting and wake the dispatcher so it can drain and exit.
    pub(crate) fn shutdown(&self) {
        self.inner.lock().expect("batcher lock").shutdown = true;
        self.cv.notify_all();
    }

    /// Block until a batch is ready. Returns `None` once shut down
    /// **and** drained.
    ///
    /// Collection policy, from the first queued request: wait for more
    /// **only while the batch is below `target_fill`**, and within that,
    /// dispatch as soon as one of
    ///
    /// * `max_wait` elapsed since the oldest queued request, or
    /// * no new request arrived for `idle_gap` — think-time traffic is
    ///   bursty (replies fan out together, sessions think together, the
    ///   next requests land together), so a quiet gap means the burst is
    ///   over and further waiting buys latency, not fill.
    ///
    /// At or above `target_fill` the batcher is work-conserving: it
    /// drains up to `max_batch` immediately. Under saturation the fill
    /// then self-tunes to `arrival rate × pass time` — requests that
    /// landed during the previous pass ride the next one with no added
    /// wait, which is exactly when waiting longer would buy only
    /// latency.
    pub(crate) fn next_batch(&self) -> Option<Vec<PendingKnn>> {
        let mut g = self.inner.lock().expect("batcher lock");
        // Park until the first request (or shutdown).
        while g.queue.is_empty() {
            if g.shutdown {
                return None;
            }
            g = self.cv.wait(g).expect("batcher lock");
        }
        // Collect the burst. Shutdown cuts every wait short.
        let deadline = g.queue.front().expect("non-empty").enqueued + self.max_wait;
        'collect: while g.queue.len() < self.target_fill && !g.shutdown {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let gap_end = std::cmp::min(now + self.idle_gap, deadline);
            let len_before = g.queue.len();
            // Wait out one idle gap; a new arrival restarts the clock.
            loop {
                if g.queue.len() > len_before {
                    continue 'collect;
                }
                if g.shutdown {
                    break 'collect;
                }
                let Some(remaining) = gap_end
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    break 'collect; // gap (or deadline) ran out quiet
                };
                let (guard, _timeout) = self.cv.wait_timeout(g, remaining).expect("batcher lock");
                g = guard;
            }
        }
        let take = g.queue.len().min(self.max_batch);
        Some(g.queue.drain(..take).collect())
    }
}

/// The dispatcher loop: drain batches, serve each with one coalesced
/// pass, route per-request results back. Runs until the batcher shuts
/// down and empties.
pub(crate) fn run_dispatcher(
    batcher: Arc<Batcher>,
    coll: Arc<Collection>,
    bypass: SharedBypass,
    scan_mode: ScanMode,
    default_k: usize,
    metrics: Arc<Metrics>,
) {
    let trace = std::env::var("FBP_SERVE_TRACE").is_ok();
    let (mut t_scan, mut t_complete, mut t_idle, mut n_req) = (0u128, 0u128, 0u128, 0u64);
    let mut last_done = Instant::now();
    while let Some(batch) = batcher.next_batch() {
        let dispatched = Instant::now();
        t_idle += dispatched.duration_since(last_done).as_nanos();
        let waits: Vec<Duration> = batch
            .iter()
            .map(|p| dispatched.saturating_duration_since(p.enqueued))
            .collect();
        // Split ownership instead of cloning: the pass takes the
        // requests, the completions keep only their reply closures.
        let (requests, completions): (Vec<KnnRequest>, Vec<KnnCompletion>) =
            batch.into_iter().map(|p| (p.req, p.reply)).unzip();
        // The scan is rebuilt per pass (it is a couple of words); the
        // knn_batch precision rule upgrades it to the f32 mirror
        // whenever the collection carries one.
        let scan = MultiQueryScan::with_mode(&coll, scan_mode);
        let res = bypass.knn_batch(&scan, &requests, default_k);
        let scanned = Instant::now();
        t_scan += scanned.duration_since(dispatched).as_nanos();
        n_req += waits.len() as u64;
        match res {
            Ok(results) => {
                metrics.record_pass(&waits);
                for (reply, neighbors) in completions.into_iter().zip(results) {
                    // A failed completion write is a disconnected
                    // client; nothing to do, nothing left queued.
                    reply(Ok(neighbors));
                }
                t_complete += scanned.elapsed().as_nanos();
            }
            Err(e) => {
                // Requests are validated at enqueue, so a batch error is
                // exceptional; report it to every requester rather than
                // guessing which entry caused it.
                let msg = e.to_string();
                for reply in completions {
                    reply(Err(msg.clone()));
                }
            }
        }
        last_done = Instant::now();
    }
    if trace && n_req > 0 {
        eprintln!(
            "[dispatcher] {} req: scan {:.0}us/req, complete {:.0}us/req, idle {:.1}ms total",
            n_req,
            t_scan as f64 / 1000.0 / n_req as f64,
            t_complete as f64 / 1000.0 / n_req as f64,
            t_idle as f64 / 1e6,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending() -> PendingKnn {
        PendingKnn {
            req: KnnRequest::uniform(vec![0.0, 0.0]),
            enqueued: Instant::now(),
            reply: Box::new(|_| {}),
        }
    }

    #[test]
    fn batch_fills_to_max_batch_without_waiting() {
        let b = Batcher::new(16, 4, 4, Duration::from_secs(10), Duration::from_secs(10));
        for _ in 0..6 {
            b.enqueue(pending()).unwrap();
        }
        // 6 queued, max_batch 4: first batch takes 4 immediately (no
        // deadline wait), second takes the remaining 2 once the deadline
        // logic sees a full-enough queue... the second call must not
        // block for 10 s because the entries' deadline already matters.
        let first = b.next_batch().unwrap();
        assert_eq!(first.len(), 4);
    }

    #[test]
    fn deadline_drains_partial_batch() {
        let b = Batcher::new(
            16,
            64,
            64,
            Duration::from_millis(5),
            Duration::from_millis(5),
        );
        b.enqueue(pending()).unwrap();
        b.enqueue(pending()).unwrap();
        let t0 = Instant::now();
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "deadline overshot"
        );
    }

    #[test]
    fn capacity_bound_rejects() {
        let b = Batcher::new(2, 4, 4, Duration::from_millis(1), Duration::from_millis(1));
        b.enqueue(pending()).unwrap();
        b.enqueue(pending()).unwrap();
        assert_eq!(b.enqueue(pending()), Err(EnqueueError::Full));
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let b = Batcher::new(16, 4, 4, Duration::from_secs(10), Duration::from_secs(10));
        b.enqueue(pending()).unwrap();
        b.shutdown();
        assert_eq!(b.enqueue(pending()), Err(EnqueueError::ShuttingDown));
        assert_eq!(b.next_batch().unwrap().len(), 1);
        assert!(b.next_batch().is_none());
    }
}
